"""CI bench-regression gate.

Re-runs the repository's performance benchmarks and compares the fresh
numbers against the committed ``BENCH_*.json`` baselines at the repo
root, failing the build when a headline metric regresses past the
tolerance:

- **ratio** metrics (probe/store/sweep speedups) must stay at or above
  ``baseline * (1 - tolerance)``;
- **bool** metrics (the obs overhead budget) must stay true whenever the
  baseline was true.

Fresh numbers are written to ``--out-dir`` (default ``bench_fresh/``) so
CI can upload them as an artifact next to the verdicts.

Usage::

    PYTHONPATH=src python tools/bench_gate.py \
        [--bench probe --bench store ...] [--tolerance 0.3] \
        [--override store=0.5] [--out-dir bench_fresh]
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: every gated benchmark: script, committed baseline, headline metric.
BENCHES = {
    "probe": {
        "script": "benchmarks/bench_probe_engine.py",
        "baseline": "BENCH_probe.json",
        "metric": "speedup",
        "kind": "ratio",
    },
    "store": {
        "script": "benchmarks/bench_store.py",
        "baseline": "BENCH_store.json",
        "metric": "warm_over_cold_speedup",
        "kind": "ratio",
    },
    "obs": {
        "script": "benchmarks/bench_obs_overhead.py",
        "baseline": "BENCH_obs.json",
        "metric": "within_budget",
        "kind": "bool",
    },
    "sweep": {
        "script": "benchmarks/bench_sweep.py",
        "baseline": "BENCH_sweep.json",
        "metric": "speedup",
        "kind": "ratio",
    },
    "serve": {
        "script": "benchmarks/bench_serve.py",
        "baseline": "BENCH_serve.json",
        "metric": "records_per_sec",
        "kind": "ratio",
    },
    "match": {
        "script": "benchmarks/bench_match.py",
        "baseline": "BENCH_match.json",
        "metric": "speedup",
        "kind": "ratio",
    },
    "fabric": {
        "script": "benchmarks/bench_fabric.py",
        "baseline": "BENCH_fabric.json",
        "metric": "speedup",
        "kind": "ratio",
    },
    "ml": {
        "script": "benchmarks/bench_ml.py",
        "baseline": "BENCH_ml.json",
        "metric": "coverage_gain",
        "kind": "ratio",
    },
}

#: the benchmarks gated when ``--bench`` is not given (sweep is nightly
#: only — too slow for the PR gate).
DEFAULT_GATE = ("probe", "store", "obs", "serve", "match", "fabric",
                "ml")


def _usage_error(message):
    """One-line error on stderr, exit 2 (argparse's usage-error code)."""
    print(f"bench_gate: {message}", file=sys.stderr)
    raise SystemExit(2)


def parse_overrides(pairs, gated):
    """``["store=0.5"]`` → ``{"store": 0.5}`` (validated names).

    Every override must name a benchmark that is *actively gated* this
    run — an override for an unknown or un-gated name used to be
    silently ignored, which let typos neutralise a tolerance bump.
    """
    overrides = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if name not in BENCHES or not value:
            _usage_error(
                f"bad --override {pair!r}; expected NAME=TOLERANCE "
                f"with NAME one of {', '.join(sorted(BENCHES))}")
        if name not in gated:
            _usage_error(
                f"--override {pair!r} names a benchmark not gated "
                f"this run; gated: {', '.join(gated)}")
        try:
            overrides[name] = float(value)
        except ValueError:
            _usage_error(
                f"bad --override {pair!r}; tolerance {value!r} is "
                f"not a number")
    return overrides


def run_bench(name, spec, out_dir):
    """Execute one benchmark script; returns its fresh payload."""
    fresh_path = out_dir / spec["baseline"]
    command = [sys.executable, str(REPO_ROOT / spec["script"]),
               "-o", str(fresh_path)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] \
        if env.get("PYTHONPATH") else src
    print(f"[{name}] running {spec['script']} ...", flush=True)
    completed = subprocess.run(command, cwd=str(REPO_ROOT), env=env)
    if completed.returncode != 0:
        raise SystemExit(
            f"[{name}] benchmark exited {completed.returncode}")
    with open(fresh_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(name, spec, baseline, fresh, tolerance):
    """One verdict dict comparing fresh vs committed baseline."""
    metric = spec["metric"]
    base_value, fresh_value = baseline[metric], fresh[metric]
    if spec["kind"] == "bool":
        ok = bool(fresh_value) or not bool(base_value)
        floor = base_value
    else:
        floor = round(float(base_value) * (1.0 - tolerance), 3)
        ok = float(fresh_value) >= floor
    return {"bench": name, "metric": metric, "baseline": base_value,
            "fresh": fresh_value, "floor": floor,
            "tolerance": tolerance, "ok": ok}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", action="append", dest="benches",
                        choices=sorted(BENCHES), default=None,
                        help="gate only these benchmarks (repeatable; "
                             f"default: {', '.join(DEFAULT_GATE)})")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed fractional regression for ratio "
                             "metrics (default %(default)s)")
    parser.add_argument("--override", action="append", default=[],
                        metavar="NAME=TOLERANCE",
                        help="per-benchmark tolerance override, e.g. "
                             "store=0.5 for the noisy warm-cache ratio")
    parser.add_argument("--out-dir", default="bench_fresh",
                        help="where fresh BENCH_*.json land "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    # serve's headline is an absolute throughput (machine-dependent,
    # unlike the self-relative speedup ratios), so it defaults to a
    # looser floor; --override serve=... still wins.
    names = list(args.benches or DEFAULT_GATE)
    if "serve" in names:
        args.override = [f"serve={max(0.7, args.tolerance)}"] \
            + args.override
    overrides = parse_overrides(args.override, names)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    verdicts = []
    for name in names:
        spec = BENCHES[name]
        baseline_path = REPO_ROOT / spec["baseline"]
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        fresh = run_bench(name, spec, out_dir)
        tolerance = overrides.get(name, args.tolerance)
        verdicts.append(check(name, spec, baseline, fresh, tolerance))

    print("\nbench-regression gate:")
    for verdict in verdicts:
        mark = "ok  " if verdict["ok"] else "FAIL"
        print(f"  {mark} {verdict['bench']:6s} "
              f"{verdict['metric']:24s} fresh={verdict['fresh']} "
              f"baseline={verdict['baseline']} "
              f"floor={verdict['floor']}")
    summary_path = out_dir / "bench_gate.json"
    summary_path.write_text(
        json.dumps({"ok": all(v["ok"] for v in verdicts),
                    "verdicts": verdicts}, indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
    print(f"wrote {summary_path}")
    if not all(verdict["ok"] for verdict in verdicts):
        print("bench-regression gate FAILED", file=sys.stderr)
        return 1
    print("bench-regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
