#!/usr/bin/env python
"""Discover shared software supply chains from TLS fingerprints.

Reproduces the Section 4.4 methodology as a standalone tool: pairwise
Jaccard similarity across vendors exposes co-owned brands and shared
platforms; server-specific fingerprints expose shared SDKs — the
"software bill of materials" signal the paper highlights.

Usage::

    python examples/supply_chain_discovery.py [min_jaccard]
"""

import sys

from repro.core.sharing import (
    server_specific_fingerprints,
    similarity_bands,
    vendor_similarity_pairs,
)
from repro.core.tables import percent, render_table
from repro.study import get_study


def main(threshold=0.2):
    study = get_study()
    dataset = study.dataset

    print("=== Supply-chain discovery from TLS fingerprints ===\n")
    pairs = vendor_similarity_pairs(dataset, threshold=threshold)
    bands = similarity_bands(pairs)
    print(f"vendor pairs with Jaccard >= {threshold}: {len(pairs)}\n")
    for band, members in bands.items():
        if not members:
            continue
        print(f"  {band:>10}: " + ", ".join(
            "{%s}" % ", ".join(pair) for pair in members))
    print("\nInterpretation: Jaccard 1.0 pairs are one company under two "
          "brands;\nhigh bands indicate a licensed platform (e.g. Roku "
          "TVs); low bands a\nshared module or distro.\n")

    fraction, ties = server_specific_fingerprints(dataset, study.corpus)
    print(f"SNIs tied to a server-specific fingerprint: "
          f"{percent(fraction)} (paper: 17.42%)")
    rows = [[tie.sld, tie.fqdn_count,
             ",".join(tie.vulnerable_components) or "-",
             tie.device_count, ", ".join(tie.vendors)[:44]]
            for tie in ties[:15]]
    print()
    print(render_table(
        ["backend domain", "#hosts", "vuln", "#devices", "vendor group"],
        rows, title="Inferred shared SDKs (server-specific fingerprints)"))
    affected = sum(tie.device_count for tie in ties
                   if tie.vulnerable_components)
    print(f"\ndevices exposed through a vulnerable shared SDK stack: "
          f"{affected}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
