#!/usr/bin/env python
"""Quickstart: build the study world and reproduce the headline findings.

Runs the whole pipeline — generate the synthetic IoT ecosystem, capture
ClientHellos, probe every server from three vantage points — then prints
the paper's three key findings next to the measured values.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro.core.customization import degree_distribution, doc_vendor_all
from repro.core.issuers import issuer_report
from repro.core.tables import percent, render_table
from repro.match import shared_engine
from repro.study import StudyConfig, get_study


def main(seed=2023):
    print(f"Building the study world (seed={seed})...")
    # Probe with 4 workers — the engine guarantees output identical to
    # the serial path, so only the wall-clock changes.
    study = get_study(StudyConfig(seed=seed, probe_jobs=4))
    dataset = study.dataset
    print(f"  devices: {dataset.device_count}, "
          f"vendors: {dataset.vendor_count}, "
          f"users: {dataset.user_count}, "
          f"ClientHellos: {len(dataset)}")
    print(f"  servers: {len(study.world.servers)} SNIs "
          f"({len(study.world.reachable_servers())} reachable at probe)")

    print("\nProbing all servers from three vantage points...")
    certificates = study.certificates
    print(f"  leaf certificates: "
          f"{len(certificates.leaf_certificates())}")

    # Finding 1: heterogeneity — most fingerprints are vendor-unique.
    match = shared_engine().match_report(dataset, study.corpus)
    degrees = degree_distribution(dataset)
    doc = doc_vendor_all(dataset)
    unique_only = sum(1 for v in doc.values() if v == 1.0) / len(doc)

    # Finding 3: vendor-signed certificates escape public monitoring.
    issuers = issuer_report(dataset, certificates, study.ecosystem)

    rows = [
        ["fingerprints matching known libraries",
         percent(match.matched_fraction), "2.55%"],
        ["fingerprints used by a single vendor", percent(degrees["1"]),
         "77.47%"],
        ["vendors with only unique fingerprints", percent(unique_only),
         "~20%"],
        ["leaf certs signed by private CAs",
         percent(issuers.private_leaf_share()), "9.86%"],
        ["DigiCert's share of leaf certs",
         percent(issuers.issuer_share("DigiCert")), "47.26%"],
        ["vendors signing their own servers",
         len(issuers.vendors_self_signing()), "16"],
    ]
    print()
    print(render_table(["key finding", "measured", "paper"], rows,
                       title="Headline findings vs. the paper"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2023)
