#!/usr/bin/env python
"""Demonstrate the paper's recommendation: vendor CAs adopting ACME.

Section 5.4 urges private CAs (device vendors) to adopt ACME so
certificates rotate automatically instead of living for decades.  This
example migrates one vendor's servers onto ACME, runs two years of
renewal loops, and shows the before/after for validity and CT logging.

Usage::

    python examples/acme_migration.py [vendor]   # default: Tuya
"""

import sys

from repro.core.issuers import leaf_issuer_org
from repro.core.tables import render_table
from repro.inspector.generator import PRIVATE_CA_ORGS
from repro.inspector.timeline import PROBE_TIME, days
from repro.study import get_study
from repro.x509.acme import ACMEClient, ACMEServer, WellKnownStore


def main(vendor="Tuya"):
    study = get_study()
    org = PRIVATE_CA_ORGS.get(vendor)
    if org is None:
        raise SystemExit(f"{vendor!r} does not run a private CA; choose "
                         f"one of {sorted(PRIVATE_CA_ORGS)}")
    results = study.certificates.results_at()
    vendor_fqdns = sorted(
        fqdn for fqdn, result in results.items()
        if result.leaf is not None and leaf_issuer_org(result.leaf) == org)
    if not vendor_fqdns:
        raise SystemExit(f"no probed servers are signed by {org}")

    print(f"=== ACME migration for {vendor} (CA org: {org}) ===\n")
    rows = []
    for fqdn in vendor_fqdns:
        leaf = results[fqdn].leaf
        rows.append([fqdn, f"{leaf.validity_days / 365:.1f}y",
                     str(study.network.ct_logs.query(leaf))])
    print(render_table(["server", "validity", "in CT"], rows,
                       title="Before: set-and-forget certificates"))

    ca = study.ecosystem.issuer(org)
    well_known = WellKnownStore()
    server = ACMEServer(ca, well_known, ct_logs=study.network.ct_logs,
                        validity_days=90)
    client = ACMEClient(server, well_known,
                        contact=f"pki@{vendor.lower()}.example")
    for fqdn in vendor_fqdns:
        client.obtain([fqdn], now=PROBE_TIME)

    renewals = 0
    for month in range(1, 25):
        renewals += len(client.renew_due(at=PROBE_TIME + days(30 * month)))

    print()
    rows = []
    for fqdn in vendor_fqdns:
        leaf = client.certificates[(fqdn,)]
        rows.append([fqdn, f"{leaf.validity_days:.0f}d",
                     str(study.network.ct_logs.query(leaf))])
    print(render_table(["server", "validity", "in CT"], rows,
                       title="After: ACME-managed certificates"))
    print(f"\nrenewals performed over a simulated 24 months: {renewals}")
    print("Every certificate now rotates automatically and is publicly "
          "auditable in CT —\nexactly the posture shift the paper calls "
          "for.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Tuya")
