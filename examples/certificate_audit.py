#!/usr/bin/env python
"""Audit the certificates of the servers one vendor's devices visit.

Walks the Section 5 pipeline for a chosen vendor: probe the servers its
devices contact, validate every chain Zeek-style, check CT logging, and
flag the paper's problem patterns (incomplete chains, private roots,
long validity, expiry, CN mismatch).

Usage::

    python examples/certificate_audit.py [vendor]   # default: Roku
"""

import sys

from repro.core.issuers import leaf_issuer_org
from repro.core.tables import render_table
from repro.inspector.timeline import PROBE_TIME
from repro.study import get_study
from repro.x509.validation import ChainStatus


def main(vendor="Roku"):
    study = get_study()
    dataset = study.dataset
    if vendor not in dataset.vendor_names():
        raise SystemExit(f"unknown vendor {vendor!r}")

    # SNIs this vendor's devices actually contacted.
    snis = sorted(
        sni for sni in dataset.snis()
        if any(dataset.device_vendor(d) == vendor
               for d in dataset.sni_devices(sni)))
    print(f"=== Server certificate audit for {vendor} ===")
    print(f"servers contacted by {vendor} devices: {len(snis)}")

    results = study.certificates.results_at()
    validator = study.validator()
    rows, issues = [], {}
    for sni in snis:
        result = results.get(sni)
        if result is None or not result.chain:
            issues["unreachable"] = issues.get("unreachable", 0) + 1
            continue
        report = validator.validate(result.chain, at=PROBE_TIME,
                                    hostname=sni)
        leaf = report.leaf
        in_ct = study.network.ct_logs.query(leaf)
        flags = []
        if report.status is not ChainStatus.OK:
            flags.append(report.status.value)
        if report.cn_mismatch:
            flags.append("CN mismatch")
        if leaf.validity_days > 1000:
            flags.append(f"{leaf.validity_days / 365:.0f}y validity")
        if not in_ct:
            flags.append("not in CT")
        if flags:
            rows.append([sni, leaf_issuer_org(leaf),
                         "; ".join(flags)[:60]])
        for flag in flags:
            issues[flag.split(" (")[0]] = issues.get(flag, 0) + 1

    print(f"servers with findings: {len(rows)}")
    print()
    print(render_table(["server (SNI)", "leaf issuer", "findings"],
                       rows[:25],
                       title=f"Findings (first 25 of {len(rows)})"))
    print()
    summary = sorted(issues.items(), key=lambda kv: -kv[1])
    print(render_table(["finding", "#servers"], summary,
                       title="Finding summary"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Roku")
