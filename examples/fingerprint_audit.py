#!/usr/bin/env python
"""Audit one vendor's client-side TLS posture.

For a chosen vendor, this walks the paper's Section 4 pipeline: library
matching, DoC metrics, security levels, preference-order risks, and the
fingerprints it shares with other vendors (supply-chain signals).

Usage::

    python examples/fingerprint_audit.py [vendor]   # default: Samsung
"""

import sys

from repro.core.customization import (
    doc_device_vendor,
    doc_vendor,
    vendor_heterogeneity,
)
from repro.core.matching import validate_case_study
from repro.core.preferences import (
    vendors_preferring_vulnerable_first,
    vendors_without_vulnerable,
)
from repro.core.security import (
    fingerprint_security_level,
    fingerprint_vulnerable_components,
)
from repro.core.tables import percent, render_table
from repro.study import get_study


def main(vendor="Samsung"):
    study = get_study()
    dataset = study.dataset
    if vendor not in dataset.vendor_names():
        raise SystemExit(f"unknown vendor {vendor!r}; choose one of "
                         f"{dataset.vendor_names()}")

    fingerprints = dataset.vendor_fingerprints(vendor)
    devices = dataset.devices_of_vendor(vendor)
    heterogeneity = vendor_heterogeneity(dataset, vendor)

    print(f"=== Client-side TLS audit: {vendor} ===")
    print(f"devices observed: {len(devices)}")
    print(f"distinct fingerprints: {len(fingerprints)}")
    print(f"DoC_vendor (unique fp share): "
          f"{percent(doc_vendor(dataset, vendor))}")
    print(f"DoC_device (mean per-device uniqueness): "
          f"{percent(doc_device_vendor(dataset, vendor))}")
    print(f"fingerprints on one device only: "
          f"{percent(heterogeneity.used_by_one_device)}")

    by_level = {}
    worst = []
    for fp in fingerprints:
        level = fingerprint_security_level(fp).pretty
        by_level[level] = by_level.get(level, 0) + 1
        tags = fingerprint_vulnerable_components(fp)
        if tags:
            worst.append((tags, len(dataset.fingerprint_devices(fp))))
    print(f"security levels: {dict(sorted(by_level.items()))}")
    if worst:
        worst.sort(key=lambda item: -len(item[0]))
        tags, device_count = worst[0]
        print(f"worst fingerprint components: {tags} "
              f"(on {device_count} devices)")

    matches = validate_case_study(dataset, study.corpus, vendor)
    print(f"known-library matches: {matches or '(none — all customized)'}")

    if vendor in vendors_without_vulnerable(dataset):
        print("preference check: no vulnerable suites proposed — clean")
    elif vendor in vendors_preferring_vulnerable_first(dataset):
        print("preference check: ⚠ proposes a VULNERABLE suite first")
    else:
        print("preference check: vulnerable suites present, never first")

    shared_with = {}
    for fp in fingerprints:
        for other in dataset.fingerprint_vendors(fp) - {vendor}:
            shared_with[other] = shared_with.get(other, 0) + 1
    if shared_with:
        rows = sorted(shared_with.items(), key=lambda kv: -kv[1])[:8]
        print()
        print(render_table(["shares fingerprints with", "#fps"], rows,
                           title="Cross-vendor sharing (supply chain?)"))
    else:
        print("no fingerprints shared with any other vendor")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Samsung")
