#!/usr/bin/env python
"""Run the paper's Section 6 case studies: smart TVs and local-network PKI.

Usage::

    python examples/smart_tv_case_study.py
"""

from repro.core.casestudies import local_pki_study, smart_tv_study
from repro.core.tables import render_table
from repro.study import get_study


def main():
    study = get_study()

    print("=== Section 6.1 — smart TVs (Amazon vs Roku) ===\n")
    tv = smart_tv_study(ecosystem=study.ecosystem)
    for group, buckets in sorted(tv.status_table().items()):
        print(f"[{group}]")
        for issue, fqdns in sorted(buckets.items()):
            print(f"  {issue}: {len(fqdns)} host(s) — "
                  + ", ".join(fqdns[:4])
                  + ("..." if len(fqdns) > 4 else ""))
    print()
    for group in ("amazon-own", "roku-own"):
        infra = tv.vendor_infrastructure[group]
        issuers = sorted({issuer for issuer, _d, _ct in infra})
        never_logged = sorted({issuer for issuer, _d, in_ct in infra
                               if not in_ct})
        print(f"{group}: issuers={issuers}; never in CT: "
              f"{never_logged or '(none)'}")

    print("\n=== Section 6.2 — PKI on the local network ===\n")
    local = local_pki_study()
    rows = []
    for connection in local.connections:
        if connection.chain_extractable:
            top = connection.chain[-1]
            detail = (f"{top.subject.common_name} "
                      f"({top.validity_days / 365:.0f}y)")
        else:
            detail = "(certificates encrypted — TLS 1.3)"
        rows.append([f"{connection.client} → {connection.server}",
                     connection.port, connection.tls_version, detail])
    print(render_table(["connection", "port", "TLS", "chain top"], rows))
    print("\nNone of the local-PKI roots appear in the public trust "
          "stores or CT logs:")
    for connection in local.extractable():
        top = connection.chain[-1]
        print(f"  {top.subject.common_name}: "
              f"store={study.ecosystem.union_store.contains(top)}, "
              f"CT={study.network.ct_logs.query(top)}")


if __name__ == "__main__":
    main()
