"""Instrumentation-overhead benchmark for ``repro.obs``.

Times ``run_full_study`` (every analysis in the paper, over warmed study
artifacts) three ways and writes ``BENCH_obs.json``:

1. **disabled** — the default inactive observability context (every
   span/counter call is a no-op); this is the uninstrumented baseline;
2. **null_sink** — a live tracer + metrics registry discarding events
   into a :class:`~repro.obs.sink.NullSink`;
3. **jsonl_sink** — the full ``--trace`` path, streaming span events to
   a JSONL file.

Modes are *interleaved* round-robin (disabled, null, jsonl, disabled,
...) and best-of-N per mode is compared, so slow machine drift between
repetitions cannot masquerade as instrumentation cost.  The run fails
(exit 1) if the fully-instrumented mode costs more than
``--max-overhead`` (default 5%) over the baseline — the contract that
lets every later perf PR leave tracing on for its before/after story.

The same budget gates the *service* telemetry plane: one full request
middleware cycle (in-flight gauge up, latency histogram + status-class
counters + SLO samples + flight-recorder event, gauge down) is timed
over ``--requests`` iterations and must cost less than
``--max-overhead`` percent of the committed ``BENCH_serve.json`` query
p50 — i.e. instrumenting a request must stay invisible next to serving
it.  ``within_budget`` (the CI gate metric) is true only when both
budgets hold.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        [--seed 2023] [--repeat 3] [-o BENCH_obs.json]
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro import obs
from repro.config import StudyConfig
from repro.core.pipeline import run_full_study
from repro.study import Study


#: fallback request-telemetry budget when no serve baseline exists (µs).
DEFAULT_REQUEST_BUDGET_US = 150.0


def _request_budget_us(max_overhead_pct):
    """``max_overhead_pct`` of the committed serve query p50, in µs."""
    baseline = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_serve.json"
    try:
        p50_ms = json.loads(
            baseline.read_text(encoding="utf-8"))["query_p50_ms"]
    except (OSError, ValueError, KeyError):
        return DEFAULT_REQUEST_BUDGET_US
    return p50_ms * 1000.0 * (max_overhead_pct / 100.0)


def _time_request_middleware(requests, repeat=3):
    """Best-of-``repeat`` cost of one full middleware cycle, in µs.

    Measures exactly what :meth:`QueryService.handle_request` adds on
    top of routing: ``request_started`` + ``request_finished`` (gauge
    up/down, latency histogram, status-class counters, SLO samples,
    flight-recorder event) under a live registry.
    """
    from repro.obs.telemetry import ServiceTelemetry
    best = float("inf")
    with obs.enabled():
        telemetry = ServiceTelemetry()
        for _ in range(repeat):
            started = time.perf_counter()
            for _ in range(requests):
                t0 = telemetry.request_started()
                telemetry.request_finished("/v1/doc", 200, t0)
            best = min(best, time.perf_counter() - started)
    return best / requests * 1e6


def _interleaved_best(repeat, modes):
    """Best-of-``repeat`` per mode, modes interleaved round-robin."""
    best = {name: float("inf") for name, _ in modes}
    for _ in range(repeat):
        for name, thunk in modes:
            started = time.perf_counter()
            thunk()
            best[name] = min(best[name],
                             time.perf_counter() - started)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed repetitions per mode; best-of wins "
                             "(default %(default)s)")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="maximum tolerated overhead in percent "
                             "(default %(default)s)")
    parser.add_argument("--requests", type=int, default=20000,
                        help="request-middleware timing iterations "
                             "(default %(default)s)")
    parser.add_argument("-o", "--output", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    study = Study(config=StudyConfig(seed=args.seed))
    print("warming study artifacts (world, probes, corpus)...")
    run_full_study(study)

    span_count = {}

    def null_run():
        with obs.enabled():
            run_full_study(study)

    def jsonl_run(path):
        with obs.enabled(sink=obs.JsonlSink(path)) as ctx:
            run_full_study(study)
            span_count["spans"] = len(ctx.tracer.spans)
        ctx.close()

    print(f"timing run_full_study, interleaved best of "
          f"{args.repeat} per mode...")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = pathlib.Path(tmp) / "trace.jsonl"
        best = _interleaved_best(args.repeat, (
            ("disabled", lambda: run_full_study(study)),
            ("null_sink", null_run),
            ("jsonl_sink", lambda: jsonl_run(trace_path)),
        ))
    disabled = best["disabled"]
    null_sink = best["null_sink"]
    jsonl_sink = best["jsonl_sink"]
    print(f"  disabled   {disabled:6.3f}s  (baseline)")
    print(f"  null sink  {null_sink:6.3f}s  "
          f"({(null_sink / disabled - 1) * 100:+.2f}%)")
    print(f"  jsonl sink {jsonl_sink:6.3f}s  "
          f"({(jsonl_sink / disabled - 1) * 100:+.2f}%)")

    print(f"timing request middleware, best of 3 x "
          f"{args.requests} requests...")
    request_us = _time_request_middleware(args.requests)
    request_budget_us = _request_budget_us(args.max_overhead)
    request_ok = request_us < request_budget_us
    print(f"  request telemetry {request_us:8.2f}us/request "
          f"(budget {request_budget_us:.0f}us = "
          f"{args.max_overhead:g}% of serve query p50)")

    overhead_pct = (jsonl_sink / disabled - 1) * 100
    trace_ok = overhead_pct < args.max_overhead
    ok = trace_ok and request_ok
    payload = {
        "seed": args.seed,
        "repeat": args.repeat,
        "spans_per_run": span_count.get("spans", 0),
        "disabled_seconds": round(disabled, 4),
        "null_sink_seconds": round(null_sink, 4),
        "jsonl_sink_seconds": round(jsonl_sink, 4),
        "null_sink_overhead_pct": round(
            (null_sink / disabled - 1) * 100, 2),
        "jsonl_sink_overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": args.max_overhead,
        "request_telemetry_us": round(request_us, 2),
        "request_budget_us": round(request_budget_us, 2),
        "request_within_budget": request_ok,
        "within_budget": ok,
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    if not trace_ok:
        print(f"FAIL: {overhead_pct:.2f}% overhead exceeds "
              f"{args.max_overhead}% budget", file=sys.stderr)
    if not request_ok:
        print(f"FAIL: {request_us:.2f}us request telemetry exceeds "
              f"{request_budget_us:.0f}us budget", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
