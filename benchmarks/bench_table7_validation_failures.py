"""Table 7 — certificate chains with validation failure.

Paper: netflix.com (6 FQDNs, 278 devices, 21 vendors), roku.com (14,
131), nest.com (3, 65), samsungcloudsolution.net (7, 43), ... plus the
one DigiCert-signed amazonaws.com host; 45.78% of private-CA leafs fail
this way; CN mismatch on a2.tuyaus.com.
"""

from repro.core.chains import (
    private_leaf_incomplete_share,
    validation_failure_rows,
)
from repro.core.tables import percent, render_table


def test_table7_validation_failures(benchmark, study, dataset, survey,
                                    emit):
    rows = benchmark(validation_failure_rows, survey, dataset,
                     study.ecosystem)
    table_rows = []
    for row in rows:
        issuer = f"**{row.leaf_issuer}**" if row.issuer_is_public \
            else row.leaf_issuer
        table_rows.append([
            row.domain, row.fqdn_count, issuer,
            ",".join(str(l) for l in row.chain_lengths),
            row.device_count, ", ".join(row.vendors)[:52]])
    table = render_table(
        ["domain", "#FQDNs", "leaf issuer (** = public)", "chain len",
         "#devices", "vendors"], table_rows,
        title="Table 7 — chains with validation failure")
    share = private_leaf_incomplete_share(survey, study.ecosystem)
    table += (f"\nprivate-CA leafs failing for a missing root: "
              f"{percent(share)} (paper: 45.78%)")
    table += (f"\nCN mismatch hosts: {survey.cn_mismatches()} "
              f"(paper: a2.tuyaus.com)")
    emit("table7_validation_failures", table)
    domains = {row.domain for row in rows}
    assert {"netflix.com", "roku.com", "nest.com"} <= domains
