"""Extension: JA3 vs the paper's 3-tuple fingerprint.

JA3 is the ecosystem-standard TLS client hash; the paper uses the raw
3-tuple because IoT Inspector truncates ClientHellos.  This benchmark
quantifies the difference: GREASE-randomizing devices produce multiple
3-tuples that collapse onto one JA3.
"""

from repro.core.tables import percent, render_table
from repro.tlslib.ja3 import compare_corpora


def test_ja3_reduction(benchmark, dataset, emit):
    summary = benchmark(compare_corpora, dataset)
    rows = [
        ["3-tuple fingerprints", summary["tuple_fingerprints"]],
        ["JA3 fingerprints", summary["ja3_fingerprints"]],
        ["JA3 hashes covering multiple 3-tuples",
         summary["ja3_with_multiple_tuples"]],
        ["reduction from GREASE stripping",
         percent(summary["reduction"])],
    ]
    emit("ja3_reduction", render_table(["quantity", "value"], rows,
                                       title="Extension — JA3 reduction"))
    assert summary["ja3_fingerprints"] <= summary["tuple_fingerprints"]
