"""Benchmark: warm-over-cold speedup of the content-addressed store.

Runs ``python -m repro report`` as real subprocesses (each one pays
interpreter start-up, world generation, probing, and analysis exactly
like a user invocation) three ways:

- **no-cache** — the pre-store baseline (``--no-cache``);
- **cold** — caching enabled against an empty ``--cache-dir`` (pays the
  baseline work *plus* serializing every artifact);
- **warm** — the same command again: every analysis result, the capture,
  and the certificate dataset come back from the store, so neither the
  world generator nor the prober runs at all.

Writes ``BENCH_store.json`` with the three wall-clocks and the
warm-over-cold speedup (the PR's acceptance asks for >= 3x; in practice
it is one to two orders of magnitude).

Run: ``make bench-store`` or
``PYTHONPATH=src python benchmarks/bench_store.py -o BENCH_store.json``
"""

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time


def _run_report(cache_args, seed, outdir, tag):
    """One ``repro report`` subprocess; returns (seconds, report path)."""
    out = outdir / f"report-{tag}.md"
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "repro", "report",
               "--seed", str(seed), "-o", str(out)] + cache_args
    started = time.perf_counter()
    subprocess.run(command, check=True, env=env,
                   stdout=subprocess.DEVNULL)
    return time.perf_counter() - started, out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("-o", "--output", default="BENCH_store.json")
    args = parser.parse_args(argv)

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-store-"))
    cache_dir = workdir / "cache"
    try:
        print("repro report, no cache (baseline)...")
        no_cache_seconds, baseline = _run_report(
            ["--no-cache"], args.seed, workdir, "nocache")
        print(f"  no-cache  {no_cache_seconds:6.2f}s")

        print("repro report, cold cache...")
        cold_seconds, cold = _run_report(
            ["--cache-dir", str(cache_dir)], args.seed, workdir, "cold")
        print(f"  cold      {cold_seconds:6.2f}s")

        print("repro report, warm cache...")
        warm_seconds, warm = _run_report(
            ["--cache-dir", str(cache_dir)], args.seed, workdir, "warm")
        print(f"  warm      {warm_seconds:6.2f}s")

        identical = (baseline.read_bytes() == cold.read_bytes()
                     == warm.read_bytes())
        cache_bytes = sum(f.stat().st_size
                          for f in cache_dir.rglob("*") if f.is_file())
        speedup = cold_seconds / warm_seconds
        print(f"  identical output: {identical}; "
              f"cache {cache_bytes / 1e6:.1f} MB; "
              f"warm-over-cold {speedup:.1f}x")

        payload = {
            "benchmark": "artifact_store_warm_report",
            "seed": args.seed,
            "no_cache_seconds": round(no_cache_seconds, 3),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "warm_over_cold_speedup": round(speedup, 2),
            "cache_bytes": cache_bytes,
            "outputs_identical": identical,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
        if not identical:
            print("ERROR: cached report differs from baseline",
                  file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
