"""Table 2 — fingerprint degree distribution.

Paper: degree 1: 77.47%, 2: 11.43%, 3–5: 8.32%, >5: 2.78%.
"""

from repro.core.customization import degree_distribution
from repro.core.tables import percent, render_table

PAPER = {"1": "77.47%", "2": "11.43%", "3-5": "8.32%", ">5": "2.78%"}


def test_table2_degree_distribution(benchmark, dataset, emit):
    distribution = benchmark(degree_distribution, dataset)
    rows = [[bucket, percent(share), PAPER[bucket]]
            for bucket, share in distribution.items()]
    emit("table2_degree", render_table(
        ["degree", "measured", "paper"], rows,
        title="Table 2 — fingerprint degree distribution"))
    assert max(distribution, key=distribution.get) == "1"
