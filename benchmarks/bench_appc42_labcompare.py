"""Appendix C.4.2 — cross-check against the lab dataset.

Paper: 17 vendors in common; 362 SNIs visited in both datasets; 356
present same-issuer certificates; the rest are largely CT-consistent.
"""

from repro.core.labcompare import lab_comparison
from repro.core.tables import percent, render_table


def test_appendix_c42_lab_comparison(benchmark, study, dataset,
                                     certificates, emit):
    comparison = benchmark(lab_comparison, dataset, certificates,
                           study.network)
    rows = [
        ["vendors in common", len(comparison.common_vendors), "17"],
        ["SNIs in common", len(comparison.common_snis), "362"],
        ["same issuer organization", comparison.same_issuer, "356"],
        ["different issuer", len(comparison.different_issuer), "6"],
        ["issuer consistency", percent(comparison.consistency), "98.3%"],
    ]
    table = render_table(["quantity", "measured", "paper"], rows,
                         title="Appendix C.4.2 — lab dataset cross-check")
    switched = ", ".join(f"{sni} ({then}→{now})"
                         for sni, then, now
                         in comparison.different_issuer[:6])
    table += f"\nissuer switches: {switched}"
    emit("appc42_labcompare", table)
    assert comparison.same_issuer == 356
