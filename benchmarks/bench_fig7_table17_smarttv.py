"""Figure 7 & Table 17 — the smart-TV case study (Section 6.1).

Paper: third-party channel servers mostly use public CAs but send
incomplete chains or expired certificates; Amazon-owned servers use
Amazon/DigiCert ~400-day certs, all in CT; Roku-owned servers mix
Amazon/DigiCert/Let's Encrypt/Roku, with Roku-signed certs near 5,000
days and never logged.
"""

from repro.core.casestudies import smart_tv_study
from repro.core.tables import render_table


def test_fig7_table17_smart_tvs(benchmark, study, emit):
    tv = benchmark(smart_tv_study, study.ecosystem)
    table = ""
    status_table = tv.status_table()
    rows = []
    for group in sorted(status_table):
        for issue, fqdns in sorted(status_table[group].items()):
            rows.append([group, issue, len(fqdns),
                         ", ".join(fqdns[:3]) +
                         ("..." if len(fqdns) > 3 else "")])
    table += render_table(["TV group", "chain issue", "#hosts",
                           "examples"], rows,
                          title="Table 17 — invalid/misconfigured chains")
    fig_rows = []
    for group in ("amazon-own", "roku-own"):
        for issuer, days, in_ct in sorted(
                tv.vendor_infrastructure[group]):
            fig_rows.append([group, issuer, f"{days:.0f}", str(in_ct)])
    table += "\n" + render_table(
        ["group", "issuer", "validity days", "in CT"], fig_rows,
        title="Figure 7 — vendor-owned TV infrastructure")
    emit("fig7_table17_smarttv", table)
    roku_issuers = {issuer for issuer, _d, _ct
                    in tv.vendor_infrastructure["roku-own"]}
    assert "Roku" in roku_issuers and len(roku_issuers) >= 3
