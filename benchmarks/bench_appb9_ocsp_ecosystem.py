"""Appendix B.9, both sides — the OCSP ecosystem.

Paper (client side): 648 of 2,014 devices (33 vendors) include
``status_request``.  This benchmark closes the loop with the server side:
which of the probed servers actually staple when asked, and what does a
requesting device get back?
"""

from repro.core.issuers import leaf_issuer_org
from repro.core.params import ocsp_usage
from repro.core.tables import percent, render_table


def test_ocsp_ecosystem(benchmark, study, dataset, certificates, emit):
    def survey():
        results = certificates.results_at()
        stapling, silent = 0, 0
        private_unstapled = 0
        for result in results.values():
            if result.leaf is None:
                continue
            if result.stapled:
                stapling += 1
            else:
                silent += 1
                if not study.ecosystem.is_public_trust(
                        leaf_issuer_org(result.leaf)):
                    private_unstapled += 1
        return stapling, silent, private_unstapled

    stapling, silent, private_unstapled = benchmark(survey)
    devices, vendors = ocsp_usage(dataset)
    total = stapling + silent
    rows = [
        ["devices requesting OCSP (status_request)",
         f"{len(devices)} of {dataset.device_count}", "648 of 2,014"],
        ["vendors with requesting devices", len(vendors), "33"],
        ["servers stapling when asked",
         f"{stapling} ({percent(stapling / total)})", "(partial adoption)"],
        ["servers not stapling", silent, "—"],
        ["... of which vendor-CA servers (no responder at all)",
         private_unstapled, "—"],
    ]
    table = render_table(["quantity", "measured", "paper"], rows,
                         title="Appendix B.9 — the OCSP ecosystem, "
                               "both sides")
    table += ("\nDevices that ask for revocation state get an answer from "
              f"only {percent(stapling / total)} of servers; vendor-CA "
              "servers can never answer — the revocation gap of "
              "Section 5.3.")
    emit("appb9_ocsp_ecosystem", table)
    assert stapling > 0
    assert private_unstapled > 0
