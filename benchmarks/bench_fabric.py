"""Single-process vs cluster-backend campaign wall-clock benchmark.

Runs the same multi-seed probe-stage campaign twice and writes
``BENCH_fabric.json``:

1. local — ``SweepRunner(backend="local", workers=1)``, the inline
   single-process reference path, one study after another;
2. cluster — ``SweepRunner(backend="cluster", workers=2)``, a fabric
   coordinator in-process plus two spawned fabric worker processes,
   each running ``--worker-jobs`` claim threads so one thread's
   latency-model sleeps overlap another's compute.

Neither run gets an artifact cache: the point is the fabric's
*scheduling* win over one process, not the store's.  The per-unit
``config_digest``/``node_digests`` of both runs must be byte-identical
— the digest-equivalence contract the fabric extends across the lease
protocol; the run fails loudly if not.

Usage::

    PYTHONPATH=src python benchmarks/bench_fabric.py \
        [--seeds 4] [--workers 2] [--worker-jobs 2] [--seed 3101] \
        [--time-scale 0.08] [-o BENCH_fabric.json]
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.config import StudyConfig
from repro.sweep import SweepRunner, expand_grid


def _timed_campaign(units, index_path, **kwargs):
    runner = SweepRunner(units, index_path=index_path, **kwargs)
    started = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - started


def _digest_map(result):
    return {payload["key"]: (payload["config_digest"],
                             payload["node_digests"])
            for payload in result.results()}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=4,
                        help="campaign size: consecutive seeds starting "
                             "at --seed (default %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="fabric worker processes "
                             "(default %(default)s)")
    parser.add_argument("--worker-jobs", type=int, default=2,
                        help="claim threads per worker process "
                             "(default %(default)s)")
    parser.add_argument("--seed", type=int, default=3101,
                        help="base seed (default %(default)s, disjoint "
                             "from the tests' 2023 grid)")
    parser.add_argument("--time-scale", type=float, default=0.08,
                        help="real seconds slept per simulated network "
                             "second while probing (default "
                             "%(default)s; never changes output bytes)")
    parser.add_argument("-o", "--output", default="BENCH_fabric.json")
    args = parser.parse_args(argv)

    units = expand_grid(StudyConfig(seed=args.seed), seeds=args.seeds,
                        time_scale=args.time_scale, stage="probe")
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-fabric-"))

    print(f"campaign: {len(units)} probe-stage units "
          f"(time scale {args.time_scale})...")
    local, local_seconds = _timed_campaign(
        units, scratch / "local.json", backend="local", workers=1)
    print(f"  --backend local (1 proc)   {local_seconds:6.2f}s")
    cluster, cluster_seconds = _timed_campaign(
        units, scratch / "cluster.json", backend="cluster",
        workers=args.workers, worker_jobs=args.worker_jobs)
    speedup = local_seconds / cluster_seconds
    print(f"  --backend cluster "
          f"({args.workers}x{args.worker_jobs})      "
          f"{cluster_seconds:6.2f}s ({speedup:.2f}x)")

    ok = local.ok and cluster.ok
    identical = ok and _digest_map(local) == _digest_map(cluster)
    if not identical:
        print("FATAL: cluster campaign digests differ from local",
              file=sys.stderr)

    payload = {
        "seed": args.seed,
        "seeds": args.seeds,
        "units": len(units),
        "stage": "probe",
        "workers": args.workers,
        "worker_jobs": args.worker_jobs,
        "time_scale": args.time_scale,
        "local_seconds": round(local_seconds, 3),
        "cluster_seconds": round(cluster_seconds, 3),
        "speedup": round(speedup, 2),
        "digests_identical": identical,
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    if speedup < 2.0:
        print(f"WARNING: speedup {speedup:.2f}x below the 2x target",
              file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
