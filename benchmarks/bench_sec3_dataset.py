"""Section 3 — the dataset description.

Paper: 2,014 devices of 286 models from 65 vendors across 721 users;
11,439 ClientHellos over 15 months (Apr 29 2019 – Aug 1 2020); most
products have more than one device (75 Wyze cameras).
"""

from repro.core.tables import render_table
from repro.inspector.stats import (
    capture_window_coverage,
    describe,
    devices_per_product,
)


def test_section3_dataset_description(benchmark, study, dataset, emit):
    description = benchmark(describe, dataset)
    funnel = study.world.funnel
    rows = [
        ["devices", description.device_count, "2,014"],
        ["models (vendor, type)", description.model_count, "286"],
        ["vendors", description.vendor_count, "65"],
        ["users", description.user_count, "721"],
        ["ClientHello records", description.record_count, "11,439"],
        ["capture span (days)", f"{description.capture_days:.0f}",
         "~460 (15 months)"],
        ["devices per user (mean/max)",
         f"{description.devices_per_user_mean:.2f} / "
         f"{description.devices_per_user_max}", "—"],
        ["records per device (mean/median)",
         f"{description.records_per_device_mean:.1f} / "
         f"{description.records_per_device_median}", "—"],
        ["distinct SNIs in records", description.snis, "≥1,194"],
        ["unidentifiable labels dropped",
         funnel["unidentified_labels_dropped"], "(funnel)"],
        ["rare SNIs filtered (≤2 users)", funnel["rare_snis_filtered"],
         "(funnel)"],
    ]
    wyze = devices_per_product(dataset, vendor="Wyze")
    table = render_table(["quantity", "measured", "paper"], rows,
                         title="Section 3 — dataset description")
    table += f"\nWyze product split: {wyze} (paper: 75 Wyze cameras)"
    coverage = capture_window_coverage(dataset)
    table += f"\nrecords per capture month: {coverage}"
    emit("sec3_dataset", table)
    assert description.device_count == 2014
    assert sum(wyze.values()) == 75
