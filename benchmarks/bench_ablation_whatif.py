"""Ablations & what-if experiments on the paper's recommendations.

These go beyond reproduction: they *evaluate* the paper's Discussion
items on the simulated ecosystem — ACME adoption by vendor CAs, AIA
chasing vs Zeek's strict validation, trust-store choice, revocation
exposure, and the fingerprint-definition ablation.
"""

from repro.core.tables import percent, render_table
from repro.core.whatif import (
    acme_adoption,
    aia_chasing,
    fingerprint_definition,
    revocation_exposure,
    trust_store_choice,
)


def test_whatif_acme_adoption(benchmark, study, emit):
    result = benchmark(acme_adoption, study)
    before, after = result["before"], result["after"]
    rows = [
        ["validity (min/med/max days)",
         "/".join(f"{v:.0f}" for v in before["validity_min_med_max"]),
         "/".join(f"{v:.0f}" for v in after["validity_min_med_max"])],
        ["CT coverage", percent(before["ct_share"]),
         percent(after["ct_share"])],
    ]
    table = render_table(
        ["vendor-signed certificates", "today", "with ACME"], rows,
        title=f"What-if: private CAs adopt ACME "
              f"({result['private_leaf_count']} leafs)")
    table += ("\nThe paper's 36,500-day tail collapses to 90 days and "
              "every leaf lands in CT.")
    emit("ablation_acme", table)
    assert after["validity_min_med_max"][2] <= 90
    assert after["ct_share"] == 1.0


def test_whatif_aia_chasing(benchmark, study, certificates, emit):
    result = benchmark(aia_chasing, study, certificates)
    statuses = sorted(set(result["before"]) | set(result["after"]),
                      key=lambda status: status.name)
    rows = [[status.value, result["before"].get(status, 0),
             result["after"].get(status, 0)] for status in statuses]
    table = render_table(["status", "strict (Zeek-like)", "AIA chasing"],
                         rows, title="What-if: AIA intermediate fetching")
    table += (f"\nverdicts fixed by fetching the intermediate: "
              f"{len(result['fixed_by_aia'])} — private-root failures "
              "remain failures (trust cannot be fetched).")
    emit("ablation_aia", table)
    from repro.x509.validation import ChainStatus
    assert result["after"].get(ChainStatus.INCOMPLETE_CHAIN, 0) <= \
        result["before"].get(ChainStatus.INCOMPLETE_CHAIN, 0)


def test_whatif_trust_stores(benchmark, study, certificates, emit):
    histograms = benchmark(trust_store_choice, study, certificates)
    statuses = sorted({status for counts in histograms.values()
                       for status in counts}, key=lambda s: s.name)
    rows = [[status.value] + [histograms[store].get(status, 0)
                              for store in sorted(histograms)]
            for status in statuses]
    emit("ablation_trust_stores", render_table(
        ["status"] + sorted(histograms), rows,
        title="Ablation: trust store choice"))
    assert histograms["mozilla"] == histograms["union"]


def test_whatif_revocation_exposure(benchmark, study, emit):
    result = benchmark(revocation_exposure, study)
    rows = [
        ["public-CA leafs revoked", result["revoked_leafs"]["public"]],
        ["private-CA leafs revoked", result["revoked_leafs"]["private"]],
        ["devices with a working revocation path",
         result["devices_protected_by_revocation"]],
        ["devices exposed (no revocation path)",
         result["devices_exposed_no_revocation_path"]],
    ]
    emit("ablation_revocation", render_table(
        ["quantity", "value"], rows,
        title="What-if: 5% of leaf keys are compromised"))
    assert result["devices_exposed_no_revocation_path"] >= 0


def test_ablation_fingerprint_definition(benchmark, dataset, emit):
    result = benchmark(fingerprint_definition, dataset)
    rows = [[name, data["fingerprints"],
             percent(data["degree_one_share"])]
            for name, data in result.items()]
    table = render_table(
        ["fingerprint definition", "#fingerprints", "degree-1 share"],
        rows, title="Ablation: what counts as a fingerprint?")
    table += ("\nThe single-vendor share is robust across definitions — "
              "the paper's 3-tuple is not doing the work; the ecosystem "
              "is genuinely fragmented.")
    emit("ablation_fingerprint_definition", table)
    shares = [data["degree_one_share"] for data in result.values()]
    assert min(shares) > 0.6
