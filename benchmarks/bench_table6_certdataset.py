"""Table 6 & Section 5.1 — the IoT server certificate dataset.

Paper: 1,151 servers (FQDNs), 842 leaf certificates, 33 issuer
organizations, 65 device vendors; 1.72 FQDNs/cert on average (max 32);
64.96% of certs served from multiple IPs (mean 5.43, max 93).
"""

from repro.core.issuers import issuer_report
from repro.core.tables import percent, render_table


def test_table6_certificate_dataset(benchmark, study, dataset,
                                    certificates, network, emit):
    report = benchmark(issuer_report, dataset, certificates,
                       study.ecosystem)
    sharing = certificates.fqdns_by_leaf()
    counts = [len(v) for v in sharing.values()]
    ips = certificates.ips_by_leaf(network)
    ip_counts = [len(v) for v in ips.values()]
    multi_ip = sum(1 for v in ip_counts if v > 1) / len(ip_counts)
    rows = [
        ["servers (FQDNs)", report.server_count, "1151"],
        ["leaf certificates", report.leaf_count, "842"],
        ["issuer organizations", report.issuer_org_count, "33"],
        ["device vendors", len(report.matrix), "65"],
        ["unreachable SNIs", len(certificates.unreachable_fqdns()), "43"],
        ["mean FQDNs per cert", f"{sum(counts) / len(counts):.2f}", "1.72"],
        ["max FQDNs per cert", max(counts), "32"],
        ["certs on multiple IPs", percent(multi_ip), "64.96%"],
        ["mean IPs per cert",
         f"{sum(ip_counts) / len(ip_counts):.2f}", "5.43"],
        ["max IPs per cert", max(ip_counts), "93"],
    ]
    emit("table6_certdataset", render_table(
        ["quantity", "measured", "paper"], rows,
        title="Table 6 / Section 5.1 — certificate dataset"))
    assert report.server_count == 1151
