"""Table 11 & Figure 8 — semantics-aware fingerprinting.

Paper: exact 10.69% / same-set-diff-order 0.46% / same-component 6.42% /
similar-component 35.80% / customization 46.63% over 5,827 {device,
ciphersuite list} tuples; Figure 8 shows the Jaccard distribution of the
two component categories.
"""

from repro.core.semantics import (
    jaccard_distribution,
    semantic_fingerprinting,
    semantic_summary,
)
from repro.core.tables import percent, render_table

PAPER = {"exact": "10.69%", "same_set_diff_order": "0.46%",
         "same_component": "6.42%", "similar_component": "35.80%",
         "customization": "46.63%"}
PAPER_OUTDATED = {"exact": "99.20%", "same_set_diff_order": "81.48%",
                  "same_component": "97.59%", "similar_component": "99.66%",
                  "customization": "71.99%"}


def test_table11_semantic_categories(benchmark, dataset, corpus, emit):
    matches = benchmark(semantic_fingerprinting, dataset, corpus)
    summary = semantic_summary(matches)
    rows = []
    for category, data in summary.items():
        outdated = percent(data["outdated_share"]) \
            if data["outdated_share"] is not None else "—"
        rows.append([category, percent(data["share"], 2), PAPER[category],
                     data["vendors"], outdated,
                     PAPER_OUTDATED[category]])
    table = render_table(
        ["category", "share", "paper", "#vendors", "outdated", "paper"],
        rows, title="Table 11 — semantics-aware fingerprinting "
                    f"({len(matches)} tuples; paper: 5,827)")
    histograms = jaccard_distribution(matches)
    for category, counts in histograms.items():
        table += f"\nFigure 8 [{category}]: {counts} (10 Jaccard bins)"
    emit("table11_fig8_semantics", table)
    assert summary["customization"]["share"] > 0.3
