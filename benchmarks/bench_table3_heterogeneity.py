"""Table 3 — heterogeneity across devices within the top 10 vendors.

Paper: Amazon 244 fps (12.30% shared by ≥10 devices, 68.85% on one
device), Google 172, Synology 107, ...
"""

from repro.core.customization import top_vendor_heterogeneity
from repro.core.tables import percent, render_table

PAPER = {
    "Amazon": (244, "12.30%", "68.85%"),
    "Google": (172, "11.05%", "65.12%"),
    "Synology": (107, "3.74%", "67.29%"),
    "Samsung": (104, "9.62%", "60.58%"),
    "Sony": (97, "6.19%", "57.73%"),
    "LG": (54, "3.70%", "64.81%"),
    "Western Digital": (49, "0.00%", "95.92%"),
    "Nvidia": (43, "9.30%", "46.51%"),
    "TP-Link": (39, "2.56%", "87.18%"),
    "Roku": (38, "23.68%", "63.16%"),
}


def test_table3_heterogeneity(benchmark, dataset, emit):
    rows = benchmark(top_vendor_heterogeneity, dataset, 10)
    table_rows = []
    for row in rows:
        paper = PAPER.get(row.vendor, ("—", "—", "—"))
        table_rows.append([
            row.vendor, row.fingerprint_count, paper[0],
            percent(row.shared_by_10_or_more), paper[1],
            percent(row.used_by_one_device), paper[2],
        ])
    emit("table3_heterogeneity", render_table(
        ["vendor", "#fps", "paper", ">=10-device share", "paper",
         "1-device share", "paper"], table_rows,
        title="Table 3 — per-vendor fingerprint heterogeneity (top 10)"))
    assert rows[0].vendor == "Amazon"
