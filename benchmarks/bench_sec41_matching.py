"""Section 4.1 — matching fingerprints to known libraries.

Paper: 903 fingerprints; 23 (2.55%) match 16 known libraries (14
curl+OpenSSL, 2 Mbed TLS); 14 of 16 unsupported as of 2020.
"""

from repro.core.matching import validate_case_study
from repro.core.tables import percent, render_table
from repro.match import shared_engine


def test_section41_matching(benchmark, dataset, corpus, emit):
    report = benchmark(shared_engine().match_report, dataset, corpus)
    rows = [
        ["distinct device fingerprints", report.total_fingerprints, "903"],
        ["matched fingerprints", report.matched_count, "23"],
        ["matched share", percent(report.matched_fraction), "2.55%"],
        ["distinct libraries", len(report.matched_libraries()), "16"],
        ["unsupported as of 2020", len(report.unsupported_libraries()),
         "14"],
        ["matched devices", report.matched_devices(), "—"],
    ]
    families = ", ".join(f"{family}: {count}" for family, count
                         in report.libraries_by_family().items())
    table = render_table(
        ["quantity", "measured", "paper"], rows,
        title="Section 4.1 — library matching")
    table += f"\nfamilies: {families} (paper: curl+OpenSSL 14, Mbed TLS 2)"
    wyze = validate_case_study(dataset, corpus, "Wyze")
    table += f"\nWyze case study match: {wyze} (paper: OpenSSL 1.0.2u)"
    emit("sec41_matching", table)
    assert report.matched_fraction < 0.05
