"""Figure 13 — CT presence of leafs in private-issuer / failing chains.

Paper: the overwhelming majority of leafs in such chains are NOT logged
in CT; two expired public-CA leafs appear (one Sectigo not logged, one
Gandi logged).
"""

from repro.core.ct_validity import private_chain_ct_figure
from repro.core.tables import render_table


def test_figure13_ct_for_private_chains(benchmark, study, survey, emit):
    figure = benchmark(private_chain_ct_figure, survey, study.ecosystem,
                       study.network.ct_logs)
    rows = [[issuer_kind, ct_state, count]
            for (issuer_kind, ct_state), count in sorted(figure.items())]
    table = render_table(["issuer kind", "CT state", "#leaf certs"], rows,
                         title="Figure 13 — CT presence in failing chains")
    table += "\npaper: private-issuer leafs overwhelmingly not in CT"
    emit("fig13_ct_private", table)
    assert figure.get(("private", "not in CT"), 0) > \
        figure.get(("private", "in CT"), 0)
