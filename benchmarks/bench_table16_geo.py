"""Table 16 & Appendix C.4.1 — certificates across geographic locations.

Paper: 1,151/1,149/1,150 SNIs answered in NY/Frankfurt/Singapore; 1,087
SNIs served one certificate everywhere; 106/99/82 SNIs served a
location-exclusive certificate.
"""

from repro.core.geo import geo_comparison
from repro.core.tables import render_table


def test_table16_geo_comparison(benchmark, certificates, emit):
    comparison = benchmark(geo_comparison, certificates)
    rows = [
        ["SNIs with certificate extracted",
         comparison.extracted.get("new-york", 0),
         comparison.extracted.get("frankfurt", 0),
         comparison.extracted.get("singapore", 0)],
        ["SNIs with certificate shared across all places",
         comparison.shared_across_all, "", ""],
        ["SNIs with certificate exclusive in this location",
         comparison.exclusive.get("new-york", 0),
         comparison.exclusive.get("frankfurt", 0),
         comparison.exclusive.get("singapore", 0)],
    ]
    table = render_table(["quantity", "New York", "Frankfurt", "Singapore"],
                         rows, title="Table 16 — certificates across "
                                     "geographic locations")
    table += ("\npaper: extracted 1151/1149/1150; shared 1087; exclusive "
              "106/99/82")
    emit("table16_geo", table)
    assert comparison.shared_across_all > 900
