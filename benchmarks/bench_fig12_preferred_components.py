"""Figure 12 — most-preferred ciphersuite component algorithms per vendor.

Paper: Synology devices lead with DH_ANON / KRB5_EXPORT key exchange;
all Belkin devices lead with RC4_128; several vendors prefer MD5 MACs.
"""

from repro.core.preferences import preferred_components
from repro.core.tables import render_table


def test_figure12_preferred_components(benchmark, dataset, emit):
    shares = benchmark(preferred_components, dataset)
    rows = []
    for vendor in sorted(shares["cipher"]):
        cipher = shares["cipher"][vendor].most_common(1)[0]
        kx = shares["kx"][vendor].most_common(1)[0]
        mac = shares["mac"][vendor].most_common(1)[0]
        rows.append([vendor, kx[0], cipher[0], mac[0]])
    table = render_table(
        ["vendor", "top kx+auth", "top cipher", "top MAC"], rows,
        title="Figure 12 — most-preferred first-suite components")
    vulnerable_first = sorted(
        vendor for vendor, counter in shares["cipher"].items()
        if any(c.startswith(("RC4", "RC2", "DES", "3DES", "NULL"))
               for c in counter))
    table += f"\nvendors with a vulnerable preferred cipher: " \
             f"{vulnerable_first}"
    emit("fig12_preferred_components", table)
    assert rows
