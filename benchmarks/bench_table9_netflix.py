"""Table 9 — variance in certificate validity periods by Netflix.

Paper: "Netflix Primary Certificate Authority" chains carry 8,150-day
leafs; "Netflix Public SHA2 RSA CA 3" (under a VeriSign public root)
issues 30–396-day leafs (13 certs); none are in CT.
"""

from repro.core.ct_validity import netflix_rows
from repro.core.tables import render_table


def test_table9_netflix_validity(benchmark, study, certificates, emit):
    rows = benchmark(netflix_rows, certificates, study.network.ct_logs)
    table_rows = [[row.leaf_issuer_cn,
                   ",".join(str(v) for v in row.validity_days[:8]),
                   row.topmost_issuer_cn, row.cert_count,
                   str(row.in_ct)] for row in rows]
    table = render_table(
        ["leaf issuer", "validity days", "topmost issuer", "#certs",
         "in CT"], table_rows,
        title="Table 9 — Netflix-signed certificate validity")
    table += ("\npaper: Netflix Primary CA → 8150 days; Netflix Public "
              "SHA2 RSA CA 3 → 30..396 days, 13 certs; none in CT")
    emit("table9_netflix", table)
    assert all(not row.in_ct for row in rows)
    assert any(max(row.validity_days) == 8150 for row in rows)
