"""Table 10 / Appendix B.1 — the compiled library corpus itself.

Paper: 19 OpenSSL + 38 wolfSSL + 113 Mbed TLS versions plus 5,591
curl×OpenSSL and 1,130 curl×wolfSSL builds = 6,891 fingerprints; major
branch release dates in Table 10; only the OpenSSL 1.1.1 LTS and
Mbed TLS 2.16 branches were still supported in 2020.
"""

from repro.core.tables import render_table
from repro.libraries import build_default_corpus
from repro.libraries import mbedtls, openssl, wolfssl


def test_table10_corpus_composition(benchmark, emit):
    corpus = benchmark(build_default_corpus)
    by_family = {}
    for fingerprint in corpus:
        family = by_family.setdefault(fingerprint.library,
                                      {"count": 0, "supported": 0})
        family["count"] += 1
        if fingerprint.supported_in_2020:
            family["supported"] += 1
    rows = [[family, data["count"], data["supported"]]
            for family, data in sorted(by_family.items())]
    table = render_table(
        ["library family", "#versions/builds", "supported in 2020"],
        rows, title=f"Appendix B.1 — corpus composition "
                    f"({len(corpus)} fingerprints; paper: 6,891)")
    eras = [
        ("OpenSSL 1.0.0", openssl.BRANCH_INFO["1.0.0"]),
        ("OpenSSL 1.0.2", openssl.BRANCH_INFO["1.0.2"]),
        ("OpenSSL 1.1.1 LTS", openssl.BRANCH_INFO["1.1.1"]),
    ]
    table += "\nTable 10 branch metadata: " + "; ".join(
        f"{name}: released {year}, supported={supported}"
        for name, (year, supported) in eras)
    table += (f"\ndistinct fingerprint keys in the corpus: "
              f"{corpus.distinct_fingerprint_count} (consecutive versions "
              "share fingerprints, as the paper notes)")
    emit("table10_corpus", table)
    assert len(corpus) == 6891
    assert corpus.distinct_fingerprint_count < 100
