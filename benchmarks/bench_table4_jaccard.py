"""Table 4 — vendor pairs with Jaccard similarity ≥ 0.2.

Paper bands: {HDHomeRun, Silicondust}=1; {Sharp,TCL}∈[0.7,1);
{Arlo,NETGEAR}∈[0.4,0.7); {Onkyo,Pioneer}/{Bose,TI,Skybell}/... ∈[0.3,0.4);
{Nvidia,Xiaomi}/{Denon,Marantz}/{Synology,WD}/... ∈[0.2,0.3).
"""

from repro.core.sharing import similarity_bands, vendor_similarity_pairs
from repro.core.tables import render_table


def test_table4_jaccard_pairs(benchmark, dataset, emit):
    pairs = benchmark(vendor_similarity_pairs, dataset, 0.2)
    bands = similarity_bands(pairs)
    rows = []
    for band, members in bands.items():
        text = ", ".join("{%s}" % ", ".join(pair) for pair in members) \
            or "(none)"
        rows.append([band, text])
    table = render_table(["Jaccard band", "vendor tuples (measured)"],
                         rows, title="Table 4 — vendor Jaccard similarity")
    top = "\n".join(f"  {s:.2f}  {a} / {b}" for s, a, b in pairs[:12])
    table += f"\ntop pairs:\n{top}"
    emit("table4_jaccard", table)
    as_dict = {(a, b): s for s, a, b in pairs}
    assert as_dict.get(("HDHomeRun", "SiliconDust")) == 1.0
