"""Appendix B.3.3 — extension divergence from known libraries.

Paper: some devices share a library's exact ciphersuite list but diverge
in extensions, mainly by *adding* application-specific extensions (ALPN,
NPN) and ``padding``; ``session_ticket`` and ``renegotiation_info`` are
much more common on devices than in library defaults.
"""

from repro.core.params import extension_divergence, extension_usage
from repro.core.tables import render_table


def test_appendix_b33_extension_divergence(benchmark, dataset, corpus,
                                           emit):
    divergence = benchmark(extension_divergence, dataset, corpus)
    added = sorted(divergence["added"].items(), key=lambda kv: -kv[1])
    removed = sorted(divergence["removed"].items(), key=lambda kv: -kv[1])
    rows = [["suite-list matches with divergent extensions",
             divergence["cases"], ""]]
    for name, count in added[:8]:
        rows.append([f"extension added: {name}", count, "+"])
    for name, count in removed[:5]:
        rows.append([f"extension removed: {name}", count, "-"])
    table = render_table(["case", "count", ""], rows,
                         title="Appendix B.3.3 — extension divergence")
    usage = extension_usage(dataset)
    for name in ("session_ticket", "renegotiation_info", "padding",
                 "application_layer_protocol_negotiation",
                 "next_protocol_negotiation"):
        table += f"\n{name}: {usage.get(name, 0)} devices"
    emit("appb33_extensions", table)
    assert divergence["cases"] > 0
    app_specific = {"application_layer_protocol_negotiation",
                    "next_protocol_negotiation", "padding",
                    "session_ticket", "renegotiation_info",
                    "status_request", "signed_certificate_timestamp",
                    "extended_master_secret"}
    assert set(divergence["added"]) & app_specific
