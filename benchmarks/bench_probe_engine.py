"""Serial vs parallel probe engine wall-clock benchmark.

Runs the full 3-vantage x 1,151-SNI probe matrix three ways and writes
``BENCH_probe.json``:

1. serial (``jobs=1``) with the deterministic :class:`LatencyModel`
   RTTs actually slept (scaled), the way a one-connection-at-a-time
   scanner would experience them;
2. parallel (``--jobs N``) over the same latency model — workers overlap
   RTT waits exactly like a real parallel scanner overlaps socket waits;
3. parallel again behind a :class:`FaultInjector` (20% transient
   failures, 3-attempt retry budget) to show retries recover the
   fault-free reachability.

The two fault-free datasets must be byte-identical (checked via
``CertificateDataset.fingerprint()``); the run fails loudly if not.

Usage::

    PYTHONPATH=src python benchmarks/bench_probe_engine.py \
        [--jobs 4] [--seed 2023] [--time-scale 0.02] [-o BENCH_probe.json]
"""

import argparse
import json
import pathlib
import sys
import time

from repro.probing.engine import (
    FaultInjector,
    LatencyModel,
    ProbeEngine,
    RetryPolicy,
)
from repro.study import StudyConfig, get_study


def _timed_probe(engine, snis):
    started = time.perf_counter()
    dataset = engine.probe_all(snis)
    return dataset, time.perf_counter() - started


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--time-scale", type=float, default=0.02,
                        help="real seconds slept per simulated network "
                             "second (default %(default)s)")
    parser.add_argument("--fault-rate", type=float, default=0.2)
    parser.add_argument("-o", "--output", default="BENCH_probe.json")
    args = parser.parse_args(argv)

    study = get_study(StudyConfig(seed=args.seed))
    network = study.network
    snis = [spec.fqdn for spec in study.world.servers]
    latency = LatencyModel(seed=args.seed)
    retry = RetryPolicy(max_attempts=3)

    print(f"probing {len(snis)} SNIs x 3 vantages "
          f"(time scale {args.time_scale})...")
    serial, serial_seconds = _timed_probe(
        ProbeEngine(network, jobs=1, retry=retry, latency=latency,
                    time_scale=args.time_scale), snis)
    print(f"  serial       {serial_seconds:6.2f}s")
    parallel, parallel_seconds = _timed_probe(
        ProbeEngine(network, jobs=args.jobs, retry=retry, latency=latency,
                    time_scale=args.time_scale), snis)
    speedup = serial_seconds / parallel_seconds
    print(f"  --jobs {args.jobs}     {parallel_seconds:6.2f}s "
          f"({speedup:.2f}x)")

    identical = serial.fingerprint() == parallel.fingerprint()
    if not identical:
        print("FATAL: parallel output differs from serial", file=sys.stderr)
        return 1

    injector = FaultInjector(network, transient_rate=args.fault_rate)
    faulty, faulty_seconds = _timed_probe(
        ProbeEngine(injector, jobs=args.jobs, retry=retry,
                    latency=latency, time_scale=args.time_scale,
                    seed=args.seed), snis)
    stats = faulty.stats
    recovered = (faulty.reachable_fqdns() == serial.reachable_fqdns()
                 and faulty.fingerprint() == serial.fingerprint())
    print(f"  faulty ({args.fault_rate:.0%}) {faulty_seconds:6.2f}s  "
          f"retries {stats.retries}  exhausted {stats.exhausted}  "
          f"recovered={recovered}")

    payload = {
        "seed": args.seed,
        "probes": len(serial),
        "jobs": args.jobs,
        "time_scale": args.time_scale,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 2),
        "outputs_identical": identical,
        "fault_run": {
            "transient_rate": args.fault_rate,
            "retry_budget": retry.max_attempts,
            "seconds": round(faulty_seconds, 3),
            "recovered_fault_free_output": recovered,
            "stats": stats.to_json(),
        },
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    if speedup < 2.0:
        print(f"WARNING: speedup {speedup:.2f}x below the 2x target",
              file=sys.stderr)
    return 0 if (identical and recovered) else 1


if __name__ == "__main__":
    raise SystemExit(main())
