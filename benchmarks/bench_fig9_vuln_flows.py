"""Figure 9 — per-vendor vulnerable-component flows.

Paper: Sankey-style flows of {device, ciphersuite list} tuples into the
vulnerable components they contain, per vendor.
"""

from repro.core.security import vendor_vulnerability_flows
from repro.core.tables import render_table


def test_figure9_vulnerability_flows(benchmark, dataset, emit):
    flows = benchmark(vendor_vulnerability_flows, dataset)
    rows = []
    for vendor in sorted(flows, key=lambda v: -sum(flows[v].values()))[:15]:
        counter = flows[vendor]
        total = sum(counter.values())
        vulnerable = sum(count for tags, count in counter.items() if tags)
        top = max((tags for tags in counter if tags),
                  key=lambda t: counter[t], default=())
        rows.append([vendor, total, vulnerable,
                     ",".join(top) if top else "-"])
    emit("fig9_vuln_flows", render_table(
        ["vendor", "tuples", "vulnerable tuples", "top component mix"],
        rows, title="Figure 9 — vulnerable component flows (top 15)"))
    assert any(row[2] > 0 for row in rows)
