"""Table 13 / Appendix B.6 — the vendor ↔ index mapping of Figure 1.

The paper's Figure 1 labels vendor nodes with indexes 1–65; Table 13
gives the mapping.  Our vendor profiles carry the same table.
"""

from repro.core.tables import render_table
from repro.inspector.vendors import VENDOR_PROFILES

#: Spot checks against the paper's Table 13.
PAPER_SPOT = {1: "Roku", 6: "Amazon", 8: "Google", 23: "Synology",
              25: "Wyze", 26: "Sonos", 59: "Belkin", 62: "Tuya",
              65: "Withings"}


def test_table13_vendor_mapping(benchmark, emit):
    def build():
        return {profile.index: profile.name
                for profile in VENDOR_PROFILES}

    mapping = benchmark(build)
    rows = []
    for start in range(1, 66, 5):
        row = []
        for index in range(start, min(start + 5, 66)):
            row.extend([index, mapping[index]])
        while len(row) < 10:
            row.extend(["", ""])
        rows.append(row)
    emit("table13_vendor_mapping", render_table(
        ["idx", "vendor"] * 5, rows,
        title="Table 13 — vendor/index mapping (65 vendors)"))
    for index, name in PAPER_SPOT.items():
        assert mapping[index] == name
