"""Table 12 — TLS versions proposed by IoT devices.

Paper: TLS 1.2: 5,214 — TLS 1.1: 18 — TLS 1.0: 236 — SSL 3.0: 31
(26 devices; Amazon 13, Synology 5, Samsung 4, LG 2, TP-Link 1, WD 1);
no TLS 1.3 at all.
"""

from repro.core.params import multi_version_devices, ssl3_devices, \
    version_proposals
from repro.core.tables import render_table
from repro.tlslib.versions import TLSVersion

PAPER = {TLSVersion.TLS_1_2: 5214, TLSVersion.TLS_1_1: 18,
         TLSVersion.TLS_1_0: 236, TLSVersion.SSL_3_0: 31,
         TLSVersion.TLS_1_3: 0}


def test_table12_tls_versions(benchmark, dataset, emit):
    counts = benchmark(version_proposals, dataset)
    rows = [[version.pretty, counts[version], PAPER[version]]
            for version in counts]
    devices, vendors = ssl3_devices(dataset)
    table = render_table(["TLS version", "proposals", "paper"], rows,
                         title="Table 12 — proposed TLS versions")
    table += (f"\nSSL 3.0 devices: {len(devices)} (paper: 26); vendors: "
              f"{vendors} (paper: Amazon 13, Synology 5, Samsung 4, LG 2, "
              f"TP-Link 1, WD 1)")
    table += (f"\ndevices proposing >1 version: "
              f"{len(multi_version_devices(dataset))} (paper: 194)")
    emit("table12_versions", table)
    assert counts[TLSVersion.TLS_1_3] == 0
