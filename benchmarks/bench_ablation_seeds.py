"""Ablation: do the headline shapes survive a different world seed?

The study world is a pure function of one integer seed.  This benchmark
rebuilds the *client side* of the world under an alternative seed and
checks that the qualitative findings are seed-independent (the
server-side is pinned by the catalog and does not vary).
"""

from repro.core.customization import degree_distribution, doc_vendor_all
from repro.core.security import vulnerability_report
from repro.core.tables import percent, render_table
from repro.inspector.dataset import InspectorDataset
from repro.inspector.generator import WorldGenerator
from repro.match import shared_engine

ALT_SEED = 7

def _client_headlines(dataset, corpus):
    match = shared_engine().match_report(dataset, corpus)
    degrees = degree_distribution(dataset)
    vuln = vulnerability_report(dataset)
    doc = list(doc_vendor_all(dataset).values())
    return {
        "fingerprints": dataset.fingerprint_count,
        "match_share": match.matched_fraction,
        "degree1": degrees["1"],
        "vulnerable": vuln.vulnerable_fraction,
        "vendors_with_unique": sum(1 for v in doc if v > 0) / len(doc),
    }


def test_seed_stability(benchmark, dataset, corpus, emit):
    def build_alt():
        world = WorldGenerator(seed=ALT_SEED).generate()
        return InspectorDataset.from_world(world)

    alt_dataset = benchmark.pedantic(build_alt, rounds=1, iterations=1)
    base = _client_headlines(dataset, corpus)
    alt = _client_headlines(alt_dataset, corpus)
    rows = [
        ["distinct fingerprints", base["fingerprints"],
         alt["fingerprints"]],
        ["library match share", percent(base["match_share"]),
         percent(alt["match_share"])],
        ["degree-1 share", percent(base["degree1"]),
         percent(alt["degree1"])],
        ["vulnerable share", percent(base["vulnerable"]),
         percent(alt["vulnerable"])],
        ["vendors w/ unique fp", percent(base["vendors_with_unique"]),
         percent(alt["vendors_with_unique"])],
    ]
    emit("ablation_seeds", render_table(
        ["headline", f"seed 2023", f"seed {ALT_SEED}"], rows,
        title="Ablation — seed stability of the client-side headlines"))
    assert abs(base["degree1"] - alt["degree1"]) < 0.08
    assert abs(base["vulnerable"] - alt["vulnerable"]) < 0.10
    assert alt["match_share"] < 0.05
