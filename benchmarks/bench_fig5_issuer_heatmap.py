"""Figure 5 — certificate issuers × device vendors.

Paper: DigiCert signs 47.26% of leafs; private CAs sign 9.86%; 31 vendors
see only public-trust issuers; 16 vendors sign for their own servers;
Canary/Tuya/Obihai devices see only vendor-signed certificates.
"""

from repro.core.issuers import issuer_report
from repro.core.tables import percent, render_table


def test_figure5_issuer_heatmap(benchmark, study, dataset, certificates,
                                emit):
    report = benchmark(issuer_report, dataset, certificates,
                       study.ecosystem)
    headline = [
        ["DigiCert leaf share", percent(report.issuer_share("DigiCert")),
         "47.26%"],
        ["private-CA leaf share", percent(report.private_leaf_share()),
         "9.86%"],
        ["public-trust orgs", len(report.public_orgs), "(16 modelled)"],
        ["private orgs", len(report.private_orgs), "(17 modelled)"],
        ["vendors seeing only public CAs",
         len(report.vendors_public_only()), "31"],
        ["self-signing vendors", len(report.vendors_self_signing()), "16"],
        ["exclusively self-signed vendors",
         ", ".join(report.vendors_exclusively_self_signed()),
         "Canary, Tuya, Obihai"],
    ]
    table = render_table(["quantity", "measured", "paper"], headline,
                         title="Figure 5 — issuer x vendor headline")
    rows = []
    for org in sorted(report.issuer_leaf_counts,
                      key=lambda o: -report.issuer_leaf_counts[o]):
        kind = "public" if org in report.public_orgs else "PRIVATE"
        rows.append([org, kind, report.issuer_leaf_counts[org],
                     percent(report.issuer_share(org))])
    table += "\n" + render_table(
        ["issuer org", "kind", "#leafs", "share"], rows,
        title="Leaf certificates per issuer")
    sample = {}
    for vendor in ("Amazon", "Roku", "Tuya", "Wyze"):
        ratios = report.vendor_issuer_ratios(vendor)
        top = sorted(ratios.items(), key=lambda kv: -kv[1])[:3]
        sample[vendor] = ", ".join(f"{o}={percent(s, 0)}" for o, s in top)
    table += "\ncolumns: " + "; ".join(f"{v}: [{t}]"
                                       for v, t in sample.items())
    emit("fig5_issuer_heatmap", table)
    assert set(report.vendors_exclusively_self_signed()) == \
        {"Canary", "Obihai", "Tuya"}
