"""Figure 10 — per-device DoC distribution across all 65 vendors."""

from repro.core.customization import doc_distribution
from repro.core.tables import render_table


def test_figure10_doc_heatmap(benchmark, dataset, emit):
    distribution = benchmark(doc_distribution, dataset)
    rows = []
    for vendor in sorted(distribution):
        values = distribution[vendor]
        if not values:
            continue
        mean = sum(values) / len(values)
        full = sum(1 for v in values if v == 1.0) / len(values)
        zero = sum(1 for v in values if v == 0.0) / len(values)
        rows.append([vendor, len(values), f"{mean:.2f}", f"{full:.0%}",
                     f"{zero:.0%}"])
    emit("fig10_doc_heatmap", render_table(
        ["vendor", "#devices", "mean DoC", "DoC=1 share", "DoC=0 share"],
        rows, title="Figure 10 — per-device DoC distribution by vendor"))
    assert len(rows) == 65
