"""Section 4.2 — vulnerable ciphersuite statistics.

Paper: 403 (44.63%) fingerprints have a vulnerable component, 31.76% of
those used by multiple devices; 3DES in 41.64%; 31 fingerprints with
anon/export/NULL suites from 27 devices of 14 vendors.
"""

from repro.core.security import vulnerability_report
from repro.core.tables import percent, render_table


def test_section42_vulnerabilities(benchmark, dataset, emit):
    report = benchmark(vulnerability_report, dataset)
    multi_share = report.multi_device_vulnerable / max(
        1, report.vulnerable_fingerprints)
    rows = [
        ["vulnerable fingerprints",
         f"{report.vulnerable_fingerprints} "
         f"({percent(report.vulnerable_fraction)})",
         "403 (44.63%)"],
        ["... on multiple devices", percent(multi_share), "31.76%"],
        ["3DES inclusion", percent(report.component_fraction('3DES')),
         "41.64%"],
        ["severe (anon/export/NULL/RC2) fps", report.severe_fingerprints,
         "31"],
        ["severe devices", len(report.severe_devices), "27"],
        ["severe vendors", len(report.severe_vendors), "14"],
    ]
    components = ", ".join(
        f"{tag}: {count}" for tag, count
        in report.component_counts.most_common())
    table = render_table(["quantity", "measured", "paper"], rows,
                         title="Section 4.2 — vulnerable ciphersuites")
    table += f"\ncomponent counts: {components}"
    emit("sec42_vulnerable", table)
    assert report.component_counts["3DES"] == max(
        report.component_counts.values())
