"""Streaming-ingest + query-service benchmark for ``repro.ingest``.

Times two things over a warmed study and writes ``BENCH_serve.json``:

1. **ingest throughput** — a fresh :class:`~repro.ingest.Ingester`
   streaming the full capture through all four incremental analyses
   (fingerprint index, DoC counters, match rate, issuer shares),
   best-of-``--repeat``; the headline ``records_per_sec`` is what the
   bench gate floors;
2. **query latency** — the stdlib load generator hammering a warm
   ``repro serve`` instance with the hot-endpoint mix from concurrent
   workers; p50/p99 per-request wall latency and sustained q/s.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--seed 2023] [--repeat 3] [-o BENCH_serve.json]
"""

import argparse
import json
import pathlib
import sys
import threading
import time

from repro.config import StudyConfig
from repro.ingest import Ingester, QueryService, make_server, run_load
from repro.study import Study


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed ingest repetitions; best-of wins "
                             "(default %(default)s)")
    parser.add_argument("--requests", type=int, default=120,
                        help="load-generator requests per worker "
                             "(default %(default)s)")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent load-generator workers "
                             "(default %(default)s)")
    parser.add_argument("-o", "--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    study = Study(config=StudyConfig(seed=args.seed))
    print("warming study artifacts (world, capture, probes)...")
    study.dataset, study.certificates, study.corpus  # noqa: B018

    print(f"timing full-stream ingest, best of {args.repeat}...")
    best_seconds = float("inf")
    ingester = None
    for _ in range(args.repeat):
        candidate = Ingester(study)
        started = time.perf_counter()
        candidate.run(resume=False)
        elapsed = time.perf_counter() - started
        if elapsed < best_seconds:
            best_seconds, ingester = elapsed, candidate
    records = ingester.records_ingested
    records_per_sec = records / best_seconds
    print(f"  ingested {records} records / "
          f"{ingester.stream.window_count} windows in "
          f"{best_seconds:.3f}s ({records_per_sec:,.0f} records/s)")

    service = QueryService(study, ingester).warm()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    print(f"load-testing http://{host}:{port} with "
          f"{args.workers} workers x {args.requests} requests...")
    load = run_load(f"http://{host}:{port}",
                    requests_per_worker=args.requests,
                    workers=args.workers)
    server.shutdown()
    summary = load.to_json()
    print(f"  {summary['requests']} requests, {summary['errors']} "
          f"errors: {summary['qps']:,.0f} q/s, "
          f"p50 {summary['p50_ms']} ms, p99 {summary['p99_ms']} ms")

    ok = summary["errors"] == 0
    payload = {
        "seed": args.seed,
        "repeat": args.repeat,
        "records": records,
        "windows": ingester.stream.window_count,
        "ingest_seconds": round(best_seconds, 4),
        "records_per_sec": round(records_per_sec, 1),
        "query_requests": summary["requests"],
        "query_errors": summary["errors"],
        "query_qps": summary["qps"],
        "query_p50_ms": summary["p50_ms"],
        "query_p99_ms": summary["p99_ms"],
        "ok": ok,
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    if not ok:
        print(f"FAIL: {summary['errors']} load-generator errors",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
