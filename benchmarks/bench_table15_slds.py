"""Table 15 — the most popular second-level domains.

Paper: amazon.com (57 FQDNs, 556 devices), google.com (24, 499),
googleapis.com (35, 420), ...; 357 SLDs overall, mean 24.42 devices,
median 7, max 556.
"""

from repro.core.slds import sld_rows, sld_statistics
from repro.core.tables import render_table

PAPER_TOP = {
    "amazon.com": (57, 556), "google.com": (24, 499),
    "googleapis.com": (35, 420), "amazonalexa.com": (2, 337),
    "gstatic.com": (10, 328), "netflix.com": (30, 327),
    "amazonaws.com": (33, 250), "doubleclick.net": (9, 232),
}


def test_table15_popular_slds(benchmark, dataset, certificates, emit):
    rows = benchmark(sld_rows, dataset, certificates)
    table_rows = []
    for row in rows[:20]:
        paper = PAPER_TOP.get(row.sld, ("—", "—"))
        table_rows.append([row.sld, row.server_count, paper[0],
                           row.device_count, paper[1]])
    stats = sld_statistics(rows)
    table = render_table(
        ["SLD", "#servers", "paper", "#devices", "paper"], table_rows,
        title="Table 15 — popular SLDs of IoT servers (top 20)")
    table += (f"\nSLDs: {stats['sld_count']} (paper: 357); "
              f"mean devices {stats['mean_devices']:.2f} (24.42); "
              f"median {stats['median_devices']} (7); "
              f"max {stats['max_devices']} (556)")
    emit("table15_slds", table)
    assert stats["sld_count"] == 357
