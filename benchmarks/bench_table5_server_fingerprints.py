"""Table 5 — servers linked with one client fingerprint across vendors.

Paper: 17.42% of SNIs are tied to server-specific fingerprints; 37 SNIs
tie across multiple vendors (roku.com ×118 devices, sonos.com ×75, ...).
"""

from repro.core.sharing import server_specific_fingerprints
from repro.core.tables import percent, render_table, truncate_fp


def test_table5_server_specific_fingerprints(benchmark, dataset, corpus,
                                             emit):
    fraction, ties = benchmark(server_specific_fingerprints, dataset,
                               corpus)
    rows = []
    for tie in ties[:20]:
        vuln = ",".join(tie.vulnerable_components) or "-"
        rows.append([tie.sld, tie.fqdn_count, truncate_fp(tie.fingerprint),
                     vuln, tie.device_count,
                     ",".join(tie.vendors)[:48]])
    table = render_table(
        ["second-level domain", "#FQDNs", "fingerprint", "vuln",
         "#devices", "vendors"], rows,
        title="Table 5 — server-specific fingerprints across vendors")
    table += (f"\nSNIs tied to server-specific fingerprints: "
              f"{percent(fraction)} (paper: 17.42%); "
              f"cross-vendor rows: {len(ties)} (paper: 13 rows / 37 SNIs)")
    emit("table5_server_fingerprints", table)
    slds = {tie.sld for tie in ties}
    assert {"roku.com", "sonos.com"} <= slds
