"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures: it
prints the reproduced rows/series (also written under
``benchmarks/results/``) and times the underlying pipeline stage with
pytest-benchmark.
"""

import pathlib
import sys

import pytest

from repro.study import get_study

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def study():
    return get_study()


@pytest.fixture(scope="session")
def dataset(study):
    return study.dataset


@pytest.fixture(scope="session")
def corpus(study):
    return study.corpus


@pytest.fixture(scope="session")
def network(study):
    return study.network


@pytest.fixture(scope="session")
def certificates(study):
    return study.certificates


@pytest.fixture(scope="session")
def survey(study, certificates):
    from repro.core.chains import validate_all
    from repro.inspector.timeline import PROBE_TIME
    return validate_all(certificates, study.validator(), at=PROBE_TIME)


@pytest.fixture(scope="session")
def emit():
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name, text):
        sys.stdout.write(f"\n{text}\n\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")

    return _emit
