"""Figure 1 — the vendor × fingerprint bipartite graph.

Paper: 65 vendor nodes, 903 fingerprint nodes colored by vulnerability,
edges wherever a vendor's device uses a fingerprint.
"""

from repro.core.graphs import graph_summary, vendor_fingerprint_graph
from repro.core.tables import render_table


def test_figure1_vendor_fingerprint_graph(benchmark, dataset, emit):
    graph = benchmark(vendor_fingerprint_graph, dataset)
    summary = graph_summary(graph)
    rows = [
        ["vendor nodes", summary["entity_nodes"], "65"],
        ["fingerprint nodes", summary["fingerprint_nodes"], "903"],
        ["edges", summary["edges"], "—"],
        ["connected components", summary["components"], "—"],
    ]
    for level, count in summary["fingerprints_by_security"].items():
        rows.append([f"fingerprints: {level.lower()}", count, "—"])
    emit("fig1_vendor_graph", render_table(
        ["quantity", "measured", "paper"], rows,
        title="Figure 1 — vendor/fingerprint graph summary"))
    assert summary["entity_nodes"] == 65
