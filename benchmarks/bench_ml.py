"""Learned-attribution benchmark: coverage gain over exact matching.

Trains the :mod:`repro.ml` attribution pipeline on the real study and
measures the headline **coverage gain** — the fraction of unmatched
fingerprints the learned model attributes at the confidence threshold,
divided by the paper's exact-match rate (~2.9% at the default seed).
The gate number in ``BENCH_ml.json`` is this ratio: the whole point of
the learned stage is to reach far past exact matching, so a regression
here means the model stopped earning its keep.

Because training is deterministic (seeded hashing, fixed iterations,
rounded parameters — see DESIGN.md section 5l), every quality number in
the payload is bit-stable across runs on the same config; only the
``train_seconds`` / ``eval_seconds`` wall-clock fields vary.  The run
fails loudly (exit 1) if two back-to-back evaluations disagree on the
eval digest — the determinism contract is part of the benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_ml.py \
        [--target family] [--threshold 0.6] [-o BENCH_ml.json]
"""

import argparse
import json
import pathlib
import sys
import time

from repro.ml import (DEFAULT_THRESHOLD, MLParams, eval_digest,
                      evaluate_model, train_attribution)
from repro.study import get_study


def run_eval(study, params):
    """(eval payload, train+eval seconds) for one fresh evaluation.

    Bypasses the per-process eval memo deliberately — the benchmark's
    determinism check needs two genuinely independent training runs.
    """
    started = time.perf_counter()
    model = train_attribution(study.dataset, study.corpus, study.world,
                              study.config, params=params)
    payload = evaluate_model(model, study.dataset, study.corpus,
                             study.world, study.config)
    return payload, time.perf_counter() - started


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--target", default="family",
                        choices=("family", "vendor"),
                        help="attribution label space "
                             "(default %(default)s)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="attribution confidence floor "
                             "(default %(default)s)")
    parser.add_argument("-o", "--output", default="BENCH_ml.json")
    args = parser.parse_args(argv)

    study = get_study()
    params = MLParams(target=args.target, threshold=args.threshold)
    print(f"training {args.target} attribution on seed "
          f"{study.config.seed}...")

    payload, seconds = run_eval(study, params)
    digest_first = eval_digest(payload)
    repeat, repeat_seconds = run_eval(study, params)
    digest_second = eval_digest(repeat)
    deterministic = digest_first == digest_second

    coverage = payload["coverage"]
    exact_rate = payload["exact_match_rate"]
    gain = round(coverage["attribution_coverage"] / exact_rate, 2) \
        if exact_rate else 0.0
    print(f"  macro-F1 {payload['macro']['f1']:.4f}   "
          f"accuracy {payload['accuracy']:.4f}   "
          f"coverage {coverage['attribution_coverage']:.4f}")
    print(f"  coverage gain {gain:.1f}x over exact-match rate "
          f"{exact_rate:.4f} ({seconds:.1f}s)")
    if not deterministic:
        print(f"FATAL: eval digests diverged across runs "
              f"({digest_first[:16]} vs {digest_second[:16]})",
              file=sys.stderr)

    out = {
        "seed": study.config.seed,
        "target": args.target,
        "threshold": args.threshold,
        "examples": payload["examples"],
        "classes": len(payload["classes"]),
        "macro_f1": payload["macro"]["f1"],
        "accuracy": payload["accuracy"],
        "nb_accuracy": payload["baseline_nb"]["accuracy"],
        "attribution_coverage": coverage["attribution_coverage"],
        "exact_match_rate": exact_rate,
        "coverage_gain": gain,
        "eval_digest": digest_first,
        "deterministic": deterministic,
        "train_seconds": round(seconds, 3),
        "repeat_seconds": round(repeat_seconds, 3),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path} (headline coverage gain {gain:.1f}x)")
    return 0 if deterministic else 1


if __name__ == "__main__":
    raise SystemExit(main())
