"""Section 6.2 — PKI on the local network.

Paper: Echo presents a 1-year self-signed cert with its IP as CN on port
55443; Chromecast/Home chains end at "Chromecast ICA 12"/"ICA 16 (Audio
Assist 4)" under "Cast Root CA" with 20–22-year validity, absent from
trust stores and CT; the MacBook's TLS 1.3 connection hides its chain.
"""

from repro.core.casestudies import local_pki_study
from repro.core.tables import render_table


def test_section62_local_pki(benchmark, study, emit):
    local = benchmark(local_pki_study)
    rows = []
    for connection in local.connections:
        if connection.chain_extractable:
            leaf = connection.leaf
            cn = leaf.subject.common_name
            top = connection.chain[-1]
            chain_text = f"CN={cn[:18]} .. {top.subject.common_name}"
            validity = f"{top.validity_days / 365:.0f}y"
        else:
            chain_text, validity = "(encrypted in TLS 1.3)", "-"
        rows.append([connection.client, connection.server, connection.port,
                     connection.tls_version, chain_text, validity])
    table = render_table(
        ["client", "server", "port", "TLS", "chain", "top validity"],
        rows, title="Section 6.2 — local-network TLS observations")
    checks = []
    for connection in local.extractable():
        top = connection.chain[-1]
        checks.append(
            f"{top.subject.common_name}: in trust stores="
            f"{study.ecosystem.union_store.contains(top)}, "
            f"in CT={study.network.ct_logs.query(top)}")
    table += "\n" + "\n".join(sorted(set(checks)))
    emit("sec62_local_pki", table)
    assert all(not study.network.ct_logs.query(c.chain[-1])
               for c in local.extractable())
