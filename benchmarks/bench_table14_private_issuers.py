"""Table 14 — certificate chains with private issuers.

Paper: untrusted private roots (roku.com ×15, nintendo.net ×14,
playstation.net ×11, canaryis.com len-4 chains, ...) and self-signed
leafs (ueiwsp.com, dishaccess.tv, samsunghrm.com, tuyaus.com).
"""

from repro.core.chains import private_issuer_rows
from repro.core.tables import render_table
from repro.x509.validation import ChainStatus


def test_table14_private_issuer_chains(benchmark, study, dataset, survey,
                                       emit):
    rows = benchmark(private_issuer_rows, survey, dataset, study.ecosystem)
    table_rows = []
    for row in rows:
        status = "Private root CA" \
            if row.status is ChainStatus.UNTRUSTED_ROOT \
            else "Self-signed certificate"
        table_rows.append([
            status, row.domain, row.fqdn_count, row.leaf_issuer,
            ",".join(str(l) for l in row.chain_lengths),
            row.device_count, ", ".join(row.vendors)[:40]])
    table = render_table(
        ["validation", "domain", "#FQDNs", "leaf issuer", "chain len",
         "#devices", "vendors"], table_rows,
        title="Table 14 — chains with private issuers")
    emit("table14_private_issuers", table)
    domains = {row.domain for row in rows}
    assert {"canaryis.com", "dishaccess.tv", "ueiwsp.com"} <= domains
