"""Figure 6 — validity period × chain status × CT presence per vendor.

Paper: public-CA leafs stay under ~1,000 days and are logged in CT;
private-CA leafs run to 36,500 days (Tuya) and never appear in CT; 8
public-CA certificates are missing from CT; zero private-leaf/
public-root certificates are logged.
"""

from repro.core.ct_validity import (
    CATEGORY_PRIVATE,
    CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT,
    CATEGORY_PUBLIC,
    ct_report,
)
from repro.core.tables import render_table


def test_figure6_validity_and_ct(benchmark, study, dataset, certificates,
                                 survey, emit):
    report = benchmark(ct_report, dataset, certificates, survey,
                       study.ecosystem, study.network.ct_logs)
    summary = report.validity_summary()
    rows = []
    for category in (CATEGORY_PUBLIC, CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT,
                     CATEGORY_PRIVATE):
        if category not in summary:
            continue
        low, median, high = summary[category]
        points = [p for p in report.points if p.category == category]
        in_ct = sum(1 for p in points if p.in_ct) / len(points)
        rows.append([category, f"{low:.0f}", f"{median:.0f}",
                     f"{high:.0f}", f"{in_ct:.0%}"])
    table = render_table(
        ["chain category", "min days", "median", "max", "in CT"],
        rows, title=f"Figure 6 — validity periods & CT "
                    f"({report.tuple_count()} tuples; paper: 4,949)")
    missing = report.public_ca_certs_missing_from_ct()
    table += (f"\npublic-CA certs missing from CT: {missing} "
              "(paper: Microsoft 4, Apple 2, Sectigo 1, DigiCert 1)")
    table += (f"\nprivate-leaf/public-root certs logged: "
              f"{report.private_chained_certs_in_ct()} (paper: 0)")
    longest = sorted({(p.issuer, round(p.validity_days))
                      for p in report.points
                      if p.category == CATEGORY_PRIVATE},
                     key=lambda kv: -kv[1])[:6]
    table += "\nlongest private validity: " + ", ".join(
        f"{issuer}={days}d" for issuer, days in longest)
    emit("fig6_validity_ct", table)
    assert report.private_chained_certs_in_ct() == 0
