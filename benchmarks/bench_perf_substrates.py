"""Performance benchmarks of the substrates themselves.

Not a paper table — these measure the building blocks' throughput so
regressions in the wire codecs, crypto, and world generation are caught:
ClientHello round-trips, DER certificate parsing, RSA sign/verify, CT
inclusion proofs, and a full end-to-end probe handshake.
"""

import random

from repro.tlslib.clienthello import ClientHello
from repro.tlslib.versions import TLSVersion
from repro.x509.certificate import Certificate
from repro.x509.keys import generate_keypair


def test_perf_clienthello_roundtrip(benchmark):
    hello = ClientHello(version=TLSVersion.TLS_1_2,
                        ciphersuites=list(range(0x2F, 0x2F + 40)),
                        extensions=[0, 10, 11, 13, 35, 16],
                        sni="device.vendor.example")
    wire = hello.to_bytes()

    def roundtrip():
        return ClientHello.from_bytes(wire).to_bytes()

    assert benchmark(roundtrip) == wire


def test_perf_certificate_parse(benchmark, study):
    der = study.ecosystem.public["DigiCert"].root.to_der()
    parsed = benchmark(Certificate.from_der, der)
    assert parsed.is_ca


def test_perf_rsa_sign_verify(benchmark):
    keypair = generate_keypair(512, rng=random.Random(5))
    message = b"benchmark message" * 8

    def sign_and_verify():
        keypair.public.verify(message, keypair.sign(message))

    benchmark(sign_and_verify)


def test_perf_ct_inclusion_proof(benchmark, study):
    log = study.network.ct_logs.logs[0]
    # Pick a logged certificate.
    target = None
    for result in study.certificates.results_at().values():
        if result.leaf is not None and log.contains(result.leaf):
            target = result.leaf
            break
    assert target is not None

    def prove_and_verify():
        proof = log.prove_inclusion(target)
        assert log.verify_inclusion(target, proof)

    benchmark(prove_and_verify)


def test_perf_full_probe_handshake(benchmark, study, network):
    from repro.probing.prober import Prober
    from repro.probing.vantage import VANTAGE_POINTS
    prober = Prober(network)
    fqdn = study.world.reachable_servers()[0].fqdn

    def probe():
        result = prober.probe_one(fqdn, VANTAGE_POINTS[0])
        assert result.leaf is not None

    benchmark(probe)


def test_perf_dataset_indexing(benchmark, study):
    from repro.inspector.dataset import InspectorDataset
    records = study.dataset.records

    def index():
        return InspectorDataset(records).fingerprint_count

    assert benchmark(index) == study.dataset.fingerprint_count
