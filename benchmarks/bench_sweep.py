"""Serial vs process-pool sweep campaign wall-clock benchmark.

Runs the same multi-seed probe-stage campaign twice and writes
``BENCH_sweep.json``:

1. serial — ``SweepRunner(workers=1)``, the inline reference path, one
   study after another;
2. pooled — ``SweepRunner(workers=N)``, one spawned worker process per
   study, overlapping the simulated probe RTTs (``--time-scale``) the
   way a real campaign overlaps network waits across hosts.

The campaign is the sweep engine's representative workload: every unit
pays the CPU-bound world build, then a latency-scaled probe of the full
3-vantage SNI matrix.  The per-unit ``config_digest``/``node_digests``
of the two runs must be byte-identical — the determinism guarantee the
sweep extends across the process boundary; the run fails loudly if not.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py \
        [--seeds 4] [--workers 4] [--seed 3001] [--time-scale 0.08] \
        [-o BENCH_sweep.json]
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.config import StudyConfig
from repro.sweep import SweepRunner, expand_grid


def _timed_campaign(units, index_path, workers):
    runner = SweepRunner(units, index_path=index_path, workers=workers)
    started = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - started


def _digest_map(result):
    return {payload["key"]: (payload["config_digest"],
                             payload["node_digests"])
            for payload in result.results()}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=4,
                        help="campaign size: consecutive seeds starting "
                             "at --seed (default %(default)s)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3001,
                        help="base seed (default %(default)s, disjoint "
                             "from the tests' 2023 grid)")
    parser.add_argument("--time-scale", type=float, default=0.08,
                        help="real seconds slept per simulated network "
                             "second while probing (default "
                             "%(default)s; never changes output bytes)")
    parser.add_argument("-o", "--output", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    units = expand_grid(StudyConfig(seed=args.seed), seeds=args.seeds,
                        time_scale=args.time_scale, stage="probe")
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-sweep-"))

    print(f"campaign: {len(units)} probe-stage units "
          f"(time scale {args.time_scale})...")
    serial, serial_seconds = _timed_campaign(
        units, scratch / "serial.json", workers=1)
    print(f"  serial        {serial_seconds:6.2f}s")
    pooled, pool_seconds = _timed_campaign(
        units, scratch / "pool.json", workers=args.workers)
    speedup = serial_seconds / pool_seconds
    print(f"  --workers {args.workers}   {pool_seconds:6.2f}s "
          f"({speedup:.2f}x)")

    ok = serial.ok and pooled.ok
    identical = ok and _digest_map(serial) == _digest_map(pooled)
    if not identical:
        print("FATAL: pooled campaign digests differ from serial",
              file=sys.stderr)

    payload = {
        "seed": args.seed,
        "seeds": args.seeds,
        "units": len(units),
        "stage": "probe",
        "workers": args.workers,
        "time_scale": args.time_scale,
        "serial_seconds": round(serial_seconds, 3),
        "pool_seconds": round(pool_seconds, 3),
        "speedup": round(speedup, 2),
        "digests_identical": identical,
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")
    if speedup < 2.5:
        print(f"WARNING: speedup {speedup:.2f}x below the 2.5x target",
              file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
