"""Figure 2 — CDFs of DoC_vendor and DoC_device.

Paper: >70% of vendors have ≥1 unique fingerprint; 40% have
DoC_vendor > 0.5; ~20% of vendors have DoC_device = 1.
"""

from repro.core.customization import doc_device_all, doc_vendor_all
from repro.core.tables import percent, render_cdf, render_table


def test_figure2_doc_cdfs(benchmark, dataset, emit):
    def compute():
        return doc_vendor_all(dataset), doc_device_all(dataset)

    vendor_doc, device_doc = benchmark(compute)
    vendor_cdf = render_cdf(vendor_doc.values())
    device_cdf = render_cdf(device_doc.values())
    rows = [[f"P(DoC <= {point})", percent(vendor_cdf[point], 1),
             percent(device_cdf[point], 1)]
            for point in sorted(vendor_cdf)]
    vendor_values = list(vendor_doc.values())
    extras = [
        ["vendors w/ >=1 unique fp",
         percent(sum(1 for v in vendor_values if v > 0)
                 / len(vendor_values)), "(paper: >70%)"],
        ["vendors w/ DoC_vendor > 0.5",
         percent(sum(1 for v in vendor_values if v > 0.5)
                 / len(vendor_values)), "(paper: ~40%)"],
        ["vendors w/ DoC_device == 1",
         percent(sum(1 for v in device_doc.values() if v == 1)
                 / len(device_doc)), "(paper: ~20%)"],
    ]
    table = render_table(["CDF point", "DoC_vendor", "DoC_device"], rows,
                         title="Figure 2 — degree of customization CDFs")
    table += "\n" + render_table(["headline", "measured", "paper"], extras)
    emit("fig2_doc_cdf", table)
    assert sum(1 for v in vendor_values if v > 0) / len(vendor_values) > 0.7
