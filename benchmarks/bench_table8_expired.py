"""Table 8 — certificates already expired during the capture window.

Paper: skyegloup.com (not after 07/31/2018, Gandi, 7 devices of
Denon/Marantz) and wink.com (04/17/2019, COMODO, 11 devices of
Samsung/Wink).
"""

from repro.core.chains import expired_rows
from repro.core.tables import render_table
from repro.inspector.timeline import CAPTURE_END


def test_table8_expired_certificates(benchmark, dataset, certificates,
                                     emit):
    rows = benchmark(expired_rows, certificates, dataset, CAPTURE_END)
    table_rows = [[row.domain, row.not_after_text(), row.issuer,
                   row.device_count, ", ".join(row.vendors)]
                  for row in rows]
    table = render_table(
        ["domain", "not after", "issued by", "#devices", "vendors"],
        table_rows,
        title="Table 8 — long-expired certificates (at capture end)")
    table += ("\npaper: skyegloup.com 07/31/2018 Gandi (7, Denon/Marantz); "
              "wink.com 04/17/2019 COMODO (11, Samsung/Wink)")
    emit("table8_expired", table)
    domains = {row.domain for row in rows}
    assert {"skyegloup.com", "wink.com"} <= domains
