"""Appendix B.3 / B.9 / B.10 — FALLBACK_SCSV, OCSP, and GREASE usage.

Paper: FALLBACK_SCSV on 20 devices of 6 vendors; status_request from 648
devices of 33 vendors; GREASE in suites from 501 devices of 23 vendors
and in extensions from 503 devices of 15 vendors (2 extension-only).
"""

from repro.core.params import (
    extension_usage,
    fallback_scsv_usage,
    grease_usage,
    ocsp_usage,
)
from repro.core.tables import render_table


def test_appendix_b_parameters(benchmark, dataset, emit):
    def compute():
        return (fallback_scsv_usage(dataset), ocsp_usage(dataset),
                grease_usage(dataset))

    (fb_devices, fb_vendors), (ocsp_devices, ocsp_vendors), grease = \
        benchmark(compute)
    rows = [
        ["TLS_FALLBACK_SCSV devices", len(fb_devices), "20"],
        ["TLS_FALLBACK_SCSV vendors", len(fb_vendors), "6"],
        ["OCSP status_request devices", len(ocsp_devices), "648"],
        ["OCSP status_request vendors", len(ocsp_vendors), "33"],
        ["GREASE-in-suites devices", len(grease["suite_devices"]), "501"],
        ["GREASE-in-suites vendors", len(grease["suite_vendors"]), "23"],
        ["GREASE-in-extensions devices",
         len(grease["extension_devices"]), "503"],
        ["GREASE-in-extensions vendors",
         len(grease["extension_vendors"]), "15"],
        ["extension-only GREASE devices",
         len(grease["extension_only_devices"]), "2"],
    ]
    table = render_table(["quantity", "measured", "paper"], rows,
                         title="Appendix B.3/B.9/B.10 — TLS parameters")
    usage = extension_usage(dataset)
    popular = sorted(usage.items(), key=lambda kv: -kv[1])[:8]
    table += "\nmost common extensions (devices): " + ", ".join(
        f"{name}={count}" for name, count in popular)
    emit("appb_params", table)
    assert len(ocsp_vendors) >= 20
