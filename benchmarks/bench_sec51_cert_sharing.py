"""Section 5.1 — certificate sharing across servers and IPs.

Paper: 29 Google servers of 6 SLDs share one leaf; 1.72 FQDNs/cert
(variance 5.53, max 32); 547 (64.96%) certs served from multiple IPs
(mean 5.43, max 93 IPs per cert).
"""

import statistics

from repro.core.tables import percent, render_table
from repro.x509.names import second_level_domain


def test_section51_certificate_sharing(benchmark, certificates, network,
                                       emit):
    sharing = benchmark(certificates.fqdns_by_leaf)
    counts = [len(v) for v in sharing.values()]
    biggest = max(sharing.values(), key=len)
    slds = {second_level_domain(f) for f in biggest}
    ips = certificates.ips_by_leaf(network)
    ip_counts = [len(v) for v in ips.values()]
    multi = sum(1 for v in ip_counts if v > 1)
    rows = [
        ["mean FQDNs per cert", f"{statistics.mean(counts):.2f}", "1.72"],
        ["variance", f"{statistics.pvariance(counts):.2f}", "5.53"],
        ["max FQDNs per cert", max(counts), "32"],
        ["largest shared cert spans SLDs", len(slds), "6 (Google)"],
        ["certs on multiple IPs",
         f"{multi} ({percent(multi / len(ip_counts))})", "547 (64.96%)"],
        ["mean IPs per cert", f"{statistics.mean(ip_counts):.2f}", "5.43"],
        ["max IPs per cert", max(ip_counts), "93"],
    ]
    emit("sec51_cert_sharing", render_table(
        ["quantity", "measured", "paper"], rows,
        title="Section 5.1 — certificate sharing"))
    assert max(counts) > 10
