"""Figures 3 & 4 — Amazon device-type and Echo device clusters.

Paper: 180 fingerprints exclusive to a single Amazon device type; a
large multi-cluster graph of Echo devices × fingerprints.
"""

from repro.core.graphs import (
    device_fingerprint_graph,
    device_type_fingerprint_graph,
    exclusive_fingerprints_per_type,
    graph_summary,
)
from repro.core.tables import render_table


def test_figure3_amazon_types(benchmark, dataset, emit):
    graph = benchmark(device_type_fingerprint_graph, dataset, "Amazon")
    summary = graph_summary(graph)
    exclusive = exclusive_fingerprints_per_type(dataset, "Amazon")
    rows = [
        ["device-type nodes", summary["entity_nodes"], "—"],
        ["fingerprint nodes", summary["fingerprint_nodes"], "244"],
        ["fingerprints exclusive to one type", exclusive, "180"],
        ["edges", summary["edges"], "—"],
    ]
    emit("fig3_amazon_types", render_table(
        ["quantity", "measured", "paper"], rows,
        title="Figure 3 — Amazon device types x fingerprints"))
    assert exclusive > 0


def test_figure4_amazon_echos(benchmark, dataset, emit):
    def build():
        return device_fingerprint_graph(dataset, "Amazon",
                                        device_type="Echo")

    graph = benchmark(build)
    summary = graph_summary(graph)
    rows = [
        ["Echo devices", summary["entity_nodes"], "—"],
        ["fingerprints", summary["fingerprint_nodes"],
         ">8 (prior work saw 8)"],
        ["clusters (components)", summary["components"], "multiple"],
    ]
    emit("fig4_amazon_echos", render_table(
        ["quantity", "measured", "paper"], rows,
        title="Figure 4 — Amazon Echo devices x fingerprints"))
    assert summary["fingerprint_nodes"] > 8
