"""Figure 11 — lowest index of vulnerable ciphersuites per vendor.

Paper: ≥1 device of 13 vendors proposes a vulnerable suite *first*;
devices of 7 vendors never include any vulnerable suite.
"""

from repro.core.preferences import (
    lowest_vulnerable_index,
    vendors_preferring_vulnerable_first,
    vendors_without_vulnerable,
)
from repro.core.tables import render_table


def test_figure11_lowest_vulnerable_index(benchmark, dataset, emit):
    indexes = benchmark(lowest_vulnerable_index, dataset)
    rows = []
    for vendor in sorted(indexes,
                         key=lambda v: sum(indexes[v]) / len(indexes[v])):
        values = indexes[vendor]
        rows.append([vendor, len(values), min(values),
                     f"{sum(values) / len(values):.1f}", max(values)])
    first = vendors_preferring_vulnerable_first(dataset)
    clean = vendors_without_vulnerable(dataset)
    table = render_table(
        ["vendor", "tuples w/ vuln", "min index", "mean", "max"],
        rows[:20], title="Figure 11 — lowest vulnerable-suite index "
                         "(20 worst vendors)")
    table += (f"\nvendors proposing a vulnerable suite FIRST: {len(first)} "
              f"(paper: 13): {first}")
    table += (f"\nvendors never proposing vulnerable suites: {len(clean)} "
              f"(paper: 7): {clean}")
    emit("fig11_lowest_vuln_index", table)
    assert first and clean
