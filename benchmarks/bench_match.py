"""Brute-force vs sketch-accelerated matching wall-clock benchmark.

Builds a ``--factor``-times-larger world from the real study (seeded
clone/mutation synthesis, see :mod:`repro.match.synth`) and times the
two matching workloads of the paper pipeline both ways, asserting the
accelerated results are *identical* to the brute-force ones:

1. **corpus leg** — near-matching probe fingerprints against the
   library corpus: a linear scan over all corpus entries with
   precomputed token sets and exact Jaccard, versus
   :meth:`repro.match.CorpusIndex.near_matches` (distinct-key dedup +
   size-window pruning, exact rescoring);
2. **pairs leg** — vendor similar-pair mining over the scaled vendor
   world: exact Jaccard over every pair via ``itertools.combinations``,
   versus :meth:`repro.match.SimilarityIndex.all_pairs` (element
   inverted-index pruning, exact rescoring).

The headline ``speedup`` is the *minimum* of the two legs — the gate
number in ``BENCH_match.json`` — and the run fails loudly (exit 1) if
either leg's accelerated results differ from brute force by a single
byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_match.py \
        [--factor 10] [--probes 1000] [--threshold 0.5] \
        [--pair-threshold 0.2] [-o BENCH_match.json]
"""

import argparse
import itertools
import json
import pathlib
import sys
import time

from repro.libraries.base import version_sort_key
from repro.match import (CorpusIndex, SimilarityIndex,
                         fingerprint_tokens, set_jaccard)
from repro.match.synth import scaled_fingerprints, scaled_vendor_sets
from repro.study import get_study


def _sample(items, count):
    """Deterministic stride sample of ``count`` items (order kept)."""
    if count >= len(items):
        return list(items)
    stride = len(items) / count
    return [items[int(i * stride)] for i in range(count)]


def corpus_leg(study, factor, probes, threshold):
    """Time brute linear corpus scan vs CorpusIndex.near_matches."""
    world = scaled_fingerprints(study.dataset, factor)
    sampled = _sample(world, probes)
    corpus = study.corpus

    # Brute setup is untimed — the baseline pays only the per-probe
    # linear scan, never the one-off precomputation (generous to it).
    entry_tokens = [(entry, fingerprint_tokens(entry.key()))
                    for entry in corpus]
    best_by_key = {}
    for entry, _tokens in entry_tokens:
        key = entry.key()
        if key not in best_by_key or \
                (entry.library, version_sort_key(entry.version)) > \
                (best_by_key[key].library,
                 version_sort_key(best_by_key[key].version)):
            best_by_key[key] = entry

    def brute(fp):
        tokens = fingerprint_tokens(fp)
        hits = {}
        for entry, candidate in entry_tokens:
            similarity = set_jaccard(tokens, candidate)
            if similarity >= threshold:
                hits[entry.key()] = similarity
        return sorted(((similarity, key)
                       for key, similarity in hits.items()),
                      key=lambda hit: (-hit[0], hit[1]))

    started = time.perf_counter()
    brute_hits = [brute(fp) for fp in sampled]
    brute_seconds = time.perf_counter() - started

    started = time.perf_counter()
    index = CorpusIndex(corpus)
    fast_hits = [index.near_matches(fp, threshold=threshold,
                                    limit=None)
                 for fp in sampled]
    fast_seconds = time.perf_counter() - started

    brute_view = [[(similarity, best_by_key[key].full_name)
                   for similarity, key in hits]
                  for hits in brute_hits]
    fast_view = [[(similarity, entry.full_name)
                  for similarity, entry in hits]
                 for hits in fast_hits]
    return {
        "world_fingerprints": len(world),
        "probes": len(sampled),
        "corpus_entries": len(corpus),
        "threshold": threshold,
        "brute_seconds": round(brute_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(brute_seconds / fast_seconds, 2),
        "identical": brute_view == fast_view,
    }


def _best_of(fn, repeats):
    """(result, min-seconds) over ``repeats`` runs — noise floor."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def pairs_leg(study, factor, threshold, repeats):
    """Time brute all-pairs vendor Jaccard vs SimilarityIndex."""
    world = scaled_vendor_sets(study.dataset, factor)

    def brute_pairs():
        hits = []
        for a, b in itertools.combinations(sorted(world), 2):
            similarity = set_jaccard(world[a], world[b])
            if similarity >= threshold:
                hits.append((similarity, a, b))
        hits.sort(key=lambda row: (-row[0], row[1], row[2]))
        return hits

    def fast_pairs():
        index = SimilarityIndex()
        for vendor in sorted(world):
            index.add(vendor, world[vendor])
        return index.all_pairs(threshold)

    brute, brute_seconds = _best_of(brute_pairs, repeats)
    fast, fast_seconds = _best_of(fast_pairs, repeats)

    return {
        "vendors": len(world),
        "total_pairs": len(world) * (len(world) - 1) // 2,
        "similar_pairs": len(fast),
        "threshold": threshold,
        "brute_seconds": round(brute_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(brute_seconds / fast_seconds, 2),
        "identical": brute == fast,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=int, default=10,
                        help="world-size multiplier over the real study "
                             "(default %(default)s — the north-star "
                             "'10x world size')")
    parser.add_argument("--probes", type=int, default=1000,
                        help="corpus-leg probe count, stride-sampled "
                             "from the scaled world (default "
                             "%(default)s; both paths query the same "
                             "probes, so the ratio is fair)")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="corpus near-match Jaccard threshold "
                             "(default %(default)s)")
    parser.add_argument("--pair-threshold", type=float, default=0.2,
                        help="vendor similar-pair threshold (default "
                             "%(default)s, the paper's Table 4 floor)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="pairs-leg best-of-N timing runs per side "
                             "(default %(default)s; min filters "
                             "scheduler noise, results must agree)")
    parser.add_argument("-o", "--output", default="BENCH_match.json")
    args = parser.parse_args(argv)

    study = get_study()
    print(f"world: factor {args.factor} over seed "
          f"{study.config.seed}...")

    corpus = corpus_leg(study, args.factor, args.probes,
                        args.threshold)
    if corpus["probes"] < corpus["world_fingerprints"]:
        print(f"  corpus leg probes capped at {corpus['probes']} of "
              f"{corpus['world_fingerprints']} scaled fingerprints "
              f"(--probes)")
    print(f"  corpus  brute {corpus['brute_seconds']:7.2f}s   "
          f"indexed {corpus['fast_seconds']:7.3f}s   "
          f"({corpus['speedup']:.1f}x)")
    pairs = pairs_leg(study, args.factor, args.pair_threshold,
                      args.repeats)
    print(f"  pairs   brute {pairs['brute_seconds']:7.2f}s   "
          f"indexed {pairs['fast_seconds']:7.3f}s   "
          f"({pairs['speedup']:.1f}x)")

    identical = corpus["identical"] and pairs["identical"]
    if not identical:
        print("FATAL: accelerated results differ from brute force",
              file=sys.stderr)
    speedup = min(corpus["speedup"], pairs["speedup"])

    payload = {
        "seed": study.config.seed,
        "factor": args.factor,
        "corpus_leg": corpus,
        "pairs_leg": pairs,
        "speedup": speedup,
        "identical": identical,
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path} (headline speedup {speedup:.1f}x)")
    if speedup < 10.0:
        print(f"WARNING: speedup {speedup:.2f}x below the 10x target",
              file=sys.stderr)
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
