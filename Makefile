# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-probe report figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-probe:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_probe_engine.py \
	    --jobs 4 -o BENCH_probe.json

report:
	$(PYTHON) -m repro report -o study_report.md

figures:
	$(PYTHON) -m repro figures -o figure_data

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fingerprint_audit.py Samsung
	$(PYTHON) examples/certificate_audit.py Roku
	$(PYTHON) examples/supply_chain_discovery.py
	$(PYTHON) examples/smart_tv_case_study.py
	$(PYTHON) examples/acme_migration.py Tuya

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis study_report.md \
	       figure_data capture.jsonl certificates.jsonl BENCH_probe.json
