# Convenience targets for the reproduction repository.
#
# Every target that imports `repro` sets PYTHONPATH=src so all of them
# work from a clean checkout, with no `make install` required.

PYTHON ?= python

.PHONY: install test lint check verify bench bench-probe bench-obs \
        bench-store bench-sweep bench-serve bench-match bench-fabric \
        bench-ml bench-gate coverage serve sweep report figures \
        examples clean

install:
	$(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Lightweight lint: everything must byte-compile, and `print(` is banned
# in src/repro outside the CLI (library code reports via repro.obs) and
# in benchmarks/ helper modules (bench_*.py scripts may still print).
lint:
	$(PYTHON) -m compileall -q src/repro tests benchmarks examples tools
	@bad=$$(grep -rn --include='*.py' '^[[:space:]]*print(' src/repro \
	    | grep -v '^src/repro/cli\.py:' || true); \
	if [ -n "$$bad" ]; then \
	    echo "lint: bare print() outside src/repro/cli.py:"; \
	    echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn --include='*.py' '^[[:space:]]*print(' benchmarks \
	    | grep -v '^benchmarks/bench_' || true); \
	if [ -n "$$bad" ]; then \
	    echo "lint: bare print() in benchmarks/ helper modules:"; \
	    echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn --include='*.py' \
	    -e 'sharing import.*jaccard' -e 'sharing\.jaccard' \
	    src/repro benchmarks examples \
	    | grep -v '^src/repro/core/sharing\.py:' \
	    | grep -v '^src/repro/match/' || true); \
	if [ -n "$$bad" ]; then \
	    echo "lint: deprecated sharing.jaccard used outside"; \
	    echo "      repro.match (use repro.match.set_jaccard):"; \
	    echo "$$bad"; exit 1; \
	fi
	@echo "lint: ok"

check: test lint

# Differential conformance: re-run the pipeline and compare every node
# against the committed golden baseline (conformance/baseline.json).
verify:
	PYTHONPATH=src $(PYTHON) -m repro verify check

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-probe:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_probe_engine.py \
	    --jobs 4 -o BENCH_probe.json

bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_obs_overhead.py \
	    -o BENCH_obs.json

bench-store:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_store.py \
	    -o BENCH_store.json

bench-sweep:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep.py \
	    -o BENCH_sweep.json

bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py \
	    -o BENCH_serve.json

bench-match:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_match.py \
	    -o BENCH_match.json

bench-fabric:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fabric.py \
	    -o BENCH_fabric.json

bench-ml:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ml.py \
	    -o BENCH_ml.json

# Re-run the gated benchmarks and compare against committed BENCH_*.json
# (the CI bench-regression job).
bench-gate:
	$(PYTHON) tools/bench_gate.py --override store=0.5 \
	    --override match=0.4

# Line coverage over src/repro (CI's coverage job; needs pytest-cov).
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ --cov=src/repro \
	    --cov-report=term --cov-report=html --cov-fail-under=70

# Stream-ingest the capture and serve the query API (checkpoints into
# the local cache so a restarted server resumes).
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve --cache-dir .repro-cache

# Multi-seed campaign: 4 seeds, 2 worker processes, shared cache.
sweep:
	PYTHONPATH=src $(PYTHON) -m repro sweep run --seeds 4 --workers 2 \
	    --out sweep_out --cache-dir .repro-cache

report:
	PYTHONPATH=src $(PYTHON) -m repro report -o study_report.md

figures:
	PYTHONPATH=src $(PYTHON) -m repro figures -o figure_data

examples:
	PYTHONPATH=src $(PYTHON) examples/quickstart.py
	PYTHONPATH=src $(PYTHON) examples/fingerprint_audit.py Samsung
	PYTHONPATH=src $(PYTHON) examples/certificate_audit.py Roku
	PYTHONPATH=src $(PYTHON) examples/supply_chain_discovery.py
	PYTHONPATH=src $(PYTHON) examples/smart_tv_case_study.py
	PYTHONPATH=src $(PYTHON) examples/acme_migration.py Tuya

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis study_report.md \
	       figure_data capture.jsonl certificates.jsonl BENCH_probe.json \
	       BENCH_obs.json BENCH_store.json BENCH_sweep.json \
	       BENCH_serve.json BENCH_match.json BENCH_fabric.json \
	       BENCH_ml.json ml_model.json ml_eval.json htmlcov .coverage \
	       trace.jsonl *.manifest.json .repro-cache sweep_out \
	       fabric_out bench_fresh
