"""Unit tests for the world generator (structure and determinism)."""

import pytest

from repro.inspector.generator import STANDALONE_VENDORS, WorldGenerator
from repro.inspector.io import load_records, save_records
from repro.inspector.vendors import PROFILES_BY_NAME, VENDOR_PROFILES
from repro.tlslib.extensions import ExtensionType


class TestStructure:
    def test_every_device_has_base_stack(self, study):
        for device in study.world.devices:
            assert "base" in device.stacks

    def test_every_device_emits_records(self, study, dataset):
        emitting = {record.device_id for record in dataset.records}
        built = {device.device_id for device in study.world.devices}
        assert built == emitting

    def test_device_vendor_matches_profile(self, study):
        for device in study.world.devices:
            assert device.vendor in PROFILES_BY_NAME

    def test_per_vendor_device_counts(self, study):
        from collections import Counter
        counts = Counter(d.vendor for d in study.world.devices)
        for profile in VENDOR_PROFILES:
            assert counts[profile.name] == profile.devices

    def test_labels_identify_as_vendor(self, study):
        from repro.inspector.labels import identify
        names = study.world.vendor_names()
        for device in study.world.devices[::37]:
            assert identify(device.label, names)[0] == device.vendor

    def test_routing_points_at_existing_stacks(self, study):
        for device in study.world.devices:
            for stack_key in device.routing.values():
                assert stack_key in device.stacks

    def test_all_stacks_carry_sni_extension(self, study):
        for device in study.world.devices[::51]:
            for stack in device.stacks.values():
                assert int(ExtensionType.SERVER_NAME) in stack.extensions


class TestServers:
    def test_fqdn_uniqueness(self, study):
        fqdns = [spec.fqdn for spec in study.world.servers]
        assert len(fqdns) == len(set(fqdns))

    def test_fqdn_belongs_to_sld(self, study):
        for spec in study.world.servers:
            assert spec.fqdn.endswith(spec.sld)

    def test_cn_mismatch_host_named_a2(self, study):
        mismatches = [spec for spec in study.world.servers
                      if spec.cn_mismatch]
        assert any(spec.fqdn == "a2.tuyaus.com" for spec in mismatches)

    def test_every_reachable_sni_observed_from_3_users(self, study,
                                                       dataset):
        for spec in study.world.reachable_servers()[::29]:
            assert len(dataset.sni_users(spec.fqdn)) >= 3

    def test_unreachable_not_in_records_requirement(self, study):
        # Unreachable servers were alive during capture; they may appear
        # in records, and the generator keeps the probing failure list at
        # exactly the paper's 43.
        unreachable = [s for s in study.world.servers if s.unreachable]
        assert len(unreachable) == 43


class TestRecords:
    def test_timestamps_within_capture_window(self, dataset):
        from repro.inspector.timeline import CAPTURE_END, CAPTURE_START
        for record in dataset.records[::101]:
            assert CAPTURE_START <= record.timestamp <= CAPTURE_END

    def test_records_sorted_by_time(self, dataset):
        stamps = [record.timestamp for record in dataset.records]
        assert stamps == sorted(stamps)

    def test_sni_always_present(self, dataset):
        assert all(record.sni for record in dataset.records)

    def test_rare_snis_filtered(self, study, dataset):
        assert study.world.funnel["rare_snis_filtered"] > 0
        for record in dataset.records:
            assert "rare-service" not in record.sni


class TestDeterminism:
    def test_same_seed_same_world(self):
        world_a = WorldGenerator(seed=11).generate()
        world_b = WorldGenerator(seed=11).generate()
        records_a = [(r.device_id, r.sni, r.ciphersuites)
                     for r in world_a.records]
        records_b = [(r.device_id, r.sni, r.ciphersuites)
                     for r in world_b.records]
        assert records_a == records_b

    def test_different_seed_different_world(self):
        world_a = WorldGenerator(seed=11).generate()
        world_b = WorldGenerator(seed=12).generate()
        records_a = [(r.device_id, r.sni, r.ciphersuites)
                     for r in world_a.records]
        records_b = [(r.device_id, r.sni, r.ciphersuites)
                     for r in world_b.records]
        assert records_a != records_b


class TestStandaloneVendors:
    def test_standalone_membership(self):
        assert "Tuya" in STANDALONE_VENDORS
        assert "Amazon" not in STANDALONE_VENDORS

    def test_exclusive_vendor_destinations(self, dataset):
        # Canary devices only talk to canaryis.com hosts.
        for device_id in dataset.devices_of_vendor("Canary"):
            for record in dataset.records_of_device(device_id):
                assert record.sni.endswith("canaryis.com")


class TestPersistence:
    def test_jsonl_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "records.jsonl"
        subset = dataset.records[:50]
        save_records(subset, path)
        loaded = load_records(path)
        assert loaded == subset
