"""Unit tests for the client/server handshake machinery."""

import pytest

from repro.tlslib.ciphersuites import FALLBACK_SCSV
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.errors import TLSHandshakeError, TLSParseError
from repro.tlslib.handshake import ServerConfig, TLSClient, TLSServer
from repro.tlslib.serverhello import CertificateMessage, ServerHello
from repro.tlslib.versions import TLSVersion


def make_server(versions=(TLSVersion.TLS_1_0, TLSVersion.TLS_1_1,
                          TLSVersion.TLS_1_2),
                suites=(0xC02F, 0x009C, 0x0035),
                chain=(b"leaf-der", b"intermediate-der"),
                prefer_client_order=True):
    return TLSServer(ServerConfig(
        supported_versions=frozenset(versions),
        supported_suites=tuple(suites),
        chain_provider=lambda _sni: list(chain),
        prefer_client_order=prefer_client_order))


def make_hello(version=TLSVersion.TLS_1_2, suites=(0x009C, 0xC02F),
               sni="host.example.com"):
    return ClientHello(version=version, ciphersuites=list(suites),
                       extensions=[0, 10], sni=sni)


class TestNegotiation:
    def test_full_handshake(self):
        result = TLSClient().handshake(make_hello(), make_server())
        assert result.negotiated_version == TLSVersion.TLS_1_2
        assert result.negotiated_suite.code == 0x009C  # client's first
        assert result.chain_der == [b"leaf-der", b"intermediate-der"]

    def test_server_preference_order(self):
        server = make_server(prefer_client_order=False)
        result = TLSClient().handshake(make_hello(), server)
        assert result.negotiated_suite.code == 0xC02F  # server's first

    def test_version_downgrade(self):
        server = make_server(versions=(TLSVersion.TLS_1_0,
                                       TLSVersion.TLS_1_1))
        result = TLSClient().handshake(make_hello(), server)
        assert result.negotiated_version == TLSVersion.TLS_1_1

    def test_no_common_version(self):
        server = make_server(versions=(TLSVersion.TLS_1_2,))
        with pytest.raises(TLSHandshakeError) as err:
            TLSClient().handshake(make_hello(version=TLSVersion.TLS_1_0),
                                  server)
        assert err.value.alert == "protocol_version"

    def test_no_common_suite(self):
        server = make_server(suites=(0x1301,))
        with pytest.raises(TLSHandshakeError) as err:
            TLSClient().handshake(make_hello(), server)
        assert err.value.alert == "handshake_failure"

    def test_grease_and_scsv_never_negotiated(self):
        server = make_server(suites=(0x0A0A, FALLBACK_SCSV, 0xC02F))
        result = TLSClient().handshake(
            make_hello(suites=(0x0A0A, FALLBACK_SCSV, 0xC02F)), server)
        assert result.negotiated_suite.code == 0xC02F

    def test_sni_reaches_chain_provider(self):
        seen = []

        def provider(sni):
            seen.append(sni)
            return [b"leaf"]

        server = TLSServer(ServerConfig(
            supported_versions=frozenset({TLSVersion.TLS_1_2}),
            supported_suites=(0xC02F,), chain_provider=provider))
        TLSClient().handshake(make_hello(sni="picky.host.net"), server)
        assert seen == ["picky.host.net"]


class TestWireDiscipline:
    def test_record_version_pinned_to_tls10(self):
        flight = TLSClient().first_flight(make_hello())
        # Record header: type(1) + version(2); initial flights use TLS 1.0.
        assert flight[1:3] == bytes([0x03, 0x01])

    def test_ssl3_client_uses_ssl3_records(self):
        flight = TLSClient().first_flight(
            make_hello(version=TLSVersion.SSL_3_0))
        assert flight[1:3] == bytes([0x03, 0x00])

    def test_server_rejects_garbage(self):
        with pytest.raises(TLSParseError):
            make_server().handle(b"\x00" * 32)

    def test_server_rejects_flight_without_hello(self):
        from repro.tlslib.record import ContentType, encode_records
        hello_less = ServerHello(version=TLSVersion.TLS_1_2,
                                 ciphersuite=0xC02F).to_bytes()
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                              hello_less)
        with pytest.raises(TLSParseError):
            make_server().handle(wire)

    def test_client_rejects_unoffered_suite(self):
        from repro.tlslib.record import ContentType, encode_records
        hello = make_hello(suites=(0xC02F,))
        rogue = ServerHello(version=TLSVersion.TLS_1_2, ciphersuite=0x0005)
        payload = rogue.to_bytes() + CertificateMessage([b"x"]).to_bytes()
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                              payload)
        with pytest.raises(TLSHandshakeError) as err:
            TLSClient().read_server_flight(hello, wire)
        assert err.value.alert == "illegal_parameter"

    def test_client_requires_server_hello(self):
        from repro.tlslib.record import ContentType, encode_records
        payload = CertificateMessage([b"x"]).to_bytes()
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                              payload)
        with pytest.raises(TLSHandshakeError):
            TLSClient().read_server_flight(make_hello(), wire)


class TestServerHelloMessages:
    def test_serverhello_roundtrip(self):
        original = ServerHello(version=TLSVersion.TLS_1_1,
                               ciphersuite=0x0035, session_id=b"sid")
        parsed = ServerHello.from_bytes(original.to_bytes())
        assert parsed.version == TLSVersion.TLS_1_1
        assert parsed.ciphersuite == 0x0035
        assert parsed.session_id == b"sid"
        assert parsed.random == original.random

    def test_certificate_roundtrip(self):
        chains = [[], [b"one"], [b"leaf", b"mid", b"root"]]
        for chain in chains:
            parsed = CertificateMessage.from_bytes(
                CertificateMessage(chain).to_bytes())
            assert parsed.chain_der == chain

    def test_serverhello_truncation(self):
        wire = ServerHello(version=TLSVersion.TLS_1_2,
                           ciphersuite=0xC02F).to_bytes()
        with pytest.raises(TLSParseError):
            ServerHello.from_bytes(wire[:10])

    def test_certificate_wrong_type(self):
        wire = ServerHello(version=TLSVersion.TLS_1_2,
                           ciphersuite=0xC02F).to_bytes()
        with pytest.raises(TLSParseError):
            CertificateMessage.from_bytes(wire)
