"""Unit tests for certificate construction, DER round-trip, semantics."""

import random

import pytest

from repro.x509.certificate import Certificate, sign_certificate
from repro.x509.errors import DERDecodeError, SignatureError
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName

NOW = 1_650_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def issuer_key():
    return generate_keypair(512, rng=random.Random(11))


@pytest.fixture(scope="module")
def subject_key():
    return generate_keypair(512, rng=random.Random(12))


@pytest.fixture(scope="module")
def leaf(issuer_key, subject_key):
    return sign_certificate(
        serial=42,
        subject=DistinguishedName(common_name="api.vendor.com",
                                  organization="Vendor"),
        issuer=DistinguishedName(common_name="Trusty CA",
                                 organization="Trusty"),
        issuer_keypair=issuer_key,
        not_before=NOW, not_after=NOW + 397 * DAY,
        public_key=subject_key.public,
        san_dns_names=("api.vendor.com", "www.vendor.com"))


class TestRoundTrip:
    def test_der_roundtrip_fields(self, leaf):
        parsed = Certificate.from_der(leaf.to_der())
        assert parsed.serial == 42
        assert parsed.subject == leaf.subject
        assert parsed.issuer == leaf.issuer
        assert parsed.not_before == NOW
        assert parsed.not_after == NOW + 397 * DAY
        assert parsed.san_dns_names == ("api.vendor.com", "www.vendor.com")
        assert parsed.is_ca is False
        assert parsed.public_key == leaf.public_key

    def test_der_roundtrip_is_byte_stable(self, leaf):
        assert Certificate.from_der(leaf.to_der()).to_der() == leaf.to_der()

    def test_signature_survives_roundtrip(self, leaf, issuer_key):
        parsed = Certificate.from_der(leaf.to_der())
        parsed.verify_signature(issuer_key.public)  # no exception

    def test_fingerprint_stable_and_unique(self, leaf, issuer_key,
                                           subject_key):
        assert leaf.fingerprint() == leaf.fingerprint()
        other = sign_certificate(
            serial=43, subject=leaf.subject, issuer=leaf.issuer,
            issuer_keypair=issuer_key, not_before=NOW,
            not_after=NOW + DAY, public_key=subject_key.public)
        assert other.fingerprint() != leaf.fingerprint()

    def test_garbage_rejected(self):
        with pytest.raises(DERDecodeError):
            Certificate.from_der(b"\x30\x03\x02\x01\x05")


class TestSemantics:
    def test_validity_days(self, leaf):
        assert leaf.validity_days == pytest.approx(397)

    def test_time_validity(self, leaf):
        assert leaf.is_time_valid(NOW + DAY)
        assert leaf.is_expired(NOW + 398 * DAY)
        assert leaf.is_not_yet_valid(NOW - DAY)
        assert not leaf.is_expired(NOW + DAY)

    def test_host_coverage_uses_san(self, leaf):
        assert leaf.covers_host("www.vendor.com")
        assert not leaf.covers_host("other.vendor.com")

    def test_not_self_issued(self, leaf):
        assert not leaf.is_self_issued
        assert not leaf.is_self_signed()

    def test_self_signed(self, issuer_key):
        subject = DistinguishedName(common_name="self.example")
        cert = sign_certificate(
            serial=1, subject=subject, issuer=subject,
            issuer_keypair=issuer_key, not_before=NOW,
            not_after=NOW + DAY, public_key=issuer_key.public)
        assert cert.is_self_issued
        assert cert.is_self_signed()

    def test_self_issued_but_not_self_signed(self, issuer_key, subject_key):
        # Same subject/issuer name, but signed by a DIFFERENT key.
        subject = DistinguishedName(common_name="fake.example")
        cert = sign_certificate(
            serial=1, subject=subject, issuer=subject,
            issuer_keypair=issuer_key, not_before=NOW,
            not_after=NOW + DAY, public_key=subject_key.public)
        assert cert.is_self_issued
        assert not cert.is_self_signed()

    def test_verify_wrong_issuer_raises(self, leaf, subject_key):
        with pytest.raises(SignatureError):
            leaf.verify_signature(subject_key.public)

    def test_tampered_der_fails_verification(self, leaf, issuer_key):
        der = bytearray(leaf.to_der())
        index = der.find(b"api.vendor.com")
        der[index] ^= 0x01
        tampered = Certificate.from_der(bytes(der))
        with pytest.raises(SignatureError):
            tampered.verify_signature(issuer_key.public)

    def test_ca_flag_roundtrip(self, issuer_key):
        subject = DistinguishedName(common_name="Mini Root")
        cert = sign_certificate(
            serial=1, subject=subject, issuer=subject,
            issuer_keypair=issuer_key, not_before=NOW,
            not_after=NOW + DAY, public_key=issuer_key.public, is_ca=True)
        assert Certificate.from_der(cert.to_der()).is_ca

    def test_century_long_validity_roundtrip(self, issuer_key, subject_key):
        # Tuya signs 36,500-day (100-year) certificates; the not-after
        # lands past 2050 and must use GeneralizedTime.
        cert = sign_certificate(
            serial=9, subject=DistinguishedName(common_name="*.tuyaus.com"),
            issuer=DistinguishedName(common_name="Tuya Root CA"),
            issuer_keypair=issuer_key, not_before=NOW,
            not_after=NOW + 36_500 * DAY, public_key=subject_key.public)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.validity_days == pytest.approx(36_500)
