"""Unit tests for TLS stack derivation."""

import pytest

from repro.inspector.stacks import SEVERE_SUITES, StackFactory, stable_rng
from repro.libraries import openssl
from repro.tlslib.ciphersuites import FALLBACK_SCSV, suite_by_code
from repro.tlslib.extensions import ExtensionType
from repro.tlslib.grease import contains_grease
from repro.tlslib.versions import TLSVersion


@pytest.fixture(scope="module")
def factory():
    return StackFactory(seed=77)


@pytest.fixture(scope="module")
def base():
    return openssl.fingerprint_for("1.0.2u")


class TestStableRng:
    def test_same_scope_same_stream(self):
        assert stable_rng(1, "a").random() == stable_rng(1, "a").random()

    def test_different_scope_different_stream(self):
        assert stable_rng(1, "a").random() != stable_rng(1, "b").random()

    def test_insensitive_to_hash_randomization(self):
        # The sequence must be a pure function of the repr, not of hash().
        value = stable_rng("vendor", ("x", 3)).randrange(10**9)
        assert value == stable_rng("vendor", ("x", 3)).randrange(10**9)


class TestDerivation:
    def test_exact_is_verbatim(self, factory, base):
        stack = factory.derive(base, "s", mutation="exact")
        assert stack.ciphersuites == base.ciphersuites
        assert stack.extensions == base.extensions
        assert stack.tls_version == base.tls_version
        assert stack.mutation == "exact"

    def test_extensions_mutation_keeps_suites(self, factory, base):
        stack = factory.derive(base, "s", mutation="extensions",
                               scope=("t1",))
        assert stack.ciphersuites == base.ciphersuites
        assert stack.extensions != base.extensions

    def test_reorder_keeps_set(self, factory, base):
        stack = factory.derive(base, "s", mutation="reorder", scope=("t2",))
        assert set(stack.ciphersuites) == set(base.ciphersuites)

    def test_component_mutation_same_components(self, factory, base):
        stack = factory.derive(base, "s", mutation="component",
                               scope=("t3",), hygiene=0.0)
        base_kx = {suite_by_code(c).kx for c in base.ciphersuites
                   if not suite_by_code(c).is_signaling}
        new_kx = {suite_by_code(c).kx for c in stack.ciphersuites
                  if not suite_by_code(c).is_signaling}
        assert new_kx <= base_kx

    def test_custom_differs(self, factory, base):
        stack = factory.derive(base, "s", mutation="custom", scope=("t4",))
        assert stack.ciphersuites != base.ciphersuites

    def test_unknown_mutation_rejected(self, factory, base):
        with pytest.raises(ValueError):
            factory.derive(base, "s", mutation="nonsense")

    def test_deterministic_per_scope(self, base):
        one = StackFactory(seed=5).derive(base, "s", mutation="custom",
                                          scope=("d1",))
        two = StackFactory(seed=5).derive(base, "s", mutation="custom",
                                          scope=("d1",))
        assert one.ciphersuites == two.ciphersuites

    def test_different_scopes_diverge(self, factory, base):
        one = factory.derive(base, "s", mutation="custom", scope=("a",))
        two = factory.derive(base, "s", mutation="custom", scope=("b",))
        assert one.ciphersuites != two.ciphersuites


class TestTLS13Capping:
    def test_tls13_base_capped_to_12(self, factory):
        base = openssl.fingerprint_for("1.1.1i")
        stack = factory.derive(base, "s", mutation="reorder", scope=("c",))
        assert stack.tls_version == TLSVersion.TLS_1_2
        assert not any(suite_by_code(c).kx == "TLS13"
                       for c in stack.ciphersuites)
        assert int(ExtensionType.KEY_SHARE) not in stack.extensions


class TestKnobs:
    def test_fallback_scsv(self, factory, base):
        stack = factory.derive(base, "s", mutation="reorder",
                               scope=("f",), fallback_scsv=True)
        assert FALLBACK_SCSV in stack.ciphersuites

    def test_ocsp_extension(self, factory, base):
        stack = factory.derive(base, "s", mutation="reorder",
                               scope=("o",), ocsp=True)
        assert int(ExtensionType.STATUS_REQUEST) in stack.extensions

    def test_grease(self, factory, base):
        stack = factory.derive(base, "s", mutation="reorder",
                               scope=("g",), grease=True)
        assert contains_grease(stack.extensions)

    def test_version_override(self, factory, base):
        stack = factory.derive(base, "s", mutation="reorder",
                               scope=("v",),
                               version_override=TLSVersion.SSL_3_0)
        assert stack.tls_version == TLSVersion.SSL_3_0


class TestHygiene:
    def test_high_hygiene_strips_vulnerable(self, factory, base):
        stack = factory.derive(base, "s", mutation="custom",
                               scope=("h1",), hygiene=0.95)
        for code in stack.ciphersuites:
            assert not suite_by_code(code).vulnerable_components()

    def test_low_hygiene_without_allow_severe_adds_nothing_severe(
            self, factory, base):
        for i in range(20):
            stack = factory.derive(base, "s", mutation="custom",
                                   scope=("h2", i), hygiene=0.05)
            assert not any(code in SEVERE_SUITES
                           for code in stack.ciphersuites)

    def test_allow_severe_sometimes_adds(self, factory, base):
        added = 0
        for i in range(60):
            stack = factory.derive(base, "s", mutation="custom",
                                   scope=("h3", i), hygiene=0.05,
                                   allow_severe=True)
            if any(code in SEVERE_SUITES for code in stack.ciphersuites):
                added += 1
        assert 0 < added < 40

    def test_never_empties_list(self, factory):
        # A base made purely of vulnerable suites survives max hygiene.
        from repro.libraries.base import LibraryFingerprint
        base = LibraryFingerprint(
            library="X", version="1", tls_version=TLSVersion.TLS_1_2,
            ciphersuites=(0x000A, 0x0005), extensions=(0,))
        stack = factory.derive(base, "s", mutation="similar",
                               scope=("h4",), hygiene=0.95)
        assert stack.ciphersuites


class TestSimilarize:
    def test_collapses_key_lengths(self, factory, base):
        stack = factory.derive(base, "s", mutation="similar", scope=("s1",),
                               hygiene=0.0)
        names = {suite_by_code(c).name for c in stack.ciphersuites}
        # After similarizing, AES_128_CBC_SHA and AES_256_CBC_SHA never
        # coexist for the same kx.
        for name in names:
            if "AES_128_CBC_SHA" in name and name.endswith("AES_128_CBC_SHA"):
                sibling = name.replace("AES_128_CBC_SHA", "AES_256_CBC_SHA")
                assert sibling not in names
