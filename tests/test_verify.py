"""Tests for the differential conformance harness (``repro.verify``).

Covers the canonical-JSON encoding, golden-baseline record/check round
trips (including a deliberately perturbed analysis caught with the
correct first divergent node named), the execution-mode equivalence
matrix (real reduced grid + failure reporting), the paper-invariant
checker, and the ``repro verify`` CLI against the committed baseline.
"""

import dataclasses
import enum
import json

import pytest

from repro.cli import DEFAULT_BASELINE, main
from repro.config import StudyConfig
from repro.study import Study
from repro.verify import (EquivalenceMatrix, ExecutionMode, Invariant,
                          ModeResult, PAPER_INVARIANTS, VOLATILE_NODES,
                          canonical_bytes, canonicalize, check_baseline,
                          check_invariants, compare_results, digest,
                          first_divergence, invariant_summary,
                          load_baseline, record_baseline,
                          render_invariants, run_and_snapshot)


@pytest.fixture(scope="module")
def snapshot_run(study):
    """One full pipeline run with snapshots, shared by this module."""
    return run_and_snapshot(study)


@pytest.fixture(scope="module")
def results(snapshot_run):
    return snapshot_run[0]


@pytest.fixture(scope="module")
def snapshots(snapshot_run):
    return snapshot_run[1]


# --- canonical JSON ------------------------------------------------------------------


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass
class Point:
    x: int
    y: tuple


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(True) is True
        assert canonicalize(7) == 7
        assert canonicalize(1.5) == 1.5
        assert canonicalize("sni") == "sni"

    def test_containers_normalized(self):
        assert canonicalize((1, 2)) == [1, 2]
        assert canonicalize({3, 1, 2}) == {"__set__": [1, 2, 3]}
        # dict entries come out sorted regardless of insertion order.
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]

    def test_non_string_dict_keys_are_encoded(self):
        tree_a = canonicalize({(1, "x"): "v", (0, "y"): "w"})
        tree_b = canonicalize({(0, "y"): "w", (1, "x"): "v"})
        assert tree_a == tree_b
        assert canonical_bytes(tree_a) == canonical_bytes(tree_b)

    def test_bytes_inline_and_hashed(self):
        assert canonicalize(b"ab") == {"__bytes__": "6162"}
        folded = canonicalize(b"\x00" * 1000)
        assert folded["length"] == 1000
        assert "__bytes_sha256__" in folded

    def test_enum_and_dataclass(self):
        assert canonicalize(Color.RED) == {"__enum__": "Color",
                                           "name": "RED"}
        folded = canonicalize(Point(x=1, y=(2, 3)))
        assert folded == {"__dataclass__": "Point",
                          "fields": {"x": 1, "y": [2, 3]}}

    def test_plain_object_uses_sorted_state(self):
        class Box:
            def __init__(self):
                self.b = 2
                self.a = 1
        folded = canonicalize(Box())
        assert folded["__object__"] == "Box"
        assert list(folded["fields"]) == ["a", "b"]

    def test_volatile_keys_scrubbed(self):
        fast = {"probes": 9, "wall_seconds": 0.1}
        slow = {"probes": 9, "wall_seconds": 87.3}
        assert digest(fast) == digest(slow)
        assert canonicalize(fast)["wall_seconds"] == "<volatile>"

    def test_nonfinite_floats_encode(self):
        tree = canonicalize({"nan": float("nan"),
                             "inf": float("inf")})
        assert tree["nan"] == {"__float__": "nan"}
        canonical_bytes(tree)  # must not raise (allow_nan is off)

    def test_cycles_terminate(self):
        class Node:
            pass
        node = Node()
        node.self = node
        folded = canonicalize(node)
        assert folded["fields"]["self"] == {"__cycle__": "Node"}

    def test_equal_values_equal_digests(self):
        assert digest({"a": (1, 2)}) == digest({"a": [1, 2]})
        assert digest({"a": 1}) != digest({"a": 2})


class TestFirstDivergence:
    def test_equal_trees_no_divergence(self):
        tree = {"a": [1, {"b": 2}]}
        assert first_divergence(tree, tree) is None

    def test_nested_path_named(self):
        path, detail = first_divergence({"a": {"b": [1, 2]}},
                                        {"a": {"b": [1, 3]}})
        assert path == "$.a.b[1]"
        assert "2 != 3" in detail

    def test_first_means_sorted_key_order(self):
        path, _detail = first_divergence({"a": 1, "z": 1},
                                         {"a": 2, "z": 2})
        assert path == "$.a"

    def test_missing_and_unexpected_keys(self):
        path, detail = first_divergence({"a": 1}, {})
        assert path == "$.a" and "missing" in detail
        path, detail = first_divergence({}, {"a": 1})
        assert path == "$.a" and "unexpected" in detail

    def test_length_change(self):
        path, detail = first_divergence([1, 2], [1, 2, 3])
        assert path == "$[2]" and "length changed" in detail

    def test_type_change(self):
        _path, detail = first_divergence({"a": 1}, {"a": "1"})
        assert "type changed" in detail


# --- golden baselines ----------------------------------------------------------------


class TestBaselineRoundTrip:
    def test_record_then_check_passes(self, tmp_path, study, snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        report = check_baseline(study, path, snapshots=snapshots)
        assert report.ok
        assert report.first_divergent_node is None
        assert report.nodes_checked == len(
            [n for n in snapshots if n not in VOLATILE_NODES])
        assert "conformance OK" in report.render()

    def test_volatile_nodes_recorded_but_not_compared(self, tmp_path,
                                                      study, snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        payload = load_baseline(path)
        assert "analysis.server.probe_stats" in payload["nodes"]
        perturbed = dict(snapshots)
        perturbed["analysis.server.probe_stats"] = {"attempts": -1}
        report = check_baseline(study, path, snapshots=perturbed)
        assert report.ok

    def test_perturbed_snapshot_names_node_and_path(self, tmp_path,
                                                    study, snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        perturbed = dict(snapshots)
        tree = json.loads(json.dumps(
            perturbed["analysis.client.doc_vendor"]))
        first_key = sorted(tree)[0]
        tree[first_key] = 99.0
        perturbed["analysis.client.doc_vendor"] = tree
        report = check_baseline(study, path, snapshots=perturbed)
        assert not report.ok
        assert report.first_divergent_node == \
            "analysis.client.doc_vendor"
        [entry] = report.divergences
        assert entry.path == f"$.{first_key}"
        rendered = report.render()
        assert "analysis.client.doc_vendor" in rendered
        assert "re-record" in rendered

    def test_monkeypatched_analysis_caught_first_divergent(
            self, tmp_path, study, snapshots, monkeypatch):
        # The acceptance demo: mutate a real analysis function and show
        # a full re-run fails with the divergent node named.
        from repro.core import customization
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        original = customization.degree_distribution

        def perturbed(dataset):
            distribution = dict(original(dataset))
            distribution["tampered"] = 1
            return distribution
        monkeypatch.setattr(customization, "degree_distribution",
                            perturbed)
        report = check_baseline(study, path)
        assert not report.ok
        assert report.first_divergent_node == \
            "analysis.client.degree_distribution"
        assert report.to_json()["first_divergent_node"] == \
            "analysis.client.degree_distribution"

    def test_config_mismatch_is_an_error_not_a_divergence(
            self, tmp_path, study, snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        other = Study(StudyConfig(seed=999))  # lazy: nothing is built
        with pytest.raises(ValueError, match="different config|record"):
            check_baseline(other, path, snapshots=snapshots)

    def test_version_mismatch_warns_but_compares(self, tmp_path, study,
                                                 snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        payload = json.loads(path.read_text())
        payload["version"] = "0.0.1"
        path.write_text(json.dumps(payload))
        report = check_baseline(study, path, snapshots=snapshots)
        assert report.ok
        assert any("0.0.1" in warning for warning in report.warnings)

    def test_unreadable_or_wrong_format_raises(self, tmp_path, study,
                                               snapshots):
        with pytest.raises(ValueError, match="cannot read"):
            check_baseline(study, tmp_path / "absent.json",
                           snapshots=snapshots)
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            check_baseline(study, garbled, snapshots=snapshots)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="format"):
            check_baseline(study, wrong, snapshots=snapshots)

    def test_large_nodes_stored_digest_only(self, tmp_path, study,
                                            snapshots):
        path = record_baseline(study, tmp_path / "baseline.json",
                               snapshots=snapshots)
        payload = load_baseline(path)
        capture = payload["nodes"]["artifact.capture"]
        assert "snapshot" not in capture
        assert capture["snapshot_bytes"] > 0
        small = payload["nodes"]["analysis.client.versions"]
        assert "snapshot" in small


# --- equivalence matrix --------------------------------------------------------------


def _fake_result(name, digests, jobs=1):
    return ModeResult(mode=ExecutionMode(name, jobs=jobs),
                      node_digests=dict(digests))


class TestMatrixReporting:
    def test_identical_modes_are_equivalent(self):
        digests = {"analysis.client.matching": "aa",
                   "analysis.server.survey": "bb"}
        report = compare_results([_fake_result("serial", digests),
                                  _fake_result("jobs4", digests, 4)])
        assert report.ok
        assert "equivalent" in report.render()

    def test_mismatch_names_first_node_in_paper_order(self):
        base = {"analysis.client.matching": "aa",
                "analysis.client.versions": "cc",
                "analysis.server.survey": "bb"}
        broken = dict(base, **{"analysis.client.versions": "XX",
                               "analysis.server.survey": "YY"})
        report = compare_results([_fake_result("serial", base),
                                  _fake_result("jobs4", broken, 4)])
        assert not report.ok
        mode_a, mode_b, node, dig_a, dig_b = report.first_mismatch
        assert (mode_a, mode_b) == ("serial", "jobs4")
        # versions precedes survey in paper order, so it is first even
        # though survey sorts earlier alphabetically.
        assert node == "analysis.client.versions"
        assert (dig_a, dig_b) == ("cc", "XX")
        assert "NOT equivalent" in report.render()
        assert report.to_json()["mismatches"][0]["node"] == node

    def test_volatile_nodes_ignored(self):
        base = {"analysis.client.matching": "aa",
                "analysis.server.probe_stats": "t1"}
        other = dict(base, **{"analysis.server.probe_stats": "t2"})
        report = compare_results([_fake_result("serial", base),
                                  _fake_result("warm", other)])
        assert report.ok

    def test_missing_node_reported(self):
        report = compare_results([
            _fake_result("serial", {"analysis.client.matching": "aa"}),
            _fake_result("warm", {})])
        assert not report.ok
        assert report.first_mismatch[4] == "<absent>"


class TestMatrixExecution:
    def test_serial_parallel_cold_warm_equivalent(self, study,
                                                  tmp_path):
        # The acceptance grid: serial vs --jobs and cold vs warm cache
        # must be byte-identical for the default config.
        matrix = EquivalenceMatrix(
            base_config=study.config,
            modes=(ExecutionMode("serial"),
                   ExecutionMode("jobs2", jobs=2),
                   ExecutionMode("cache-cold", cache="cold"),
                   ExecutionMode("cache-warm", cache="warm")),
            workdir=str(tmp_path))
        report = matrix.run()
        assert report.ok, report.render()
        assert report.mode_names() == ["serial", "jobs2", "cache-cold",
                                       "cache-warm"]
        # Every mode reported a digest for every analysis node.
        counts = {len(result.comparable_digests())
                  for result in report.results}
        assert len(counts) == 1 and counts.pop() > 20

    def test_sketch_mode_digest_identical_to_serial(self, study,
                                                    tmp_path):
        # The repro.match proof obligation: sketch-pruned candidate
        # generation must never change any analysis node's digest.
        from repro.match import active_mode
        matrix = EquivalenceMatrix(
            base_config=study.config,
            modes=(ExecutionMode("serial"),
                   ExecutionMode("sketch", match_mode="sketch")),
            workdir=str(tmp_path))
        report = matrix.run()
        assert report.ok, report.render()
        assert active_mode() == "exact"  # mode restored after the run
        serial, sketch = report.results
        assert serial.comparable_digests() == \
            sketch.comparable_digests()


# --- paper invariants ----------------------------------------------------------------


class TestInvariants:
    def test_all_paper_invariants_hold(self, study, results):
        summary = invariant_summary(study, results)
        assert summary["ok"], render_invariants(summary)
        names = [check["name"] for check in summary["checks"]]
        assert "match-rate" in names
        assert "corpus-size" in names
        assert "sni-count" in names

    def test_match_rate_near_paper(self, study, results):
        [check] = [c for c in check_invariants(study, results)
                   if c["name"] == "match-rate"]
        assert check["ok"]
        assert 0.015 <= check["observed"] <= 0.04

    def test_failing_invariant_reported_with_observed(self, study,
                                                      results):
        strict = Invariant(
            "impossible", expected="the moon on a stick",
            check=lambda s, r: len(s.corpus),
            accept=lambda n: n == 0)
        summary = invariant_summary(study, results,
                                    invariants=(strict,))
        assert not summary["ok"]
        [check] = summary["checks"]
        assert check["observed"] == 6891
        assert "FAIL" in render_invariants(summary)

    def test_crashing_invariant_fails_closed(self, study, results):
        broken = Invariant(
            "broken", expected="n/a",
            check=lambda s, r: r["client"]["no_such_node"],
            accept=lambda v: True)
        [check] = check_invariants(study, results,
                                   invariants=(broken,))
        assert not check["ok"]
        assert "KeyError" in check["observed"]

    def test_summary_lands_in_manifest(self, study, results):
        from repro.obs.manifest import RunManifest
        summary = invariant_summary(study, results)
        manifest = RunManifest.from_run(
            command="verify", config=study.config, obs_ctx=None,
            invariants=summary)
        payload = manifest.to_json()
        assert payload["invariants"]["ok"] is True
        round_tripped = RunManifest.from_json(payload)
        assert round_tripped.invariants == summary


# --- the verify CLI ------------------------------------------------------------------


class TestVerifyCLI:
    def test_check_against_committed_baseline(self, tmp_path, study,
                                              capsys):
        # The acceptance criterion: a fresh run must match the baseline
        # committed in the repository.
        report_path = tmp_path / "verify_report.json"
        assert main(["verify", "check",
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "conformance OK" in out
        assert "all invariants hold" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["invariants"]["ok"] is True
        manifest = json.loads(
            (tmp_path / "verify_report.json.manifest.json").read_text())
        assert manifest["invariants"]["ok"] is True

    def test_record_and_check_custom_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "golden.json"
        assert main(["verify", "record",
                     "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main(["verify", "check",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "recorded golden baseline" in out

    def test_check_missing_baseline_exits_2(self, tmp_path, capsys):
        assert main(["verify", "check",
                     "--baseline", str(tmp_path / "none.json")]) == 2
        assert "verify check" in capsys.readouterr().err

    def test_invariants_command(self, capsys):
        assert main(["verify", "invariants"]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["verify", "check"])
        assert args.baseline == DEFAULT_BASELINE
        assert args.report is None
        assert args.jobs == 1
