"""Tests for the artifact store, the analysis scheduler, and caching CLI.

Covers the ``repro.store`` contract: content-addressed round trips,
corruption/partial-write recovery, version-mismatch invalidation,
scheduler determinism at any ``jobs`` value, ``--no-cache`` bypass, and
the probe → report CLI round trip reusing the certificate artifact.
"""

import json
import pickle

import pytest

from repro.config import StudyConfig
from repro.core import pipeline
from repro.core.report import render_report
from repro.obs.manifest import RunManifest, manifest_path_for
from repro.store import MISS, ArtifactStore
from repro.store.scheduler import AnalysisScheduler, AnalysisSpec
from repro.study import Study, get_study


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture
def config():
    return StudyConfig()


class TestArtifactStore:
    def test_round_trip(self, store, config):
        value = {"rows": [1, 2, 3], "label": "survey"}
        assert store.get(config, "survey") is MISS
        path = store.put(config, "survey", value)
        assert path is not None and path.is_file()
        assert store.get(config, "survey") == value
        assert store.hit_stages == ["survey"]
        assert store.miss_stages == ["survey"]

    def test_key_separates_stages_and_configs(self, store, config):
        other = config.with_seed(7)
        assert store.key(config, "a") != store.key(config, "b")
        assert store.key(config, "a") != store.key(other, "a")

    def test_artifact_digest_ignores_concurrency(self, config):
        parallel = StudyConfig(probe_jobs=8)
        assert config.digest() != parallel.digest()
        assert config.artifact_digest() == parallel.artifact_digest()

    def test_artifact_digest_tracks_semantics(self, config):
        from repro.probing.engine import RetryPolicy
        assert config.artifact_digest() != \
            config.with_seed(7).artifact_digest()
        assert config.artifact_digest() != StudyConfig(
            retry=RetryPolicy(max_attempts=5)).artifact_digest()
        assert config.artifact_digest() != StudyConfig(
            trust_stores=("mozilla",)).artifact_digest()

    def test_trust_store_permutations_digest_equal(self, config):
        permuted = StudyConfig(
            trust_stores=("apple", "mozilla", "microsoft"))
        assert permuted == config
        assert permuted.digest() == config.digest()
        assert permuted.artifact_digest() == config.artifact_digest()

    def test_corrupt_payload_is_a_miss_and_deleted(self, store, config):
        path = store.put(config, "stage", [1, 2, 3])
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload bit
        path.write_bytes(bytes(blob))
        assert store.get(config, "stage") is MISS
        assert not path.exists()

    def test_truncated_entry_is_a_miss(self, store, config):
        path = store.put(config, "stage", list(range(100)))
        path.write_bytes(path.read_bytes()[:40])
        assert store.get(config, "stage") is MISS
        assert not path.exists()

    def test_partial_write_never_lands_under_live_key(self, store,
                                                      config):
        path = store.put(config, "stage", "value")
        # A torn writer leaves only a temp file; the entry stays intact.
        stray = path.parent / ".tmp-torn"
        stray.write_bytes(b"garbage")
        assert store.get(config, "stage") == "value"
        assert store.clear() >= 1
        assert not stray.exists()

    def test_version_mismatch_invalidates(self, tmp_path, config):
        old = ArtifactStore(tmp_path / "cache", version="0.9.0")
        new = ArtifactStore(tmp_path / "cache", version="1.0.0")
        old.put(config, "stage", "old-bytes")
        assert new.get(config, "stage") is MISS
        # The stale entry is still visible to maintenance commands.
        stats = new.stats()
        assert stats["entries"] == 1
        assert stats["by_version"] == {"0.9.0": 1}

    def test_unpicklable_value_is_skipped(self, store, config):
        assert store.put(config, "stage", lambda: None) is None
        assert store.error_stages == ["stage"]
        assert store.get(config, "stage") is MISS

    def test_stats_and_clear(self, store, config):
        store.put(config, "capture", b"x" * 10)
        store.put(config, "certificates", b"y" * 10)
        stats = store.stats()
        assert stats["entries"] == 2
        assert set(stats["by_stage"]) == {"capture", "certificates"}
        assert stats["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0

    def test_get_or_compute(self, store, config):
        calls = []
        value = store.get_or_compute(config, "stage",
                                     lambda: calls.append(1) or "v")
        assert value == "v" and calls == [1]
        value = store.get_or_compute(config, "stage",
                                     lambda: calls.append(2) or "v")
        assert value == "v" and calls == [1]

    def test_provenance_shape(self, store, config):
        store.get(config, "a")
        store.put(config, "a", 1)
        store.get(config, "a")
        provenance = store.provenance()
        assert provenance["hits"] == ["a"]
        assert provenance["misses"] == ["a"]
        assert provenance["writes"] == ["a"]
        assert provenance["dir"] == str(store.root)


class TestScheduler:
    SPECS = (
        AnalysisSpec("base", inputs=("x",), fn=lambda r: r["x"] + 1),
        AnalysisSpec("double", inputs=("base",),
                     fn=lambda r: r["base"] * 2),
        AnalysisSpec("pair", inputs=("base", "double"),
                     provides=("lo", "hi"),
                     fn=lambda r: (r["base"], r["double"])),
        AnalysisSpec("tail", inputs=("hi",), fn=lambda r: r["hi"] + 5),
    )

    def test_serial_and_pooled_identical(self):
        serial = AnalysisScheduler(self.SPECS, side="t").run({"x": 10})
        pooled = AnalysisScheduler(self.SPECS, side="t",
                                   jobs=4).run({"x": 10})
        assert serial == pooled
        assert list(serial) == ["base", "double", "lo", "hi", "tail"]
        assert pickle.dumps(serial) == pickle.dumps(pooled)
        assert serial == {"base": 11, "double": 22, "lo": 11, "hi": 22,
                          "tail": 27}

    def test_lazy_resources_untouched_when_cached(self, store, config):
        touched = []
        specs = (AnalysisSpec("node", inputs=("expensive",),
                              fn=lambda r: r["expensive"] * 2),)
        resources = {"expensive": lambda: touched.append(1) or 21}
        scheduler = AnalysisScheduler(specs, side="t", store=store,
                                      config=config)
        assert scheduler.run(resources) == {"node": 42}
        assert touched == [1]
        # Warm: the cached node never resolves the expensive resource.
        touched.clear()
        assert scheduler.run(resources) == {"node": 42}
        assert touched == []

    def test_cycle_detected(self):
        specs = (AnalysisSpec("a", inputs=("b",), fn=lambda r: 1),
                 AnalysisSpec("b", inputs=("a",), fn=lambda r: 2))
        with pytest.raises(ValueError, match="cycle"):
            AnalysisScheduler(specs, side="t").run({})

    def test_duplicate_provides_rejected(self):
        specs = (AnalysisSpec("a", fn=lambda r: 1),
                 AnalysisSpec("b", provides=("a",), fn=lambda r: 2))
        with pytest.raises(ValueError, match="provided twice"):
            AnalysisScheduler(specs, side="t")

    def test_node_error_propagates(self):
        def boom(_r):
            raise RuntimeError("node failed")
        specs = (AnalysisSpec("a", fn=boom),)
        for jobs in (1, 3):
            with pytest.raises(RuntimeError, match="node failed"):
                AnalysisScheduler(specs, side="t", jobs=jobs).run({})


class TestPipelineDeterminism:
    # One full-study reference per session; scheduled/cached runs must
    # render byte-identically to it.

    @pytest.fixture(scope="class")
    def reference(self, study):
        results = pipeline.run_full_study(study, jobs=1)
        return results, render_report(results, seed=study.seed,
                                      generated_at=0)

    def test_scheduled_matches_serial(self, study, reference):
        _results, reference_text = reference
        scheduled = pipeline.run_full_study(study, jobs=4)
        assert render_report(scheduled, seed=study.seed,
                             generated_at=0) == reference_text

    def test_cold_then_warm_cache_match_serial(self, tmp_path, study,
                                               reference):
        _results, reference_text = reference
        store = ArtifactStore(tmp_path / "cache")
        cold = pipeline.run_full_study(study, jobs=2, store=store)
        assert render_report(cold, seed=study.seed,
                             generated_at=0) == reference_text
        assert store.written_stages  # cold run populated the cache
        warm = pipeline.run_full_study(study, jobs=2, store=store)
        assert render_report(warm, seed=study.seed,
                             generated_at=0) == reference_text
        assert len(store.hit_stages) >= len(pipeline.CLIENT_ANALYSES)

    def test_registry_covers_serial_result_keys(self, reference):
        results, _text = reference
        client_keys = [key for spec in pipeline.CLIENT_ANALYSES
                       for key in spec.provides]
        server_keys = [key for spec in pipeline.SERVER_ANALYSES
                       for key in spec.provides]
        assert list(results["client"]) == client_keys
        assert list(results["server"]) == server_keys


class TestStoreBackedStudy:
    def test_certificates_round_trip_between_studies(self, tmp_path,
                                                     study,
                                                     certificates):
        store = ArtifactStore(tmp_path / "cache")
        store.put(study.config, "certificates", certificates)
        fresh = Study(StudyConfig(), store=store)
        cached = fresh.certificates
        assert cached.fingerprint() == certificates.fingerprint()
        assert store.hit_stages == ["certificates"]
        # The frozen stats snapshot answers the same queries.
        assert cached.stats.to_json() == certificates.stats.to_json()
        assert cached.stats.summary() == certificates.stats.summary()

    def test_dataset_round_trip(self, tmp_path, study, dataset):
        store = ArtifactStore(tmp_path / "cache")
        store.put(study.config, "capture", dataset)
        fresh = Study(StudyConfig(), store=store)
        assert len(fresh.dataset.records) == len(dataset.records)
        assert fresh.dataset.records[0] == dataset.records[0]


def _fresh_cli_study():
    """Simulate a new process: drop the per-config Study memo."""
    from repro import study as study_module
    study_module._study_for_config.cache_clear()


class TestCachingCLI:
    def test_probe_then_report_reuses_certificates(self, tmp_path,
                                                   study, capsys):
        from repro.cli import main
        cache = tmp_path / "cache"
        probe_out = tmp_path / "certs.jsonl"
        report_out = tmp_path / "report.md"
        _fresh_cli_study()
        assert main(["probe", "-o", str(probe_out),
                     "--cache-dir", str(cache)]) == 0
        probe_manifest = RunManifest.load(
            manifest_path_for(str(probe_out)))
        assert "certificates" in probe_manifest.cache["writes"]
        _fresh_cli_study()
        assert main(["report", "-o", str(report_out),
                     "--cache-dir", str(cache)]) == 0
        manifest = RunManifest.load(manifest_path_for(str(report_out)))
        assert "certificates" in manifest.cache["hits"]
        assert len(manifest.cache["hits"]) > 0
        hits = manifest.metrics["families"]["store.hits"]
        assert sum(hits.values()) > 0
        assert report_out.read_text().startswith("# IoT TLS")

    def test_warm_report_identical_and_all_hits(self, tmp_path, study,
                                                capsys):
        from repro.cli import main
        cache = tmp_path / "cache"
        out_cold = tmp_path / "cold.md"
        out_warm = tmp_path / "warm.md"
        _fresh_cli_study()
        assert main(["report", "-o", str(out_cold),
                     "--cache-dir", str(cache)]) == 0
        _fresh_cli_study()
        assert main(["report", "-o", str(out_warm),
                     "--cache-dir", str(cache)]) == 0
        assert out_cold.read_bytes() == out_warm.read_bytes()
        manifest = RunManifest.load(manifest_path_for(str(out_warm)))
        # Every analysis stage was served from the cache.
        analysis_hits = [stage for stage in manifest.cache["hits"]
                         if stage.startswith("analysis.")]
        assert len(analysis_hits) == len(pipeline.CLIENT_ANALYSES) + \
            len(pipeline.SERVER_ANALYSES)
        assert manifest.cache["misses"] == []

    def test_no_cache_bypasses_store(self, tmp_path, study, capsys,
                                     monkeypatch):
        from repro.cli import main
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "--no-cache"]) == 0
        assert not cache.exists()
        manifest = RunManifest.load(manifest_path_for(str(out)))
        assert manifest.cache == {}

    def test_cache_stats_and_clear_commands(self, tmp_path, study,
                                            capsys):
        from repro.cli import main
        cache = tmp_path / "cache"
        store = ArtifactStore(cache)
        store.put(StudyConfig(), "capture", {"rows": [1]})
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        text = capsys.readouterr().out
        assert "1 entries" in text and "capture" in text
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_without_dir_is_an_error(self, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2

    def test_cache_clear_without_dir_is_an_error(self, capsys,
                                                 monkeypatch):
        from repro.cli import main
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "clear"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_cache_stats_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir",
                     str(missing)]) == 0
        assert "0 entries" in capsys.readouterr().out
        assert not missing.exists()  # stats must not create the dir

    def test_cache_stats_on_empty_dir(self, tmp_path, capsys):
        from repro.cli import main
        empty = tmp_path / "cache"
        empty.mkdir()
        assert main(["cache", "stats", "--cache-dir", str(empty)]) == 0
        text = capsys.readouterr().out
        assert "0 entries" in text and "0.0 MB" in text

    def test_cache_clear_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["cache", "clear", "--cache-dir",
                     str(tmp_path / "never-created")]) == 0
        assert "removed 0 entries" in capsys.readouterr().out

    def test_cache_clear_removes_corrupted_entries(self, tmp_path,
                                                   capsys):
        from repro.cli import main
        cache = tmp_path / "cache"
        store = ArtifactStore(cache)
        store.put(StudyConfig(), "capture", {"rows": [1]})
        shard = cache / "zz"
        shard.mkdir()
        (shard / "deadbeef.art").write_bytes(b"\x00garbage, no magic")
        (shard / "torn.art").write_bytes(b"repro-artifact/1\n{trunc")
        (shard / ".tmp-123").write_bytes(b"crashed writer leftovers")
        # stats counts only readable entries; clear removes everything.
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert list(cache.glob("*/*.art")) == []
        assert list(cache.glob("*/.tmp-*")) == []
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_config_first_flags_on_every_study_command(self):
        from repro.cli import build_parser
        parser = build_parser()
        for command in ("generate", "probe", "report", "audit",
                        "figures", "whatif"):
            argv = [command]
            if command == "audit":
                argv.append("Tuya")
            if command == "whatif":
                argv.append("all")
            args = parser.parse_args(argv)
            assert args.seed == 2023
            assert args.jobs == 1
            assert args.retries == 3
            assert args.trust_stores == "mozilla,apple,microsoft"
            assert args.cache_dir is None and args.no_cache is False

    def test_config_from_args_builds_full_config(self):
        from repro.cli import build_parser, config_from_args
        args = build_parser().parse_args(
            ["report", "--seed", "7", "--jobs", "3", "--retries", "5",
             "--trust-stores", "apple,mozilla"])
        config = config_from_args(args)
        assert config.seed == 7
        assert config.probe_jobs == 3
        assert config.retry.max_attempts == 5
        assert config.trust_stores == ("apple", "mozilla")

    def test_invalid_config_exits_2(self, capsys):
        from repro.cli import main
        assert main(["report", "--trust-stores", "netscape",
                     "-o", "-"]) == 2
        assert "netscape" in capsys.readouterr().err


class TestTrustStoreNormalization:
    def test_permuted_major_stores_use_union_store(self, study):
        permuted = get_study(StudyConfig(
            trust_stores=("apple", "mozilla", "microsoft")))
        # Equal configs memoize together (order is normalized away).
        assert permuted is get_study(StudyConfig())
        assert permuted.trust_store is study.ecosystem.union_store

    def test_fresh_study_takes_fast_branch(self, study):
        fresh = Study(StudyConfig(
            trust_stores=("microsoft", "mozilla", "apple")))
        fresh._network = study.network
        fresh._world = study.world
        assert fresh.trust_store is study.ecosystem.union_store


class TestManifestCacheField:
    def test_manifest_round_trips_cache(self, tmp_path):
        manifest = RunManifest(
            command="report", seed=7, config_digest="abc",
            version="1.0.0", started_at=0.0, finished_at=1.0,
            cache={"dir": "/c", "hits": ["capture"], "misses": [],
                   "writes": [], "errors": [], "version": "1.0.0"})
        path = tmp_path / "m.json"
        manifest.write(str(path))
        loaded = RunManifest.load(str(path))
        assert loaded.cache["hits"] == ["capture"]

    def test_legacy_manifest_without_cache_loads(self, tmp_path):
        payload = RunManifest(
            command="probe", seed=1, config_digest="d",
            version="1.0.0", started_at=0.0, finished_at=1.0).to_json()
        payload.pop("cache")
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        assert RunManifest.load(str(path)).cache == {}
