"""Tests for the ``repro serve`` HTTP/JSON query API."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.ingest import (Ingester, PlainText, QueryService, make_server,
                          run_load)
from repro.obs.slo import STATES
from repro.obs.telemetry import parse_prometheus
from repro.schema import SCHEMA_VERSION


@pytest.fixture(scope="module")
def service(study):
    return QueryService(study, Ingester(study)).warm()


@pytest.fixture(scope="module")
def server_url(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


class TestEnvelopes:
    def test_success_envelope_versioned(self, service):
        status, payload = service.handle("/healthz")
        assert status == 200
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["api_version"] == "v1"
        assert payload["endpoint"] == "/healthz"
        assert payload["data"]["status"] == "ok"

    def test_error_envelope_versioned(self, service):
        status, payload = service.handle("/no/such/route")
        assert status == 404
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["error"]["status"] == 404
        assert "unknown route" in payload["error"]["message"]


class TestEndpoints:
    def test_healthz(self, service):
        _, payload = service.handle("/healthz")
        data = payload["data"]
        assert data["finished"] is True
        assert data["windows_ingested"] == data["windows_total"]

    def test_metrics(self, service):
        status, payload = service.handle("/metrics")
        assert status == 200
        assert "metrics" in payload["data"]

    def test_doc_all_vendors(self, service, dataset):
        _, payload = service.handle("/v1/doc")
        doc = payload["data"]["doc_vendor"]
        assert set(doc) == set(dataset.vendor_names())
        assert all(0.0 <= value <= 1.0 for value in doc.values())

    def test_doc_single_vendor(self, service, dataset):
        vendor = dataset.vendor_names()[0]
        _, payload = service.handle("/v1/doc", {"vendor": [vendor]})
        assert payload["data"]["vendor"] == vendor
        assert 0.0 <= payload["data"]["doc_vendor"] <= 1.0

    def test_fingerprint_listing_and_lookup(self, service):
        _, listing = service.handle("/v1/fingerprints",
                                    {"limit": ["5"]})
        assert len(listing["data"]["ids"]) == 5
        fp_id = listing["data"]["ids"][0]
        _, entry = service.handle("/v1/fingerprints", {"id": [fp_id]})
        assert entry["data"]["id"] == fp_id
        assert entry["data"]["vendors"]

    def test_match_rate_in_paper_band(self, service):
        _, payload = service.handle("/v1/match-rate")
        fraction = payload["data"]["matched_fraction"]
        assert 0.015 <= fraction <= 0.04

    def test_issuers_and_vendor_column(self, service, dataset):
        _, payload = service.handle("/v1/issuers")
        assert 0.0 <= payload["data"]["private_leaf_share"] <= 1.0
        vendor = sorted(payload["data"]["matrix"])[0]
        _, column = service.handle("/v1/issuers", {"vendor": [vendor]})
        shares = column["data"]["issuers"]
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_verdict_summary_and_single_sni(self, service,
                                            certificates):
        _, summary = service.handle("/v1/verdicts")
        assert summary["data"]["verdict_count"] > 0
        sni = sorted(service.verdicts)[0]
        _, verdict = service.handle("/v1/verdicts", {"sni": [sni]})
        assert verdict["data"]["sni"] == sni
        assert "status" in verdict["data"]
        assert "issuer" in verdict["data"]


class TestTelemetryPlane:
    def test_metrics_prom_format_param(self, service):
        with obs.enabled():
            obs.incr("probe.attempts", n=3)
            status, payload = service.handle("/metrics",
                                             {"format": ["prom"]})
        assert status == 200
        assert isinstance(payload, PlainText)
        assert payload.content_type == PlainText.PROMETHEUS
        parsed = parse_prometheus(payload.text)
        assert parsed["metrics"]["repro_probe_attempts_total"][()] == 3

    def test_metrics_accept_header_negotiation(self, service):
        status, payload = service.handle("/metrics",
                                         accept="text/plain")
        assert status == 200
        assert isinstance(payload, PlainText)
        # Explicit JSON (or a browser wildcard) keeps the JSON default.
        for accept in ("application/json, text/plain", "*/*", None):
            status, payload = service.handle("/metrics", accept=accept)
            assert status == 200
            assert isinstance(payload, dict)
            assert "metrics" in payload["data"]

    def test_metrics_format_param_beats_accept(self, service):
        _, payload = service.handle("/metrics", {"format": ["json"]},
                                    accept="text/plain")
        assert isinstance(payload, dict)

    def test_metrics_unknown_format_400(self, service):
        status, payload = service.handle("/metrics",
                                         {"format": ["xml"]})
        assert status == 400
        assert "xml" in payload["error"]["message"]

    def test_slo_endpoint(self, service):
        status, payload = service.handle("/v1/slo")
        assert status == 200
        data = payload["data"]
        assert data["status"] in STATES
        names = [objective["name"] for objective in data["objectives"]]
        assert names == ["query_latency_p99", "error_rate",
                         "ingest_lag"]
        by_name = {o["name"]: o for o in data["objectives"]}
        # The ingester is fully warm, so lag is zero and the SLO holds.
        assert by_name["ingest_lag"]["status"] == "ok"
        assert by_name["ingest_lag"]["samples"] >= 1

    def test_healthz_reports_slo_state(self, service):
        _, payload = service.handle("/healthz")
        data = payload["data"]
        assert data["slo"]["status"] in STATES
        assert set(data["slo"]["objectives"]) == {
            "query_latency_p99", "error_rate", "ingest_lag"}
        assert data["status"] == data["slo"]["status"]

    def test_debug_recent_endpoint(self, service):
        service.handle_request("/healthz")
        _, payload = service.handle("/v1/debug/recent")
        data = payload["data"]
        assert data["capacity"] == service.telemetry.recorder.capacity
        assert data["events_seen"] >= len(data["events"]) >= 1
        assert data["events"][-1]["type"] in ("request", "ingest")
        # seq is monotonic across the returned window.
        seqs = [event["seq"] for event in data["events"]]
        assert seqs == sorted(seqs)

    def test_debug_recent_limit(self, service):
        for _ in range(3):
            service.handle_request("/healthz")
        _, payload = service.handle("/v1/debug/recent",
                                    {"limit": ["2"]})
        assert len(payload["data"]["events"]) == 2
        _, payload = service.handle("/v1/debug/recent", {"limit": ["0"]})
        assert payload["data"]["events"] == []

    def test_debug_recent_limit_validation(self, service):
        status, _ = service.handle("/v1/debug/recent",
                                   {"limit": ["abc"]})
        assert status == 400
        status, _ = service.handle("/v1/debug/recent",
                                   {"limit": ["-1"]})
        assert status == 400

    def test_handle_request_instruments_registry(self, service):
        with obs.enabled() as ctx:
            status, body, content_type = \
                service.handle_request("/v1/doc")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body)["endpoint"] == "/v1/doc"
        snap = ctx.metrics.snapshot()
        assert snap["families"]["http.requests"] == {"2xx": 1}
        assert snap["families"]["http.requests_by_route"] == \
            {"/v1/doc": 1}
        assert sum(snap["histograms"]
                   ["http.latency_ms.v1_doc"].values()) == 1
        assert snap["gauges"]["http.in_flight"] == 0  # closed again

    def test_handle_request_unmatched_path_bounded_label(self, service):
        with obs.enabled() as ctx:
            status, _, _ = service.handle_request("/scanned/by/a/bot")
        assert status == 404
        snap = ctx.metrics.snapshot()
        # One shared label, so scanners cannot grow the namespace.
        assert snap["families"]["http.requests_by_route"] == \
            {"unknown": 1}
        assert snap["families"]["http.requests"] == {"4xx": 1}

    def test_handle_request_prom_body(self, service):
        with obs.enabled():
            obs.incr("probe.attempts")
            status, body, content_type = service.handle_request(
                "/metrics", {"format": ["prom"]})
        assert status == 200
        assert content_type == PlainText.PROMETHEUS
        parse_prometheus(body.decode("utf-8"))


class TestErrorHandling:
    def test_unknown_route_404(self, service):
        status, payload = service.handle("/v2/doc")
        assert status == 404

    def test_unknown_vendor_404(self, service):
        status, payload = service.handle(
            "/v1/doc", {"vendor": ["NoSuchVendor"]})
        assert status == 404
        assert "NoSuchVendor" in payload["error"]["message"]

    def test_unknown_sni_404(self, service):
        status, _ = service.handle("/v1/verdicts",
                                   {"sni": ["no.such.host"]})
        assert status == 404

    def test_unknown_fingerprint_404(self, service):
        status, _ = service.handle("/v1/fingerprints",
                                   {"id": ["ffffffffffffffff"]})
        assert status == 404

    def test_malformed_limit_400(self, service):
        status, payload = service.handle("/v1/fingerprints",
                                         {"limit": ["abc"]})
        assert status == 400
        assert "integer" in payload["error"]["message"]
        status, _ = service.handle("/v1/fingerprints",
                                   {"limit": ["-3"]})
        assert status == 400

    def test_unknown_parameter_400(self, service):
        status, payload = service.handle("/v1/doc", {"bogus": ["1"]})
        assert status == 400
        assert "bogus" in payload["error"]["message"]

    def test_empty_parameter_400(self, service):
        status, _ = service.handle("/v1/doc", {"vendor": [""]})
        assert status == 400

    def test_repeated_parameter_400(self, service):
        status, _ = service.handle("/v1/doc",
                                   {"vendor": ["Acme", "Bolt"]})
        assert status == 400


class TestHttpTransport:
    def test_endpoints_over_http(self, server_url):
        for path in ("/healthz", "/metrics", "/v1/slo",
                     "/v1/debug/recent?limit=5", "/v1/doc",
                     "/v1/fingerprints?limit=3", "/v1/match-rate",
                     "/v1/issuers", "/v1/verdicts"):
            status, payload = get_json(server_url + path)
            assert status == 200
            assert payload["schema_version"] == SCHEMA_VERSION
            assert "data" in payload

    def test_404_json_over_http(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server_url + "/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["status"] == 404

    def test_400_json_over_http(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                server_url + "/v1/fingerprints?limit=zzz")
        assert excinfo.value.code == 400

    def test_prometheus_over_http(self, server_url):
        for target in (server_url + "/metrics?format=prom",
                       urllib.request.Request(
                           server_url + "/metrics",
                           headers={"Accept": "text/plain"})):
            with urllib.request.urlopen(target) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    "text/plain; version=0.0.4; charset=utf-8"
                parse_prometheus(response.read().decode("utf-8"))

    def test_load_generator(self, server_url):
        result = run_load(server_url, requests_per_worker=10,
                          workers=2)
        summary = result.to_json()
        assert summary["requests"] == 20
        assert summary["errors"] == 0
        assert summary["p99_ms"] >= summary["p50_ms"]
