"""Unit tests for distinguished names and host matching."""

import pytest

from repro.x509 import asn1
from repro.x509.names import (
    DistinguishedName,
    certificate_covers_host,
    hostname_matches,
    second_level_domain,
)


class TestDistinguishedName:
    def test_der_roundtrip(self):
        dn = DistinguishedName(common_name="*.roku.com",
                               organization="Roku", country="US")
        decoded = DistinguishedName.from_asn1(asn1.decode(dn.to_der()))
        assert decoded == dn

    def test_minimal_dn(self):
        dn = DistinguishedName(common_name="device.local")
        decoded = DistinguishedName.from_asn1(asn1.decode(dn.to_der()))
        assert decoded.common_name == "device.local"
        assert decoded.organization is None

    def test_str_format(self):
        dn = DistinguishedName(common_name="x", organization="O", country="US")
        assert str(dn) == "C=US, O=O, CN=x"

    def test_missing_cn_rejected(self):
        blob = asn1.encode_sequence()
        with pytest.raises(ValueError):
            DistinguishedName.from_asn1(asn1.decode(blob))


class TestHostnameMatching:
    @pytest.mark.parametrize("pattern,host,expected", [
        ("api.vendor.com", "api.vendor.com", True),
        ("API.Vendor.COM", "api.vendor.com", True),
        ("api.vendor.com", "www.vendor.com", False),
        ("*.vendor.com", "api.vendor.com", True),
        ("*.vendor.com", "a.b.vendor.com", False),   # one label only
        ("*.vendor.com", "vendor.com", False),        # bare domain excluded
        ("a*.vendor.com", "api.vendor.com", False),   # partial wildcard
        ("api.*.com", "api.vendor.com", False),       # non-leftmost wildcard
        ("*.com", "vendor.com", False),               # too broad
        ("", "host", False),
        ("host", "", False),
        ("api.vendor.com.", "api.vendor.com", True),  # trailing dot
    ])
    def test_matching(self, pattern, host, expected):
        assert hostname_matches(pattern, host) is expected


class TestCertificateCoverage:
    def test_san_authoritative(self):
        # With SANs present, the CN is ignored.
        assert certificate_covers_host("cn.example.com",
                                       ["*.other.com"], "api.other.com")
        assert not certificate_covers_host("cn.example.com",
                                           ["*.other.com"], "cn.example.com")

    def test_cn_fallback(self):
        assert certificate_covers_host("host.example.com", [],
                                       "host.example.com")

    def test_no_names(self):
        assert not certificate_covers_host(None, [], "host")


class TestSecondLevelDomain:
    @pytest.mark.parametrize("fqdn,expected", [
        ("api.roku.com", "roku.com"),
        ("roku.com", "roku.com"),
        ("a.b.c.netflix.net", "netflix.net"),
        ("www.pavv.co.kr", "pavv.co.kr"),   # multi-part public suffix
        ("single", "single"),
        ("Cast4.AUDIO", "cast4.audio"),
    ])
    def test_extraction(self, fqdn, expected):
        assert second_level_domain(fqdn) == expected
