"""Tests for the bipartite graph views (Figures 1, 3, 4)."""

import networkx as nx
import pytest

from repro.core import graphs


class TestVendorFingerprintGraph:
    @pytest.fixture(scope="class")
    def graph(self, dataset):
        return graphs.vendor_fingerprint_graph(dataset)

    def test_bipartite_structure(self, graph):
        for node, data in graph.nodes(data=True):
            assert data["bipartite"] in ("vendor", "fingerprint")
        for a, b in graph.edges():
            kinds = {graph.nodes[a]["bipartite"],
                     graph.nodes[b]["bipartite"]}
            assert kinds == {"vendor", "fingerprint"}

    def test_node_counts(self, graph, dataset):
        summary = graphs.graph_summary(graph)
        assert summary["entity_nodes"] == dataset.vendor_count
        assert summary["fingerprint_nodes"] == dataset.fingerprint_count

    def test_edge_count_is_degree_sum(self, graph, dataset):
        expected = sum(dataset.fingerprint_degree(fp)
                       for fp in dataset.fingerprints())
        assert graph.number_of_edges() == expected

    def test_security_attributes(self, graph):
        levels = {data["security"]
                  for _n, data in graph.nodes(data=True)
                  if data.get("bipartite") == "fingerprint"}
        assert "Vulnerable" in levels
        assert levels <= {"Optimal", "Suboptimal", "Vulnerable"}

    def test_vendor_indexes_assigned(self, graph):
        indexes = [data["index"] for _n, data in graph.nodes(data=True)
                   if data.get("bipartite") == "vendor"]
        assert sorted(indexes) == list(range(1, 66))

    def test_mini_graph(self, mini_dataset):
        graph = graphs.vendor_fingerprint_graph(mini_dataset)
        assert graphs.graph_summary(graph)["entity_nodes"] == 2
        assert graphs.graph_summary(graph)["fingerprint_nodes"] == 3
        assert graph.number_of_edges() == 5  # degrees 1+2+2


class TestAmazonFigures:
    def test_type_graph(self, dataset):
        graph = graphs.device_type_fingerprint_graph(dataset, "Amazon")
        types = [n for n, d in graph.nodes(data=True)
                 if d.get("bipartite") == "type"]
        assert len(types) == 9  # Amazon's device-type lines

    def test_exclusive_type_fingerprints(self, dataset):
        exclusive = graphs.exclusive_fingerprints_per_type(dataset,
                                                           "Amazon")
        total = len(dataset.vendor_fingerprints("Amazon"))
        # Figure 3: most Amazon fingerprints tie to a single type.
        assert exclusive > 0.4 * total

    def test_echo_device_graph(self, dataset):
        graph = graphs.device_fingerprint_graph(dataset, "Amazon",
                                                device_type="Echo")
        devices = [n for n, d in graph.nodes(data=True)
                   if d.get("bipartite") == "device"]
        assert len(devices) >= 40  # many Echo units in the population
        assert nx.number_connected_components(graph) >= 1

    def test_device_graph_all_types(self, dataset):
        graph = graphs.device_fingerprint_graph(dataset, "Wyze")
        devices = [n for n, d in graph.nodes(data=True)
                   if d.get("bipartite") == "device"]
        assert len(devices) == 75  # the paper's 75 Wyze cameras
