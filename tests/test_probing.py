"""Unit tests for the probing substrate (authorities, network, prober)."""

import pytest

from repro.core.issuers import leaf_issuer_org
from repro.inspector.timeline import CAPTURE_END, PROBE_TIME
from repro.probing.authorities import (
    NETFLIX_PUBLIC_CHAINED,
    PRIVATE_CAS,
    PUBLIC_CAS,
    AuthorityEcosystem,
)
from repro.probing.network import UNREACHABLE_AFTER, UnreachableError
from repro.probing.prober import Prober
from repro.probing.vantage import VANTAGE_POINTS
from repro.x509.validation import ChainStatus


class TestAuthorityEcosystem:
    def test_33_issuer_organizations(self, study):
        assert len(study.ecosystem.issuer_organizations()) == 33
        assert len(PUBLIC_CAS) == 16
        assert len(PRIVATE_CAS) == 17

    def test_public_private_categorization(self, study):
        ecosystem = study.ecosystem
        assert ecosystem.is_public_trust("DigiCert")
        assert ecosystem.is_public_trust("Amazon")
        assert not ecosystem.is_public_trust("Roku")
        assert not ecosystem.is_public_trust("Netflix")

    def test_union_store_holds_all_public_roots(self, study):
        for ca in study.ecosystem.public.values():
            assert study.ecosystem.union_store.contains(ca.root)

    def test_private_roots_not_in_stores(self, study):
        for ca in study.ecosystem.private.values():
            assert not study.ecosystem.union_store.contains(ca.root)

    def test_netflix_chained_issuer(self, study):
        chained = study.ecosystem.issuer(NETFLIX_PUBLIC_CHAINED)
        leaf, _key = chained.issue_leaf("api.netflix.com", now=PROBE_TIME)
        assert leaf_issuer_org(leaf) == "Netflix"
        # The chain validates against the public VeriSign root.
        report = study.validator().validate(
            chained.chain_for(leaf), at=PROBE_TIME + 86_400,
            hostname="api.netflix.com")
        assert report.status is ChainStatus.OK

    def test_unknown_issuer_rejected(self, study):
        with pytest.raises(KeyError):
            study.ecosystem.issuer("Nonexistent CA")


class TestNetwork:
    def test_all_snis_have_endpoints(self, study, network):
        assert set(network.endpoints) == {s.fqdn for s in
                                          study.world.servers}

    def test_unreachable_hosts_raise_after_cutoff(self, study, network):
        dead = next(s for s in study.world.servers if s.unreachable)
        hello = Prober(network)._hello(dead.fqdn)
        from repro.tlslib.handshake import TLSClient
        flight = TLSClient().first_flight(hello)
        with pytest.raises(UnreachableError):
            network.connect(dead.fqdn, flight, at=PROBE_TIME)
        # The same host still answered during the capture window.
        assert network.connect(dead.fqdn, flight, at=CAPTURE_END)

    def test_cutoff_constant_sane(self):
        assert CAPTURE_END < UNREACHABLE_AFTER < PROBE_TIME

    def test_shared_certificates_identical(self, study, network):
        groups = {}
        for spec in study.world.servers:
            if spec.share:
                groups.setdefault(spec.share, []).append(spec.fqdn)
        shared = [fqdns for fqdns in groups.values() if len(fqdns) > 1]
        assert shared, "expected shared certificate groups"
        for fqdns in shared[:10]:
            prints = {network.endpoint(f).leaf("us").fingerprint()
                      for f in fqdns}
            assert len(prints) == 1

    def test_geo_variants_differ(self, study, network):
        spec = next(s for s in study.world.servers if s.geo_variant)
        endpoint = network.endpoint(spec.fqdn)
        assert endpoint.leaf("us").fingerprint() != \
            endpoint.leaf("eu").fingerprint()

    def test_non_variant_same_everywhere(self, study, network):
        spec = next(s for s in study.world.servers
                    if not s.geo_variant and not s.unreachable)
        endpoint = network.endpoint(spec.fqdn)
        assert endpoint.leaf("us").fingerprint() == \
            endpoint.leaf("asia").fingerprint()

    def test_leaf_covers_host(self, study, network):
        for spec in study.world.reachable_servers()[:40]:
            if spec.cn_mismatch:
                continue
            assert network.endpoint(spec.fqdn).leaf("us").covers_host(
                spec.fqdn), spec.fqdn

    def test_cn_mismatch_leaf_does_not_cover(self, network):
        endpoint = network.endpoint("a2.tuyaus.com")
        assert not endpoint.leaf("us").covers_host("a2.tuyaus.com")

    def test_historical_reissue_same_issuer(self, study, network):
        # Pick a short-lived public certificate and rewind to 2019.
        spec = next(s for s in study.world.reachable_servers()
                    if s.issuer == "DigiCert" and not s.geo_variant
                    and s.chain == "ok" and not s.share)
        now_chain = network.chain_at(spec.fqdn, at=PROBE_TIME)
        then_chain = network.chain_at(spec.fqdn, at=CAPTURE_END)
        assert then_chain[0].is_time_valid(CAPTURE_END)
        assert leaf_issuer_org(now_chain[0]) == \
            leaf_issuer_org(then_chain[0])
        assert now_chain[0].fingerprint() != then_chain[0].fingerprint()

    def test_ip_assignment(self, study, network):
        for spec in study.world.servers[:50]:
            endpoint = network.endpoint(spec.fqdn)
            assert len(endpoint.ips) >= 1


class TestProber:
    def test_probe_one_success(self, study, network):
        spec = study.world.reachable_servers()[0]
        result = Prober(network).probe_one(spec.fqdn, VANTAGE_POINTS[0])
        assert result.reachable
        assert result.leaf is not None
        assert result.negotiated_version is not None

    def test_probe_one_unreachable(self, study, network):
        dead = next(s for s in study.world.servers if s.unreachable)
        result = Prober(network).probe_one(dead.fqdn, VANTAGE_POINTS[0])
        assert not result.reachable
        assert result.error

    def test_probe_all_covers_vantages(self, certificates):
        assert certificates.vantages() == ["frankfurt", "new-york",
                                           "singapore"]

    def test_dataset_counts(self, certificates):
        assert len(certificates.reachable_fqdns()) == 1151
        leaves = certificates.leaf_certificates()
        assert 700 <= len(leaves) <= 900

    def test_chain_parsed_from_wire(self, study, certificates):
        # Every returned certificate went through DER bytes.
        result = certificates.result(
            study.world.reachable_servers()[0].fqdn)
        for certificate in result.chain:
            assert certificate.to_der()

    def test_ip_sharing_stats(self, certificates, network):
        ips = certificates.ips_by_leaf(network)
        multi = sum(1 for v in ips.values() if len(v) > 1)
        assert 0.5 <= multi / len(ips) <= 0.85    # paper: 64.96%
        assert max(len(v) for v in ips.values()) <= 93
