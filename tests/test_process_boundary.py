"""Regression tests for the sweep's process boundary.

The sweep pool sends work to spawned workers and results back; the one
Study stage payload that is *not* plain JSON is the certificate dataset,
whose live :class:`~repro.probing.engine.ProbeStats` is a view over
lock-holding metric instruments.  ``CertificateDataset.__getstate__``
freezes it into a :class:`ProbeStatsSnapshot` — these tests guard that
path with real ``pickle`` round trips and an actual spawned subprocess
(the same start method the ``SweepRunner`` pool uses).
"""

import multiprocessing
import pickle

from repro.probing.certdataset import (CertificateDataset,
                                       ProbeStatsSnapshot)


def describe_certificates(dataset):
    """Runs inside the spawned worker; top-level so spawn can import it."""
    return {
        "fingerprint": dataset.fingerprint(),
        "stats_type": type(dataset.stats).__name__,
        "stats": dataset.stats.to_json(),
        "reachable": len(dataset.reachable_fqdns()),
        "leaves": len(dataset.leaf_certificates()),
        "dataset": dataset,  # pickled back: the worker→parent direction
    }


def describe_capture(dataset):
    return {"records": len(dataset.records),
            "vendors": dataset.vendor_names(),
            "dataset": dataset}


class TestPickleFreeze:
    def test_live_stats_freeze_to_snapshot(self, certificates):
        # the session study probed with a live, lock-holding ProbeStats
        assert certificates.stats is not None
        assert not isinstance(certificates.stats, ProbeStatsSnapshot)
        clone = pickle.loads(pickle.dumps(certificates))
        assert isinstance(clone.stats, ProbeStatsSnapshot)
        assert clone.stats.to_json() == certificates.stats.to_json()
        assert clone.stats.probes == certificates.stats.probes
        assert clone.fingerprint() == certificates.fingerprint()
        assert clone.reachable_fqdns() == certificates.reachable_fqdns()
        # pickling must not mutate the original in place
        assert not isinstance(certificates.stats, ProbeStatsSnapshot)

    def test_snapshot_survives_repickling(self, certificates):
        once = pickle.loads(pickle.dumps(certificates))
        twice = pickle.loads(pickle.dumps(once))
        assert isinstance(twice.stats, ProbeStatsSnapshot)
        assert twice.stats.to_json() == once.stats.to_json()
        assert twice.fingerprint() == once.fingerprint()

    def test_snapshot_renders_like_live_stats(self, certificates):
        snapshot = ProbeStatsSnapshot(certificates.stats.to_json())
        assert snapshot.summary() == certificates.stats.summary()
        assert snapshot.outcomes == certificates.stats.outcomes
        assert snapshot.reachable_by_vantage == \
            certificates.stats.reachable_by_vantage

    def test_statless_dataset_round_trips(self, certificates):
        bare = CertificateDataset(certificates.results,
                                  probed_at=certificates.probed_at)
        clone = pickle.loads(pickle.dumps(bare))
        assert clone.stats is None
        assert clone.fingerprint() == bare.fingerprint()
        assert clone.vantages() == bare.vantages()


class TestSpawnBoundary:
    """Round trips through a real subprocess, spawn start method."""

    def test_certificates_cross_the_spawn_boundary(self, certificates):
        context = multiprocessing.get_context("spawn")
        with context.Pool(1) as pool:
            seen = pool.apply(describe_certificates, (certificates,))
        assert seen["fingerprint"] == certificates.fingerprint()
        assert seen["stats_type"] == "ProbeStatsSnapshot"
        assert seen["stats"] == certificates.stats.to_json()
        assert seen["reachable"] == len(certificates.reachable_fqdns())
        assert seen["leaves"] == len(certificates.leaf_certificates())
        echoed = seen["dataset"]
        assert isinstance(echoed.stats, ProbeStatsSnapshot)
        assert echoed.fingerprint() == certificates.fingerprint()

    def test_capture_crosses_the_spawn_boundary(self, dataset):
        context = multiprocessing.get_context("spawn")
        with context.Pool(1) as pool:
            seen = pool.apply(describe_capture, (dataset,))
        assert seen["records"] == len(dataset.records)
        assert seen["vendors"] == dataset.vendor_names()
        assert len(seen["dataset"].records) == len(dataset.records)
