"""Unit tests for the ciphersuite registry and security classification."""

import pytest

from repro.tlslib.ciphersuites import (
    EMPTY_RENEGOTIATION_INFO_SCSV,
    FALLBACK_SCSV,
    REGISTRY,
    SecurityLevel,
    classify_suite,
    codes_by_names,
    suite_by_code,
    suite_by_name,
)


class TestRegistryIntegrity:
    def test_codes_match_keys(self):
        for code, suite in REGISTRY.items():
            assert suite.code == code

    def test_names_unique(self):
        names = [suite.name for suite in REGISTRY.values()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        suite = suite_by_name("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256")
        assert suite.code == 0xC02F

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            suite_by_name("TLS_NOT_A_SUITE")

    def test_every_real_suite_has_components(self):
        for suite in REGISTRY.values():
            if not suite.is_signaling:
                assert suite.kx
                assert suite.cipher


class TestNameParsing:
    def test_gcm_suite_components(self):
        suite = suite_by_code(0xC02F)
        assert suite.kx == "ECDHE_RSA"
        assert suite.cipher == "AES_128_GCM"
        assert suite.mac == "AEAD"
        assert suite.prf_hash == "SHA256"

    def test_cbc_suite_components(self):
        suite = suite_by_name("TLS_RSA_WITH_AES_128_CBC_SHA")
        assert suite.components() == ("RSA", "AES_128_CBC", "SHA")

    def test_3des_components(self):
        suite = suite_by_name("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
        assert suite.cipher == "3DES_EDE_CBC"

    def test_anon_normalized(self):
        suite = suite_by_name("TLS_DH_anon_WITH_AES_128_CBC_SHA")
        assert suite.kx == "DH_ANON"
        assert suite.is_anon

    def test_krb5_export_cipher(self):
        suite = suite_by_name("TLS_KRB5_EXPORT_WITH_DES_CBC_40_SHA")
        assert suite.kx == "KRB5_EXPORT"
        assert suite.is_export

    def test_ccm_without_hash_is_aead(self):
        suite = suite_by_name("TLS_RSA_WITH_AES_128_CCM")
        assert suite.mac == "AEAD"
        assert suite.prf_hash is None

    def test_tls13_suite(self):
        suite = suite_by_name("TLS_AES_128_GCM_SHA256")
        assert suite.kx == "TLS13"
        assert suite.is_pfs

    def test_null_cipher(self):
        suite = suite_by_name("TLS_RSA_WITH_NULL_SHA256")
        assert suite.is_null_cipher


class TestSecurityClassification:
    @pytest.mark.parametrize("name,expected", [
        ("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", SecurityLevel.OPTIMAL),
        ("TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
         SecurityLevel.OPTIMAL),
        ("TLS_AES_256_GCM_SHA384", SecurityLevel.OPTIMAL),
        ("TLS_RSA_WITH_AES_128_GCM_SHA256", SecurityLevel.SUBOPTIMAL),
        ("TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", SecurityLevel.SUBOPTIMAL),
        ("TLS_RSA_WITH_AES_256_CBC_SHA", SecurityLevel.SUBOPTIMAL),
        ("TLS_RSA_WITH_RC4_128_SHA", SecurityLevel.VULNERABLE),
        ("TLS_RSA_WITH_3DES_EDE_CBC_SHA", SecurityLevel.VULNERABLE),
        ("TLS_RSA_WITH_DES_CBC_SHA", SecurityLevel.VULNERABLE),
        ("TLS_RSA_EXPORT_WITH_RC4_40_MD5", SecurityLevel.VULNERABLE),
        ("TLS_DH_anon_WITH_AES_128_CBC_SHA", SecurityLevel.VULNERABLE),
        ("TLS_RSA_WITH_NULL_MD5", SecurityLevel.VULNERABLE),
    ])
    def test_levels(self, name, expected):
        assert suite_by_name(name).security_level == expected

    def test_md5_mac_alone_is_not_vulnerable(self):
        # The paper explicitly excludes MD5/SHA-1 MACs from "vulnerable".
        suite = suite_by_name("TLS_RSA_WITH_RC4_128_MD5")
        assert "MD5" not in suite.vulnerable_components()

    def test_vulnerable_components_tags(self):
        suite = suite_by_name("TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5")
        assert set(suite.vulnerable_components()) == {"EXPORT", "RC2"}

    def test_des40_tagged_des_and_export(self):
        suite = suite_by_name("TLS_RSA_EXPORT_WITH_DES40_CBC_SHA")
        assert set(suite.vulnerable_components()) == {"DES", "EXPORT"}

    def test_3des_not_tagged_des(self):
        suite = suite_by_name("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
        assert suite.vulnerable_components() == ["3DES"]


class TestSignalingAndUnknown:
    def test_scsvs_are_signaling(self):
        assert suite_by_code(EMPTY_RENEGOTIATION_INFO_SCSV).is_signaling
        assert suite_by_code(FALLBACK_SCSV).is_signaling

    def test_scsv_has_no_vulnerabilities(self):
        assert suite_by_code(FALLBACK_SCSV).vulnerable_components() == []

    def test_unknown_code_placeholder(self):
        suite = suite_by_code(0x9999)
        assert suite.is_signaling
        assert suite.name == "UNKNOWN_9999"

    def test_grease_code_placeholder(self):
        suite = suite_by_code(0x1A1A)
        assert suite.name.startswith("GREASE_")

    def test_classify_signaling_is_suboptimal(self):
        assert classify_suite(FALLBACK_SCSV) == SecurityLevel.SUBOPTIMAL

    def test_codes_by_names_preserves_order(self):
        names = ["TLS_RSA_WITH_AES_256_CBC_SHA",
                 "TLS_RSA_WITH_AES_128_CBC_SHA"]
        assert codes_by_names(names) == [0x0035, 0x002F]
