"""Unit tests for TLS parameter and preference-order analyses."""

import pytest

from repro.core import params, preferences
from repro.inspector.dataset import InspectorDataset
from repro.tlslib.ciphersuites import FALLBACK_SCSV
from repro.tlslib.versions import TLSVersion
from tests.conftest import make_record


@pytest.fixture
def param_dataset():
    records = [
        make_record(device="d1", vendor="V1",
                    version=TLSVersion.TLS_1_2, suites=(0xC02F,)),
        make_record(device="d1", vendor="V1",
                    version=TLSVersion.SSL_3_0, suites=(0x0005, 0x0035)),
        make_record(device="d2", vendor="V2",
                    version=TLSVersion.TLS_1_0,
                    suites=(0x0035, 0x000A, FALLBACK_SCSV),
                    extensions=(0, 5)),
        make_record(device="d3", vendor="V2",
                    version=TLSVersion.TLS_1_2,
                    suites=(0x0A0A, 0x00FF, 0x000A, 0xC02F),
                    extensions=(0x0A0A, 0, 10)),
    ]
    return InspectorDataset(records)


class TestVersions:
    def test_proposal_counts(self, param_dataset):
        counts = params.version_proposals(param_dataset)
        assert counts[TLSVersion.TLS_1_2] == 2
        assert counts[TLSVersion.SSL_3_0] == 1
        assert counts[TLSVersion.TLS_1_0] == 1
        assert counts[TLSVersion.TLS_1_3] == 0

    def test_ssl3_devices(self, param_dataset):
        devices, vendors = params.ssl3_devices(param_dataset)
        assert devices == {"d1": 1}
        assert vendors == {"V1": 1}

    def test_multi_version_devices(self, param_dataset):
        assert params.multi_version_devices(param_dataset) == ["d1"]

    def test_no_tls13_in_study(self, dataset):
        counts = params.version_proposals(dataset)
        assert counts[TLSVersion.TLS_1_3] == 0
        assert counts[TLSVersion.TLS_1_2] > 0

    def test_ssl3_study_counts(self, dataset):
        devices, vendors = params.ssl3_devices(dataset)
        # Paper: 26 devices of Amazon(13)/Synology(5)/Samsung(4)/LG(2)/
        # TP-Link(1)/WD(1).
        assert 18 <= len(devices) <= 30
        assert set(vendors) <= {"Amazon", "Synology", "Samsung", "LG",
                                "TP-Link", "Western Digital"}


class TestSCSVAndExtensions:
    def test_fallback_detection(self, param_dataset):
        devices, vendors = params.fallback_scsv_usage(param_dataset)
        assert devices == ["d2"]
        assert vendors == ["V2"]

    def test_ocsp_detection(self, param_dataset):
        devices, vendors = params.ocsp_usage(param_dataset)
        assert devices == ["d2"]

    def test_grease_detection(self, param_dataset):
        usage = params.grease_usage(param_dataset)
        assert usage["suite_devices"] == ["d3"]
        assert usage["extension_devices"] == ["d3"]
        assert usage["extension_only_devices"] == []

    def test_extension_usage_names(self, param_dataset):
        usage = params.extension_usage(param_dataset)
        assert usage["server_name"] == 3
        assert usage["status_request"] == 1

    def test_extension_divergence(self, dataset, corpus):
        divergence = params.extension_divergence(dataset, corpus)
        assert divergence["cases"] >= 0
        # Added extensions are reported by name.
        for name in divergence["added"]:
            assert isinstance(name, str)


class TestPreferences:
    def test_lowest_vulnerable_index(self, param_dataset):
        indexes = preferences.lowest_vulnerable_index(param_dataset)
        # d1's SSL3 list: RC4 first → index 0.
        assert 0 in indexes["V1"]
        # d2: 3DES at real-suite index 1; d3: GREASE+SCSV skipped → 0.
        assert sorted(indexes["V2"]) == [0, 1]

    def test_clean_vendor_absent(self, param_dataset):
        clean = preferences.vendors_without_vulnerable(param_dataset)
        assert clean == []  # both vendors propose vulnerable suites

    def test_vulnerable_first_vendors(self, param_dataset):
        first = preferences.vendors_preferring_vulnerable_first(
            param_dataset)
        assert "V1" in first   # RC4 leads d1's SSL3 list
        assert "V2" in first   # d3's first real suite is 3DES

    def test_preferred_components(self, param_dataset):
        shares = preferences.preferred_components(param_dataset)
        assert shares["cipher"]["V1"]["AES_128_GCM"] == 1
        assert shares["cipher"]["V1"]["RC4_128"] == 1
        # d2's first suite is AES_256_CBC; d3 leads with the renegotiation
        # SCSV (after GREASE) and is therefore excluded, as in the paper.
        assert shares["cipher"]["V2"]["AES_256_CBC"] == 1
        assert sum(shares["cipher"]["V2"].values()) == 1

    def test_study_has_both_clean_and_dirty_vendors(self, dataset):
        clean = preferences.vendors_without_vulnerable(dataset)
        dirty = preferences.vendors_preferring_vulnerable_first(dataset)
        assert 2 <= len(clean) <= 20           # paper: 7
        assert 5 <= len(dirty) <= 30           # paper: 13

    def test_synology_prefers_vulnerable(self, dataset):
        dirty = preferences.vendors_preferring_vulnerable_first(dataset)
        assert "Synology" in dirty or "Belkin" in dirty
