"""Regression tests: every example script runs end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, study, capsys):
        load_example("quickstart").main(study.seed)
        out = capsys.readouterr().out
        assert "Headline findings" in out
        assert "47.26%" in out

    def test_fingerprint_audit(self, study, capsys):
        load_example("fingerprint_audit").main("Samsung")
        out = capsys.readouterr().out
        assert "Client-side TLS audit: Samsung" in out
        assert "DoC_vendor" in out

    def test_certificate_audit(self, study, capsys):
        load_example("certificate_audit").main("Roku")
        out = capsys.readouterr().out
        assert "Server certificate audit for Roku" in out
        assert "not in CT" in out

    def test_supply_chain_discovery(self, study, capsys):
        load_example("supply_chain_discovery").main(0.2)
        out = capsys.readouterr().out
        assert "HDHomeRun, SiliconDust" in out
        assert "sonos.com" in out

    def test_smart_tv_case_study(self, study, capsys):
        load_example("smart_tv_case_study").main()
        out = capsys.readouterr().out
        assert "Cast Root CA" in out or "Chromecast" in out
        assert "roku-own" in out

    def test_acme_migration(self, study, capsys):
        load_example("acme_migration").main("Tuya")
        out = capsys.readouterr().out
        assert "90d" in out
        assert "True" in out

    def test_unknown_vendor_raises(self, study):
        with pytest.raises(SystemExit):
            load_example("fingerprint_audit").main("NotAVendor")
