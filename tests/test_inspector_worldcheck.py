"""Tests for the world invariant checker."""

import copy

import pytest

from repro.inspector.worldcheck import check_world


class TestHealthyWorld:
    def test_study_world_clean(self, study):
        assert check_world(study.world) == []


class TestViolationDetection:
    @pytest.fixture
    def broken(self, study):
        # A shallow copy we can mutate without poisoning the shared study.
        world = copy.copy(study.world)
        world.devices = [copy.copy(device)
                         for device in study.world.devices]
        world.records = list(study.world.records)
        world.servers = list(study.world.servers)
        world.users = list(study.world.users)
        return world

    def test_detects_missing_base_stack(self, broken):
        device = broken.devices[0]
        device.stacks = {key: stack for key, stack
                         in device.stacks.items() if key != "base"}
        problems = check_world(broken)
        assert any("no base stack" in problem for problem in problems)

    def test_detects_unknown_user(self, broken):
        broken.devices[0].user_id = "ghost-user"
        problems = check_world(broken)
        assert any("unknown user" in problem for problem in problems)

    def test_detects_dangling_route(self, broken):
        device = next(d for d in broken.devices if d.routing)
        device.routing = dict(device.routing)
        first_fqdn = next(iter(device.routing))
        device.routing[first_fqdn] = "no-such-stack"
        problems = check_world(broken)
        assert any("missing stack" in problem for problem in problems)

    def test_detects_out_of_window_record(self, broken):
        from dataclasses import replace
        broken.records = broken.records[:]
        broken.records[0] = replace(broken.records[0], timestamp=1)
        problems = check_world(broken)
        assert any("outside the capture window" in problem
                   for problem in problems)

    def test_detects_server_undercount(self, broken):
        broken.servers = broken.servers[:-5]
        problems = check_world(broken)
        assert any("server count" in problem for problem in problems)

    def test_detects_silent_device(self, broken):
        victim = broken.records[0].device_id
        broken.records = [record for record in broken.records
                          if record.device_id != victim]
        problems = check_world(broken)
        assert any("emitted no records" in problem for problem in problems)
