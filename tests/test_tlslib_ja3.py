"""Unit tests for JA3-style fingerprint hashing."""

from repro.tlslib.clienthello import ClientHello
from repro.tlslib.ja3 import (
    compare_corpora,
    dataset_ja3_index,
    ja3_from_hello,
    ja3_from_record,
    ja3_hash,
    ja3_string,
)
from repro.tlslib.versions import TLSVersion
from tests.conftest import make_record


class TestJA3String:
    def test_canonical_format(self):
        text = ja3_string(TLSVersion.TLS_1_2, [0xC02F, 0x009C], [0, 10],
                          curves=(29, 23), point_formats=(0,))
        assert text == "771,49199-156,0-10,29-23,0"

    def test_grease_stripped(self):
        with_grease = ja3_string(TLSVersion.TLS_1_2,
                                 [0x0A0A, 0xC02F], [0x1A1A, 0])
        without = ja3_string(TLSVersion.TLS_1_2, [0xC02F], [0])
        assert with_grease == without

    def test_empty_fields_degrade(self):
        text = ja3_string(TLSVersion.TLS_1_0, [5], [])
        assert text == "769,5,,,"


class TestJA3Hash:
    def test_md5_hex(self):
        digest = ja3_hash(TLSVersion.TLS_1_2, [0xC02F], [0])
        assert len(digest) == 32
        assert all(c in "0123456789abcdef" for c in digest)

    def test_order_sensitive(self):
        a = ja3_hash(TLSVersion.TLS_1_2, [1, 2], [0])
        b = ja3_hash(TLSVersion.TLS_1_2, [2, 1], [0])
        assert a != b

    def test_version_sensitive(self):
        a = ja3_hash(TLSVersion.TLS_1_2, [1], [0])
        b = ja3_hash(TLSVersion.TLS_1_0, [1], [0])
        assert a != b

    def test_hello_and_record_agree(self):
        hello = ClientHello(version=TLSVersion.TLS_1_2,
                            ciphersuites=[0xC02F, 0x009C],
                            extensions=[0, 10], sni="h.example")
        record = make_record(version=TLSVersion.TLS_1_2,
                             suites=(0xC02F, 0x009C), extensions=(0, 10))
        assert ja3_from_hello(hello) == ja3_from_record(record)


class TestDatasetReduction:
    def test_grease_variants_collapse(self):
        records = [
            make_record(device="d1", suites=(0x0A0A, 0xC02F),
                        extensions=(0x0A0A, 0, 10)),
            make_record(device="d2", suites=(0x3A3A, 0xC02F),
                        extensions=(0x3A3A, 0, 10)),
        ]
        from repro.inspector.dataset import InspectorDataset
        ds = InspectorDataset(records)
        index = dataset_ja3_index(ds)
        assert ds.fingerprint_count == 2
        assert len(index) == 1   # identical once GREASE is stripped

    def test_full_study_reduction(self, dataset):
        summary = compare_corpora(dataset)
        assert summary["ja3_fingerprints"] <= summary["tuple_fingerprints"]
        # GREASE-bearing stacks use a random value per build, so some
        # reduction must occur in the full study.
        assert summary["ja3_with_multiple_tuples"] >= 0
        assert 0.0 <= summary["reduction"] < 0.5
