"""Tests for the distributed campaign fabric (``repro.fabric``).

Covers the lease protocol against an injected clock (grant order,
heartbeat extension, lazy expiry, work stealing, idempotent completion,
attempt exhaustion), the pure HTTP service surface (routing, metrics,
the blob endpoints), real coordinator + worker end-to-end runs over
localhost HTTP — including a dead worker whose lease expires and is
stolen — cross-backend campaign handoff through the shared ledger, and
the headline digest-equivalence contract: the cluster backend and the
verify-matrix cluster mode produce per-config digests byte-identical
to the serial reference path.
"""

import hashlib
import json
import pickle
import socket
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.cli import main
from repro.config import StudyConfig
from repro.fabric import (DEFAULT_LEASE_SECONDS, DEFAULT_MAX_ATTEMPTS,
                          FabricCoordinator, FabricService,
                          FabricWorker, ProtocolError,
                          make_fabric_server, worker_main)
from repro.fabric.protocol import LEASE_HOLD_BUCKETS_MS
from repro.store import ArtifactStore, blob_key_of, encode_entry
from repro.store.campaign import CampaignIndex
from repro.sweep import SweepRunner, expand_grid
from repro.verify.matrix import (EquivalenceMatrix, ExecutionMode,
                                 default_modes)


class FakeClock:
    """An injectable monotonic clock for deterministic lease expiry."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _specs(count):
    """Minimal stub unit specs (a ledger only needs ``key`` + extras)."""
    return [{"name": f"u{i}",
             "key": hashlib.sha256(f"unit-{i}".encode()).hexdigest(),
             "seed": i, "stage": "probe"}
            for i in range(count)]


def _coordinator(tmp_path, count=3, **kwargs):
    index = CampaignIndex.create(tmp_path / "campaign.json",
                                 _specs(count), "probe")
    return FabricCoordinator(index, **kwargs)


def _result_for(spec, marker="result"):
    return {"name": spec["name"], "key": spec["key"], "ok": True,
            "marker": marker, "scalars": {}, "issuer_shares": {},
            "invariants": {}, "wall_seconds": 0.0}


def _free_port():
    """A port that was just free — nothing listens on it afterwards."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestCoordinatorProtocol:
    def test_leases_follow_campaign_order(self, tmp_path):
        clock = FakeClock()
        spec = {"backend": "local", "dir": "/tmp/cache"}
        coordinator = _coordinator(tmp_path, count=3, store_spec=spec,
                                   clock=clock, lease_seconds=30.0)
        leases = [coordinator.lease(f"w{i}") for i in range(3)]
        assert [l["unit"]["name"] for l in leases] == ["u0", "u1", "u2"]
        assert all(l["attempt"] == 1 for l in leases)
        assert all(l["store"] == spec for l in leases)
        assert all(l["lease_seconds"] == 30.0 for l in leases)
        assert len({l["lease"] for l in leases}) == 3  # unique tokens
        # Everything is leased out but nothing finished: poll again.
        assert coordinator.lease("w3") == {"unit": None, "done": False}
        assert not coordinator.done()

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, count=1, clock=clock,
                                   lease_seconds=10.0)
        lease = coordinator.lease("w")
        clock.advance(8.0)
        assert coordinator.heartbeat(lease["lease"])["ok"]
        clock.advance(8.0)  # past the original deadline, not the new one
        assert coordinator.heartbeat(lease["lease"])["ok"]
        clock.advance(10.5)
        with pytest.raises(ProtocolError) as err:
            coordinator.heartbeat(lease["lease"])
        assert err.value.status == 410
        assert "returned to the queue" in err.value.message

    def test_unknown_tokens_are_404(self, tmp_path):
        coordinator = _coordinator(tmp_path, count=1)
        for call in (lambda: coordinator.heartbeat("nope"),
                     lambda: coordinator.complete(
                         "nope", {"key": "k"}),
                     lambda: coordinator.fail("nope", "boom")):
            with pytest.raises(ProtocolError) as err:
                call()
            assert err.value.status == 404

    def test_expired_lease_is_stolen_and_first_result_wins(self,
                                                           tmp_path):
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, count=1, clock=clock,
                                   lease_seconds=5.0)
        first = coordinator.lease("slow")
        clock.advance(6.0)  # the lease lapses; the unit is claimable
        second = coordinator.lease("fast")
        assert second["unit"]["key"] == first["unit"]["key"]
        assert second["attempt"] == 2  # a steal, not a fresh grant
        spec = second["unit"]
        done = coordinator.complete(second["lease"],
                                    _result_for(spec, marker="fast"))
        assert done == {"ok": True, "duplicate": False}
        # The dead worker finishes anyway; its late result is a no-op.
        late = coordinator.complete(first["lease"],
                                    _result_for(spec, marker="slow"))
        assert late == {"ok": True, "duplicate": True}
        recorded = coordinator.index.completed[spec["key"]]
        assert recorded["marker"] == "fast"
        assert coordinator.done()

    def test_late_result_from_expired_lease_still_lands(self, tmp_path):
        # Content-addressed results are interchangeable: if nobody stole
        # the unit yet, the expired lease's upload is accepted.
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, count=1, clock=clock,
                                   lease_seconds=5.0)
        lease = coordinator.lease("w")
        clock.advance(60.0)
        reply = coordinator.complete(lease["lease"],
                                     _result_for(lease["unit"]))
        assert reply == {"ok": True, "duplicate": False}
        assert coordinator.done()

    def test_complete_validates_the_result_payload(self, tmp_path):
        coordinator = _coordinator(tmp_path, count=2)
        lease = coordinator.lease("w")
        with pytest.raises(ProtocolError) as err:
            coordinator.complete(lease["lease"], None)
        assert err.value.status == 400
        with pytest.raises(ProtocolError) as err:
            coordinator.complete(lease["lease"], {"key": "wrong-unit"})
        assert err.value.status == 400
        assert "covers unit" in err.value.message

    def test_failures_retry_until_attempts_exhausted(self, tmp_path):
        coordinator = _coordinator(tmp_path, count=1, max_attempts=2)
        key = coordinator.index.units[0]["key"]
        first = coordinator.lease("w")
        reply = coordinator.fail(first["lease"], "boom 1")
        assert reply["attempts"] == 1 and not reply["exhausted"]
        assert coordinator.index.failed[key] == "boom 1"
        assert not coordinator.done()  # still re-leasable

        second = coordinator.lease("w")
        assert second["attempt"] == 2
        reply = coordinator.fail(second["lease"], "boom 2")
        assert reply["exhausted"]
        assert coordinator.lease("w") == {"unit": None, "done": True}
        assert coordinator.done()
        status = coordinator.status()
        assert status["exhausted"] == [key]
        # A resume clears the failure the moment the unit completes.
        assert coordinator.index.pending_units()[0]["key"] == key

    def test_status_reports_queue_and_lease_state(self, tmp_path):
        clock = FakeClock()
        coordinator = _coordinator(tmp_path, count=2, clock=clock,
                                   lease_seconds=30.0)
        lease = coordinator.lease("worker-a")
        clock.advance(5.0)
        status = coordinator.status()
        assert status["campaign_id"] == coordinator.index.campaign_id
        assert status["units"] == 2
        assert status["completed"] == 0
        assert status["pending"] == 1
        assert status["leased"] == [{"worker": "worker-a",
                                     "unit": lease["unit"]["key"],
                                     "expires_in": 25.0}]
        assert not status["done"]
        assert status["uptime_seconds"] == 5.0

    def test_lease_hold_histogram_buckets_cover_unit_durations(self):
        # Unit holds run seconds-to-minutes; the bucket grid must not
        # collapse every observation into +Inf.
        bounds = [bound for bound, _ in LEASE_HOLD_BUCKETS_MS]
        assert bounds == sorted(bounds)
        assert bounds[-1] == float("inf")
        assert any(bound >= 60_000 for bound in bounds[:-1])

    def test_completion_metrics_and_hold_histogram(self, tmp_path):
        clock = FakeClock()
        with obs.enabled() as ctx:
            coordinator = _coordinator(tmp_path, count=1, clock=clock,
                                       lease_seconds=60.0)
            lease = coordinator.lease("w")
            clock.advance(2.0)
            coordinator.complete(lease["lease"],
                                 _result_for(lease["unit"]))
            snapshot = ctx.metrics.snapshot()
        assert snapshot["counters"]["fabric.completed"] == 1
        assert snapshot["families"]["fabric.leases"] == {"w": 1}
        hold = snapshot["histograms"]["fabric.lease_hold_ms"]
        assert sum(hold.values()) == 1  # one completion observed


@pytest.fixture
def service(tmp_path):
    index = CampaignIndex.create(tmp_path / "campaign.json", _specs(1),
                                 "probe")
    blob_store = ArtifactStore(tmp_path / "blobs")
    return FabricService(FabricCoordinator(index),
                         blob_store=blob_store)


def _valid_blob():
    payload = pickle.dumps({"certs": [1, 2, 3]})
    blob = encode_entry("a" * 64, "certificates", "1.0.0", payload)
    return blob_key_of(blob), blob


class TestFabricService:
    """The pure ``handle()`` surface — no sockets involved."""

    def test_ping_and_status(self, service):
        status, payload = service.handle("GET", "/fabric/ping")
        assert status == 200 and payload["ok"]
        status, payload = service.handle("GET", "/fabric/status")
        assert status == 200 and payload["units"] == 1

    def test_lease_complete_round_trip(self, service):
        status, lease = service.handle(
            "POST", "/fabric/lease",
            body=json.dumps({"worker": "w"}).encode())
        assert status == 200 and lease["unit"]["name"] == "u0"
        status, reply = service.handle(
            "POST", "/fabric/complete",
            body=json.dumps({"lease": lease["lease"],
                             "result": _result_for(lease["unit"])
                             }).encode())
        assert status == 200 and reply == {"ok": True,
                                           "duplicate": False}

    def test_protocol_errors_surface_as_json(self, service):
        assert service.handle("GET", "/nope")[0] == 404
        assert service.handle("DELETE", "/fabric/status")[0] == 405
        status, payload = service.handle("POST", "/fabric/lease",
                                         body=b"not json")
        assert status == 400 and "JSON" in payload["error"]
        status, payload = service.handle("POST", "/fabric/heartbeat",
                                         body=b"{}")
        assert status == 400 and "lease token" in payload["error"]

    def test_metrics_formats(self, service):
        with obs.enabled():
            obs.incr("fabric.completed")
            status, payload = service.handle("GET", "/metrics", {})
            assert status == 200 and payload["enabled"]
            assert payload["metrics"]["counters"][
                "fabric.completed"] == 1
            status, prom = service.handle("GET", "/metrics",
                                          {"format": ["prom"]})
            assert status == 200
            assert b"repro_fabric_completed" in prom.blob
        assert service.handle("GET", "/metrics",
                              {"format": ["xml"]})[0] == 400

    def test_blob_round_trip_and_rejection(self, service):
        key, blob = _valid_blob()
        status, _ = service.handle("GET", f"/blob/{key}")
        assert status == 404  # cold store
        status, payload = service.handle("PUT", f"/blob/{key}",
                                         body=blob)
        assert status == 200 and payload["key"] == key
        status, raw = service.handle("GET", f"/blob/{key}")
        assert status == 200 and raw.blob == blob
        # The server re-derives the key: garbage and mismatches bounce.
        status, payload = service.handle("PUT", f"/blob/{'b' * 64}",
                                         body=blob)
        assert status == 400 and "rejected" in payload["error"]
        assert service.handle("PUT", f"/blob/{key}",
                              body=b"garbage")[0] == 400
        assert service.handle("GET", "/blob/short-key")[0] == 400
        status, stats = service.handle("GET", "/blob/stats")
        assert status == 200 and stats["entries"] == 1

    def test_blob_routes_need_a_store(self, tmp_path):
        index = CampaignIndex.create(tmp_path / "c.json", _specs(1),
                                     "probe")
        bare = FabricService(FabricCoordinator(index))
        assert bare.handle("GET", f"/blob/{'a' * 64}")[0] == 503


def _digest_runner(calls=None, lock=None, fail_once=None, block=None):
    """A stub unit runner whose digest is a pure function of the spec.

    Parity between backends then proves the *payloads* (unit spec in,
    result out) are identical across the local and fabric paths — the
    same contract the real ``run_unit`` digests enforce.
    """
    failed = set()

    def run(payload):
        unit = payload["unit"]
        if block is not None and unit["name"] in block:
            block[unit["name"]].wait(timeout=30)
        if fail_once is not None and unit["name"] == fail_once \
                and unit["name"] not in failed:
            failed.add(unit["name"])
            raise RuntimeError("injected unit failure")
        if calls is not None:
            with lock:
                calls.append(unit["name"])
        canonical = json.dumps(unit, sort_keys=True)
        return {"name": unit["name"], "key": unit["key"],
                "seed": unit.get("seed"), "ok": True,
                "config_digest": hashlib.sha256(
                    canonical.encode()).hexdigest(),
                "store": payload.get("store"),
                "cache_dir": payload.get("cache_dir"),
                "scalars": {}, "issuer_shares": {}, "invariants": {},
                "wall_seconds": 0.0}
    return run


class _Fabric:
    """A live coordinator + HTTP server over one stub campaign."""

    def __init__(self, tmp_path, count=4, **kwargs):
        self.index = CampaignIndex.create(tmp_path / "campaign.json",
                                          _specs(count), "probe")
        self.coordinator = FabricCoordinator(self.index, **kwargs)
        self.server, self.service = make_fabric_server(self.coordinator)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def fabric(tmp_path):
    live = _Fabric(tmp_path)
    yield live
    live.close()


class TestWorkersOverHTTP:
    def test_two_workers_drain_exactly_once_and_match_serial(
            self, fabric, tmp_path):
        lock = threading.Lock()
        calls = []
        workers = [FabricWorker(fabric.url, worker_id=f"w{i}",
                                runner=_digest_runner(calls, lock),
                                poll_seconds=0.01)
                   for i in range(2)]
        threads = [threading.Thread(target=worker.run)
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        # Exactly once: every unit executed once, none lost, none twice.
        assert sorted(calls) == [f"u{i}" for i in range(4)]
        assert len(fabric.index.completed) == 4
        assert not fabric.index.failed
        assert fabric.coordinator.done()
        ran = sorted(workers[0].ran + workers[1].ran)
        assert ran == [f"u{i}" for i in range(4)]

        # The serial baseline over the *same* specs agrees digest for
        # digest — the campaign is backend-independent.
        runner = _digest_runner()
        serial = {spec["key"]:
                  runner({"unit": spec, "store": None})["config_digest"]
                  for spec in fabric.index.units}
        assert serial == {key: result["config_digest"]
                          for key, result
                          in fabric.index.completed.items()}

    def test_dead_worker_lease_expires_and_is_stolen(self, tmp_path):
        fabric = _Fabric(tmp_path, count=2, lease_seconds=0.4)
        release = threading.Event()
        try:
            # The "dead" worker: no heartbeat, hangs mid-unit on u0.
            dead = FabricWorker(
                fabric.url, worker_id="dead",
                runner=_digest_runner(block={"u0": release}),
                heartbeat=False, max_units=1, poll_seconds=0.01)
            dead_thread = threading.Thread(target=dead.run)
            dead_thread.start()
            deadline = time.monotonic() + 5.0
            while not fabric.coordinator._leases \
                    and time.monotonic() < deadline:
                time.sleep(0.01)  # wait for the dead worker's claim
            time.sleep(0.6)  # lease_seconds elapse; the lease lapses

            live = FabricWorker(fabric.url, worker_id="live",
                                runner=_digest_runner(),
                                poll_seconds=0.01)
            summary = live.run()  # steals u0, drains the campaign
            assert sorted(summary["ran"]) == ["u0", "u1"]
            assert len(fabric.index.completed) == 2

            release.set()  # the dead worker wakes up and uploads late
            dead_thread.join(timeout=10)
            assert dead.stolen == ["u0"]  # its result was a duplicate
            assert dead.ran == [] and dead.failed == []
            # First result won; the ledger holds exactly one per unit.
            assert fabric.coordinator.done()
            assert len(fabric.index.completed) == 2
        finally:
            release.set()
            fabric.close()

    def test_worker_retries_failed_units_via_new_lease(self, tmp_path):
        fabric = _Fabric(tmp_path, count=2, max_attempts=3)
        try:
            worker = FabricWorker(
                fabric.url, worker_id="w",
                runner=_digest_runner(fail_once="u1"),
                poll_seconds=0.01)
            summary = worker.run()
            assert summary["failed"] == ["u1"]  # first attempt
            assert sorted(summary["ran"]) == ["u0", "u1"]  # then retried
            assert len(fabric.index.completed) == 2
            assert not fabric.index.failed  # cleared on completion
        finally:
            fabric.close()

    def test_worker_payload_carries_resolved_store_spec(self, tmp_path):
        spec = {"backend": "local", "dir": str(tmp_path / "cache")}
        fabric = _Fabric(tmp_path, count=1, store_spec=spec)
        try:
            worker = FabricWorker(fabric.url, runner=_digest_runner(),
                                  poll_seconds=0.01)
            worker.run()
            result = next(iter(fabric.index.completed.values()))
            assert result["store"] == spec
            assert result["cache_dir"] == spec["dir"]
        finally:
            fabric.close()

    def test_worker_main_fails_fast_on_dead_endpoint(self):
        url = f"http://127.0.0.1:{_free_port()}"
        with pytest.raises(ConnectionError, match="no fabric "
                                                  "coordinator"):
            worker_main(url)


class TestCrossBackendResume:
    """One ledger, either backend: campaigns hand off mid-flight."""

    def _units(self, seeds=3):
        return expand_grid(StudyConfig(), seeds=seeds, stage="probe")

    def test_local_campaign_resumes_on_the_fabric(self, tmp_path):
        units = self._units()
        ran = []
        lock = threading.Lock()

        def killed(payload):
            if payload["unit"]["name"] == "seed2024":
                raise KeyboardInterrupt
            return _digest_runner(ran, lock)(payload)

        runner = SweepRunner(units,
                             index_path=tmp_path / "campaign.json",
                             workers=1, unit_runner=killed)
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        assert ran == ["seed2023"]

        # A fabric coordinator over the reloaded ledger serves only the
        # incomplete units — completed work is never re-leased.
        index = CampaignIndex.load(tmp_path / "campaign.json")
        coordinator = FabricCoordinator(index)
        server, _ = make_fabric_server(coordinator)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            worker = FabricWorker(f"http://{host}:{port}",
                                  runner=_digest_runner(ran, lock),
                                  poll_seconds=0.01)
            worker.run()
        finally:
            server.shutdown()
            server.server_close()
        assert ran == ["seed2023", "seed2024", "seed2025"]
        assert len(index.completed) == 3

    def test_fabric_campaign_resumes_locally(self, tmp_path):
        units = self._units()
        specs = [unit.to_json() for unit in units]
        index = CampaignIndex.create(tmp_path / "campaign.json", specs,
                                     "probe")
        coordinator = FabricCoordinator(index)
        server, _ = make_fabric_server(coordinator)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        ran = []
        lock = threading.Lock()
        try:
            worker = FabricWorker(f"http://{host}:{port}",
                                  runner=_digest_runner(ran, lock),
                                  max_units=1, poll_seconds=0.01)
            worker.run()
        finally:
            server.shutdown()
            server.server_close()
        assert ran == ["seed2023"]

        resumed = SweepRunner(
            index_path=tmp_path / "campaign.json", workers=1,
            unit_runner=_digest_runner(ran, lock)).run(resume=True)
        assert resumed.ok
        assert resumed.skipped == ["seed2023"]
        assert ran == ["seed2023", "seed2024", "seed2025"]


@pytest.fixture(scope="module")
def fabric_root(tmp_path_factory):
    return tmp_path_factory.mktemp("fabric-e2e")


@pytest.fixture(scope="module")
def serial_baseline(fabric_root):
    """A real 2-seed probe campaign, serially, warming the shared cache."""
    units = expand_grid(StudyConfig(), seeds=2, stage="probe")
    result = SweepRunner(units,
                         index_path=fabric_root / "serial.json",
                         workers=1,
                         cache_dir=fabric_root / "cache").run()
    assert result.ok
    return units, result


def _digest_map(result):
    return {payload["key"]: (payload["config_digest"],
                             payload["node_digests"])
            for payload in result.results()}


class TestClusterBackendEndToEnd:
    """Real studies through spawned fabric worker processes."""

    def test_cluster_digests_byte_identical_to_serial(self, fabric_root,
                                                      serial_baseline):
        units, serial = serial_baseline
        cluster = SweepRunner(units,
                              index_path=fabric_root / "cluster.json",
                              workers=2, backend="cluster",
                              cache_dir=fabric_root / "cache",
                              worker_jobs=1).run()
        assert cluster.ok
        assert sorted(cluster.ran) == ["seed2023", "seed2024"]
        assert _digest_map(cluster) == _digest_map(serial)
        assert cluster.index.campaign_id == serial.index.campaign_id

    def test_cluster_with_self_served_http_store(self, fabric_root,
                                                 serial_baseline):
        units, serial = serial_baseline
        spec = {"backend": "http", "dir": str(fabric_root / "cache")}
        cluster = SweepRunner(units,
                              index_path=fabric_root / "http.json",
                              workers=2, backend="cluster", store=spec,
                              worker_jobs=1).run()
        assert cluster.ok
        assert _digest_map(cluster) == _digest_map(serial)
        # Workers pulled their artifacts over the blob endpoints.
        for payload in cluster.results():
            assert payload["cache"]["url"].startswith("http://")
            assert payload["cache"]["hits"]
        # The ledger records the *unresolved* spec: ports are ephemeral,
        # so a resume must not dial a long-gone socket.
        index = CampaignIndex.load(fabric_root / "http.json")
        assert index.store_spec == spec

    def test_local_backend_rejects_unresolved_http_store(self,
                                                         tmp_path):
        units = expand_grid(StudyConfig(), seeds=1, stage="probe")
        runner = SweepRunner(units, index_path=tmp_path / "c.json",
                             workers=1, backend="local",
                             store={"backend": "http", "dir": "/tmp/x"})
        with pytest.raises(ValueError, match="cluster"):
            runner.run()


class TestVerifyMatrixClusterMode:
    def test_default_grid_includes_cluster_mode(self):
        modes = {mode.name: mode for mode in default_modes()}
        assert modes["cluster"].backend == "cluster"
        assert all(mode.backend == "inline"
                   for name, mode in modes.items() if name != "cluster")

    def test_cluster_mode_digests_identical_to_serial(self, tmp_path):
        matrix = EquivalenceMatrix(
            modes=(ExecutionMode("serial"),
                   ExecutionMode("cluster", backend="cluster")),
            workdir=str(tmp_path))
        report = matrix.run()
        assert report.ok, report.render()
        serial, cluster = report.results
        assert serial.comparable_digests() == \
            cluster.comparable_digests()
        assert len(cluster.comparable_digests()) > 20


class TestFabricCLI:
    def test_fabric_status_against_live_coordinator(self, tmp_path,
                                                    capsys):
        live = _Fabric(tmp_path, count=2)
        try:
            assert main(["fabric", "status", live.url]) == 0
        finally:
            live.close()
        out = capsys.readouterr().out
        assert "0/2 completed" in out

    def test_fabric_status_dead_coordinator_exits_2(self, capsys):
        url = f"http://127.0.0.1:{_free_port()}"
        assert main(["fabric", "status", url]) == 2
        assert "fabric status:" in capsys.readouterr().err

    def test_fabric_worker_dead_coordinator_exits_2(self, capsys):
        url = f"http://127.0.0.1:{_free_port()}"
        assert main(["fabric", "worker", url]) == 2
        err = capsys.readouterr().err
        assert "no fabric coordinator" in err
        assert "Traceback" not in err
