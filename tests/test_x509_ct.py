"""Unit tests for the Certificate Transparency logs."""

import random

import pytest

from repro.x509.certificate import sign_certificate
from repro.x509.ct import CTLog, CTLogSet
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName

NOW = 1_600_000_000


@pytest.fixture(scope="module")
def certs():
    key = generate_keypair(512, rng=random.Random(40))
    subject = DistinguishedName(common_name="CT Test CA")
    out = []
    for i in range(9):
        out.append(sign_certificate(
            serial=i + 1, subject=DistinguishedName(
                common_name=f"host{i}.example"),
            issuer=subject, issuer_keypair=key,
            not_before=NOW, not_after=NOW + 86400,
            public_key=key.public))
    return out


class TestLogBasics:
    def test_submit_and_query(self, certs):
        log = CTLog("test")
        log.submit(certs[0])
        assert log.contains(certs[0])
        assert not log.contains(certs[1])

    def test_submit_idempotent(self, certs):
        log = CTLog("test")
        first = log.submit(certs[0])
        second = log.submit(certs[0])
        assert first.index == second.index
        assert len(log) == 1

    def test_sct_fields(self, certs):
        log = CTLog("argon")
        sct = log.submit(certs[0], timestamp=123)
        assert sct.log_id == "argon"
        assert sct.index == 0
        assert sct.timestamp == 123


class TestMerkleTree:
    def test_empty_tree_head(self):
        import hashlib
        assert CTLog("t").tree_head() == hashlib.sha256(b"").digest()

    def test_head_changes_on_append(self, certs):
        log = CTLog("t")
        log.submit(certs[0])
        head_one = log.tree_head()
        log.submit(certs[1])
        assert log.tree_head() != head_one

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 9])
    def test_inclusion_proofs_verify(self, certs, count):
        log = CTLog("t")
        for cert in certs[:count]:
            log.submit(cert)
        for cert in certs[:count]:
            proof = log.prove_inclusion(cert)
            assert proof is not None
            assert log.verify_inclusion(cert, proof)

    def test_proof_fails_for_wrong_cert(self, certs):
        log = CTLog("t")
        log.submit(certs[0])
        log.submit(certs[1])
        proof = log.prove_inclusion(certs[0])
        assert not log.verify_inclusion(certs[1], proof)

    def test_proof_invalidated_by_growth(self, certs):
        log = CTLog("t")
        log.submit(certs[0])
        log.submit(certs[1])
        proof = log.prove_inclusion(certs[0])
        log.submit(certs[2])
        # Tree size changed; the old proof no longer verifies.
        assert not log.verify_inclusion(certs[0], proof)

    def test_no_proof_for_unlogged(self, certs):
        assert CTLog("t").prove_inclusion(certs[0]) is None


class TestLogSet:
    def test_submit_reaches_all_logs(self, certs):
        logs = CTLogSet()
        scts = logs.submit(certs[0])
        assert len(scts) == len(logs.logs)
        assert logs.query(certs[0])

    def test_query_false_when_absent(self, certs):
        assert not CTLogSet().query(certs[0])

    def test_prove_collects_per_log(self, certs):
        logs = CTLogSet(log_ids=("a", "b"))
        logs.submit(certs[0])
        proofs = logs.prove(certs[0])
        assert {proof.log_id for proof in proofs} == {"a", "b"}
