"""Tests for the memoized study context."""

import pytest

from repro.study import DEFAULT_SEED, Study, get_study


class TestMemoization:
    def test_get_study_cached(self):
        assert get_study() is get_study()
        # The legacy bare-seed spelling still works but is deprecated.
        with pytest.deprecated_call():
            legacy = get_study(DEFAULT_SEED)
        assert legacy is get_study()
        assert legacy.seed == get_study().seed

    def test_lazy_construction(self):
        with pytest.deprecated_call():
            fresh = Study(seed=12345)
        assert fresh._world is None
        assert fresh._certificates is None

    def test_config_first_does_not_warn(self, recwarn):
        from repro.study import StudyConfig
        Study(StudyConfig(seed=12346))
        get_study()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_get_study_seed_keyword_deprecation_message(self):
        with pytest.warns(DeprecationWarning,
                          match=r"get_study\(seed=\.\.\.\) is "
                                r"deprecated.*StudyConfig"):
            legacy = get_study(seed=DEFAULT_SEED)
        assert legacy is get_study()

    def test_study_seed_keyword_deprecation_message(self):
        with pytest.warns(DeprecationWarning,
                          match=r"Study\(seed=\.\.\.\) is "
                                r"deprecated.*StudyConfig"):
            legacy = Study(seed=4242)
        assert legacy.seed == 4242

    def test_config_and_conflicting_seed_rejected(self):
        from repro.study import StudyConfig
        with pytest.raises(ValueError, match="not both"):
            Study(StudyConfig(seed=1), seed=2)
        with pytest.raises(ValueError, match="not both"):
            get_study(StudyConfig(seed=1), seed=2)

    def test_world_built_once(self, study):
        assert study.world is study.world
        assert study.dataset is study.dataset
        assert study.network is study.network
        assert study.certificates is study.certificates

    def test_corpus_shared_shape(self, study):
        assert len(study.corpus) == 6891


class TestValidatorFactory:
    def test_fresh_validator_instances(self, study):
        a, b = study.validator(), study.validator()
        assert a is not b
        assert a.store is b.store

    def test_validator_uses_union_store(self, study):
        validator = study.validator()
        for ca in study.ecosystem.public.values():
            assert validator.store.contains(ca.root)


class TestSeedIsolation:
    def test_different_seed_different_capture(self):
        # Use a tiny probe of divergence that doesn't rebuild everything:
        # the generators' commodity plans already differ.
        from repro.inspector.generator import WorldGenerator
        plan_a = WorldGenerator(seed=1)._build_commodity_pool()
        plan_b = WorldGenerator(seed=2)._build_commodity_pool()
        members_a = [m for _s, m in plan_a]
        members_b = [m for _s, m in plan_b]
        assert members_a != members_b
