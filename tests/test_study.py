"""Tests for the memoized study context."""

import pytest

from repro.study import DEFAULT_SEED, Study, get_study


class TestMemoization:
    def test_get_study_cached(self):
        assert get_study() is get_study()

    def test_lazy_construction(self):
        from repro.study import StudyConfig
        fresh = Study(StudyConfig(seed=12345))
        assert fresh._world is None
        assert fresh._certificates is None

    def test_config_first_does_not_warn(self, recwarn):
        from repro.study import StudyConfig
        Study(StudyConfig(seed=12346))
        get_study()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_bare_seed_positional_raises(self):
        with pytest.raises(TypeError,
                           match=r"get_study\(2023\) was removed.*"
                                 r"StudyConfig\(seed=2023\)"):
            get_study(DEFAULT_SEED)

    def test_get_study_seed_keyword_raises(self):
        with pytest.raises(TypeError,
                           match=r"get_study\(seed=2023\) was "
                                 r"removed.*StudyConfig\(seed=2023\)"):
            get_study(seed=DEFAULT_SEED)

    def test_study_seed_keyword_raises(self):
        with pytest.raises(TypeError,
                           match=r"Study\(seed=4242\) was "
                                 r"removed.*StudyConfig\(seed=4242\)"):
            Study(seed=4242)

    def test_config_plus_seed_rejected(self):
        from repro.study import StudyConfig
        with pytest.raises(TypeError, match="was removed"):
            Study(StudyConfig(seed=1), seed=2)
        with pytest.raises(TypeError, match="was removed"):
            get_study(StudyConfig(seed=1), seed=2)

    def test_world_built_once(self, study):
        assert study.world is study.world
        assert study.dataset is study.dataset
        assert study.network is study.network
        assert study.certificates is study.certificates

    def test_corpus_shared_shape(self, study):
        assert len(study.corpus) == 6891


class TestValidatorFactory:
    def test_fresh_validator_instances(self, study):
        a, b = study.validator(), study.validator()
        assert a is not b
        assert a.store is b.store

    def test_validator_uses_union_store(self, study):
        validator = study.validator()
        for ca in study.ecosystem.public.values():
            assert validator.store.contains(ca.root)


class TestSeedIsolation:
    def test_different_seed_different_capture(self):
        # Use a tiny probe of divergence that doesn't rebuild everything:
        # the generators' commodity plans already differ.
        from repro.inspector.generator import WorldGenerator
        plan_a = WorldGenerator(seed=1)._build_commodity_pool()
        plan_b = WorldGenerator(seed=2)._build_commodity_pool()
        members_a = [m for _s, m in plan_a]
        members_b = [m for _s, m in plan_b]
        assert members_a != members_b
