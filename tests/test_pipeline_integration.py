"""Integration test: the one-call pipeline runs every analysis coherently."""

import pytest

from repro.core import pipeline
from repro.core.tables import percent, render_cdf, render_table, truncate_fp


@pytest.fixture(scope="module")
def results(study):
    return pipeline.run_full_study(study)


class TestPipelineCompleteness:
    CLIENT_KEYS = {
        "matching", "degree_distribution", "doc_vendor", "doc_device",
        "heterogeneity", "vulnerability", "jaccard_pairs",
        "server_tie_fraction", "server_ties", "semantic_summary",
        "versions", "fallback", "ocsp", "grease",
        "lowest_vulnerable_index", "clean_vendors",
        "preferred_components", "ml_attribution",
    }
    SERVER_KEYS = {
        "probe_stats", "issuers", "survey", "validation_failures",
        "private_issuer_rows", "expired", "ct", "netflix",
        "ct_private_figure", "slds", "sld_stats", "geo", "lab",
    }

    def test_client_keys(self, results):
        assert set(results["client"]) == self.CLIENT_KEYS

    def test_server_keys(self, results):
        assert set(results["server"]) == self.SERVER_KEYS


class TestCrossAnalysisConsistency:
    def test_doc_vendor_covers_all_vendors(self, results, dataset):
        assert set(results["client"]["doc_vendor"]) == \
            set(dataset.vendor_names())

    def test_vulnerable_fraction_agrees_with_graph(self, results, dataset):
        from repro.core.graphs import graph_summary, vendor_fingerprint_graph
        summary = graph_summary(vendor_fingerprint_graph(dataset))
        vulnerable = summary["fingerprints_by_security"].get("Vulnerable", 0)
        report = results["client"]["vulnerability"]
        assert vulnerable == report.vulnerable_fingerprints

    def test_issuer_counts_agree_with_certificates(self, results,
                                                   certificates):
        report = results["server"]["issuers"]
        assert report.leaf_count == \
            len(certificates.leaf_certificates())

    def test_expired_domains_fail_validation(self, results):
        survey = results["server"]["survey"]
        expired_domains = {row.domain for row in results["server"]["expired"]}
        failing = {fqdn for fqdn, report in survey.reports.items()
                   if report.expired}
        from repro.x509.names import second_level_domain
        assert expired_domains <= {second_level_domain(f) for f in failing}

    def test_netflix_rows_consistent_with_ct_report(self, results):
        ct_report = results["server"]["ct"]
        netflix_points = [p for p in ct_report.points
                          if p.issuer == "Netflix"]
        assert netflix_points
        assert not any(p.in_ct for p in netflix_points)

    def test_sld_stats_match_rows(self, results):
        stats = results["server"]["sld_stats"]
        rows = results["server"]["slds"]
        assert stats["sld_count"] == len(rows)
        assert stats["max_devices"] == max(r.device_count for r in rows)


class TestTableRendering:
    def test_percent(self):
        assert percent(0.4726) == "47.26%"
        assert percent(1.0, digits=0) == "100%"

    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [["x", 1], ["yy", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_render_cdf(self):
        cdf = render_cdf([0.0, 0.5, 1.0])
        assert cdf[0.0] == pytest.approx(1 / 3)
        assert cdf[1.0] == 1.0
        assert render_cdf([])[0.5] == 0.0

    def test_truncate_fp_stable(self):
        fp = (0x0303, (1, 2), (3,))
        assert truncate_fp(fp) == truncate_fp(fp)
        assert len(truncate_fp(fp)) == 12
