"""Fault-injection tests for the remote artifact store (``repro.store.remote``).

The contract under test: **every defect degrades to a retriable miss,
never to a corrupt cache hit.**  A truncated blob, a flipped payload
byte, a version-skewed header, a server-side forgery, an HTTP 500
mid-upload, and a dead endpooint each count a taxonomy metric and make
the caller recompute; nothing defective is ever admitted to the
client-side LRU, whose eviction order is itself deterministic.
"""

import pickle
import socket
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.config import StudyConfig
from repro.fabric import FabricCoordinator, make_fabric_server
from repro.store import (MISS, ArtifactStore, BlobCache,
                         RemoteArtifactStore, StoreUnreachable)
from repro.store.backend import http_spec, local_spec, store_from_spec
from repro.store.campaign import CampaignIndex
from repro.sweep import expand_grid


@pytest.fixture
def config():
    return StudyConfig()


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _BlobServer:
    """A live fabric server wrapping one on-disk blob store."""

    def __init__(self, tmp_path):
        index = CampaignIndex.create(
            tmp_path / "campaign.json",
            [{"name": "u0", "key": "0" * 64, "seed": 0}], "probe")
        self.store = ArtifactStore(tmp_path / "blobs")
        self.server, self.service = make_fabric_server(
            FabricCoordinator(index), blob_store=self.store)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def blob_server(tmp_path):
    live = _BlobServer(tmp_path)
    yield live
    live.close()


class TestRoundTrip:
    def test_put_get_across_clients_and_backends(self, blob_server,
                                                 config):
        writer = RemoteArtifactStore(blob_server.url)
        key = writer.put(config, "certificates", {"value": 42})
        assert key == writer.key(config, "certificates")

        # A fresh client (cold LRU) reads it back over the network.
        reader = RemoteArtifactStore(blob_server.url)
        assert reader.get(config, "certificates") == {"value": 42}
        assert reader.provenance()["hits"] == ["certificates"]

        # The same blob is a *local* store hit too: one wire format,
        # byte-identical keys — campaigns can switch backends freely.
        local = ArtifactStore(blob_server.store.root)
        assert local.get(config, "certificates") == {"value": 42}
        assert local.key(config, "certificates") == key

    def test_lru_survives_a_dead_server(self, blob_server, config):
        client = RemoteArtifactStore(blob_server.url)
        client.put(config, "certificates", "payload")
        blob_server.close()
        # Warm worker keeps working: the verified blob serves from LRU.
        assert client.get(config, "certificates") == "payload"
        assert client.provenance()["lru_entries"] == 1

    def test_get_or_compute_computes_once(self, blob_server, config):
        calls = []

        def compute():
            calls.append(1)
            return {"expensive": True}

        first = RemoteArtifactStore(blob_server.url)
        assert first.get_or_compute(config, "stage", compute) == \
            {"expensive": True}
        second = RemoteArtifactStore(blob_server.url)
        assert second.get_or_compute(config, "stage", compute) == \
            {"expensive": True}
        assert calls == [1]  # the second client hit the remote store

    def test_missing_blob_is_a_miss(self, blob_server, config):
        client = RemoteArtifactStore(blob_server.url)
        assert client.get(config, "never-written") is MISS
        assert client.provenance()["misses"] == ["never-written"]


class TestFaultInjection:
    """Every defect = a retriable miss; corrupt bytes never cached."""

    def _written(self, blob_server, config, stage="certificates"):
        client = RemoteArtifactStore(blob_server.url)
        key = client.put(config, stage, {"value": 42})
        return key, blob_server.store.blob_path(key)

    def test_truncated_blob_is_retriable_miss(self, blob_server,
                                              config):
        key, path = self._written(blob_server, config)
        whole = path.read_bytes()
        path.write_bytes(whole[:len(whole) // 2])
        with obs.enabled() as ctx:
            victim = RemoteArtifactStore(blob_server.url)
            assert victim.get(config, "certificates") is MISS
            counters = ctx.metrics.snapshot()["families"]
        assert counters["store.corrupt"] == {"certificates": 1}
        assert len(victim.cache) == 0  # defect never admitted
        # Retriable: once the blob heals, the same client hits.
        path.write_bytes(whole)
        assert victim.get(config, "certificates") == {"value": 42}

    def test_checksum_mismatch_is_miss_and_never_cached(
            self, blob_server, config):
        key, path = self._written(blob_server, config)
        whole = bytearray(path.read_bytes())
        whole[-1] ^= 0xFF  # flip one payload byte; header stays intact
        path.write_bytes(bytes(whole))
        victim = RemoteArtifactStore(blob_server.url)
        assert victim.get(config, "certificates") is MISS
        assert len(victim.cache) == 0
        assert victim.provenance()["misses"] == ["certificates"]

    def test_version_skew_is_a_miss(self, blob_server, config):
        old = RemoteArtifactStore(blob_server.url, version="1.0.0")
        old.put(config, "certificates", "old bytes")
        new = RemoteArtifactStore(blob_server.url, version="2.0.0")
        # Different version → different content key → clean 404 miss.
        assert new.get(config, "certificates") is MISS
        assert old.get(config, "certificates") == "old bytes"

    def test_server_side_forgery_is_rejected_by_header_check(
            self, blob_server, config):
        # An attacker (or a bad rsync) plants the old-version blob
        # under the new version's key, bypassing PUT validation.
        old = RemoteArtifactStore(blob_server.url, version="1.0.0")
        old_key = old.put(config, "certificates", "old bytes")
        new = RemoteArtifactStore(blob_server.url, version="2.0.0")
        forged_key = new.key(config, "certificates")
        forged_path = blob_server.store.blob_path(forged_key)
        forged_path.parent.mkdir(parents=True, exist_ok=True)
        forged_path.write_bytes(
            blob_server.store.blob_path(old_key).read_bytes())
        with obs.enabled() as ctx:
            assert new.get(config, "certificates") is MISS
            counters = ctx.metrics.snapshot()["families"]
        assert counters["store.corrupt"] == {"certificates": 1}
        assert len(new.cache) == 0

    def test_http_500_mid_upload_is_retriable(self, blob_server,
                                              config, monkeypatch):
        client = RemoteArtifactStore(blob_server.url)
        monkeypatch.setattr(blob_server.service, "handle",
                            lambda *a, **k: (500, {"error": "boom"}))
        with obs.enabled() as ctx:
            assert client.put(config, "certificates", "value") is None
            counters = ctx.metrics.snapshot()["families"]
        assert counters["store.remote_errors"] == {"put:500": 1}
        assert client.provenance()["errors"] == ["certificates"]
        # The failed upload was NOT admitted to the LRU: a later get
        # retries the network instead of serving bytes nobody else saw.
        assert len(client.cache) == 0
        monkeypatch.undo()
        assert client.put(config, "certificates", "value") is not None
        assert client.get(config, "certificates") == "value"

    def test_http_500_on_get_counts_taxonomy(self, blob_server,
                                             config, monkeypatch):
        client = RemoteArtifactStore(blob_server.url)
        monkeypatch.setattr(blob_server.service, "handle",
                            lambda *a, **k: (500, {"error": "boom"}))
        with obs.enabled() as ctx:
            assert client.get(config, "certificates") is MISS
            counters = ctx.metrics.snapshot()["families"]
        assert counters["store.remote_errors"] == {"get:500": 1}

    def test_unreachable_server_is_miss_and_ping_raises(self, config):
        url = f"http://127.0.0.1:{_free_port()}"
        client = RemoteArtifactStore(url, timeout=0.5)
        assert client.get(config, "certificates") is MISS
        assert client.put(config, "certificates", "value") is None
        with pytest.raises(StoreUnreachable) as err:
            client.ping()
        message = str(err.value)
        assert "\n" not in message  # the one-line CLI contract
        assert "unreachable" in message

    def test_unpicklable_value_is_counted_not_fatal(self, blob_server,
                                                    config):
        client = RemoteArtifactStore(blob_server.url)
        assert client.put(config, "stage", lambda: None) is None
        assert client.provenance()["errors"] == ["stage"]


class TestBlobCacheLRU:
    def test_eviction_order_is_deterministic(self):
        cache = BlobCache(capacity=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.keys() == ["a", "b"]  # LRU first
        assert cache.get("a") == b"1"  # refreshes a past b
        cache.put("c", b"3")  # evicts b, the least recently used
        assert cache.evicted == ["b"]
        assert cache.keys() == ["a", "c"]
        cache.put("d", b"4")
        assert cache.evicted == ["b", "a"]
        assert cache.get("b") is None

    def test_discard_and_len(self):
        cache = BlobCache(capacity=4)
        cache.put("a", b"1")
        assert len(cache) == 1
        cache.discard("a")
        assert len(cache) == 0 and cache.evicted == []

    def test_client_respects_capacity(self, blob_server, config):
        client = RemoteArtifactStore(blob_server.url, cache_entries=1)
        client.put(config, "stage-a", "a")
        client.put(config, "stage-b", "b")
        assert len(client.cache) == 1
        assert client.provenance()["lru_evicted"] == 1
        # The evicted entry is still correct — it just round-trips.
        assert client.get(config, "stage-a") == "a"


class TestStoreBackendSpecs:
    def test_spec_round_trips(self, tmp_path):
        spec = local_spec(tmp_path / "cache")
        store = store_from_spec(spec)
        assert isinstance(store, ArtifactStore)
        assert store_from_spec(None) is None
        remote = store_from_spec(http_spec(url="http://example:1"))
        assert isinstance(remote, RemoteArtifactStore)
        assert remote.base_url == "http://example:1"

    def test_unresolved_http_spec_is_an_error(self, tmp_path):
        spec = http_spec(cache_dir=tmp_path)  # no url: coordinator's job
        with pytest.raises(ValueError, match="coordinator"):
            store_from_spec(spec)
        with pytest.raises(ValueError):
            http_spec()
        with pytest.raises(ValueError, match="backend"):
            store_from_spec({"backend": "carrier-pigeon"})


class TestSweepResumeUnreachableStore:
    def test_resume_exits_2_with_one_line_error(self, tmp_path,
                                                capsys):
        # A ledger whose store backend died: resume must fail fast with
        # a one-line error, not a ConnectionError traceback.
        out = tmp_path / "campaign"
        out.mkdir()
        units = expand_grid(StudyConfig(), seeds=1, stage="probe")
        url = f"http://127.0.0.1:{_free_port()}"
        CampaignIndex.create(out / "campaign.json",
                             [unit.to_json() for unit in units],
                             "probe", store={"backend": "http",
                                             "url": url})
        assert main(["sweep", "resume", "--out", str(out)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("sweep resume: ")
        assert err.count("\n") == 1  # exactly one line
        assert "Traceback" not in err
