"""Unit tests for TLS version constants."""

import pytest

from repro.tlslib.versions import DEPRECATED_VERSIONS, TLSVersion


class TestWireValues:
    def test_tls12_wire_value(self):
        assert int(TLSVersion.TLS_1_2) == 0x0303

    def test_ssl3_wire_value(self):
        assert int(TLSVersion.SSL_3_0) == 0x0300

    def test_major_minor_split(self):
        assert TLSVersion.TLS_1_2.major == 3
        assert TLSVersion.TLS_1_2.minor == 3
        assert TLSVersion.SSL_3_0.minor == 0

    def test_from_wire_roundtrip(self):
        for version in TLSVersion:
            assert TLSVersion.from_wire(int(version)) is version

    def test_from_wire_rejects_unknown(self):
        with pytest.raises(ValueError):
            TLSVersion.from_wire(0x0305)


class TestPrettyNames:
    def test_pretty(self):
        assert TLSVersion.TLS_1_2.pretty == "TLS 1.2"
        assert TLSVersion.SSL_3_0.pretty == "SSL 3.0"

    def test_from_pretty_roundtrip(self):
        for version in TLSVersion:
            assert TLSVersion.from_pretty(version.pretty) is version

    def test_from_pretty_rejects_unknown(self):
        with pytest.raises(ValueError):
            TLSVersion.from_pretty("TLS 2.0")


class TestOrdering:
    def test_versions_totally_ordered(self):
        assert TLSVersion.SSL_3_0 < TLSVersion.TLS_1_0 < TLSVersion.TLS_1_1 \
            < TLSVersion.TLS_1_2 < TLSVersion.TLS_1_3

    def test_deprecated_set(self):
        assert TLSVersion.TLS_1_2 not in DEPRECATED_VERSIONS
        assert TLSVersion.SSL_3_0 in DEPRECATED_VERSIONS
        assert TLSVersion.TLS_1_0 in DEPRECATED_VERSIONS
