"""Unit tests for the known-library fingerprint models and corpus."""

import pytest

from repro.libraries import build_default_corpus, fingerprint_key
from repro.libraries import curl, mbedtls, openssl, wolfssl
from repro.libraries.base import version_sort_key
from repro.tlslib.ciphersuites import suite_by_code
from repro.tlslib.versions import TLSVersion


class TestVersionSortKey:
    @pytest.mark.parametrize("smaller,larger", [
        ("1.0.1", "1.0.2"),
        ("1.0.2a", "1.0.2b"),
        ("1.0.2", "1.0.2a"),
        ("7.19.0", "7.33.0"),
        ("7.9.0", "7.33.0"),          # numeric, not lexical
        ("2.16.4", "2.16.10"),
        ("3.9.10-stable", "3.10.2-stable"),
    ])
    def test_ordering(self, smaller, larger):
        assert version_sort_key(smaller) < version_sort_key(larger)


class TestOpenSSL:
    def test_paper_version_count(self):
        assert len(openssl.fingerprints()) == 19

    def test_100_is_tls10(self):
        fingerprint = openssl.fingerprint_for("1.0.0t")
        assert fingerprint.tls_version == TLSVersion.TLS_1_0

    def test_101_adds_tls12_aead(self):
        fingerprint = openssl.fingerprint_for("1.0.1u")
        assert fingerprint.tls_version == TLSVersion.TLS_1_2
        names = {suite_by_code(c).name for c in fingerprint.ciphersuites}
        assert "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256" in names

    def test_freak_removes_export_suites(self):
        before = openssl.fingerprint_for("1.0.0m")
        after = openssl.fingerprint_for("1.0.0q")
        has_export = lambda fp: any(
            suite_by_code(c).is_export for c in fp.ciphersuites)
        assert has_export(before)
        assert not has_export(after)

    def test_wyze_case_102f_equals_102u(self):
        # The paper's Wyze validation: 1.0.2f/1.0.2o/1.0.2u share a
        # fingerprint.
        assert openssl.fingerprint_for("1.0.2f").key() == \
            openssl.fingerprint_for("1.0.2u").key()

    def test_110_drops_rc4(self):
        fingerprint = openssl.fingerprint_for("1.1.0l")
        assert not any("RC4" in (suite_by_code(c).cipher or "")
                       for c in fingerprint.ciphersuites)

    def test_111_proposes_tls13(self):
        fingerprint = openssl.fingerprint_for("1.1.1i")
        assert fingerprint.tls_version == TLSVersion.TLS_1_3

    def test_only_111_supported_in_2020(self):
        supported = {fp.version for fp in openssl.fingerprints()
                     if fp.supported_in_2020}
        assert all(v.startswith("1.1.1") for v in supported)

    def test_renegotiation_scsv_always_last(self):
        from repro.tlslib.ciphersuites import EMPTY_RENEGOTIATION_INFO_SCSV
        for fingerprint in openssl.fingerprints():
            assert fingerprint.ciphersuites[-1] == \
                EMPTY_RENEGOTIATION_INFO_SCSV

    def test_unmodelled_branch_rejected(self):
        with pytest.raises(ValueError):
            openssl.config_for_version("0.9.8")


class TestWolfSSL:
    def test_paper_version_count(self):
        assert len(wolfssl.fingerprints()) == 38

    def test_cyassl_era_minimal(self):
        fingerprint = wolfssl.fingerprint_for("1.8.0")
        assert fingerprint.tls_version == TLSVersion.TLS_1_0
        assert fingerprint.extensions == ()
        assert len(fingerprint.ciphersuites) <= 6

    def test_v3_gains_ecdhe(self):
        fingerprint = wolfssl.fingerprint_for("3.9.0")
        kxs = {suite_by_code(c).kx for c in fingerprint.ciphersuites}
        assert "ECDHE_RSA" in kxs

    def test_v4_tls13(self):
        fingerprint = wolfssl.fingerprint_for("4.0.0-stable")
        assert fingerprint.tls_version == TLSVersion.TLS_1_3

    def test_consecutive_versions_share_fingerprints(self):
        keys = [fp.key() for fp in wolfssl.fingerprints()]
        assert len(set(keys)) < len(keys)


class TestMbedTLS:
    def test_paper_version_count(self):
        assert len(mbedtls.fingerprints()) == 113

    def test_polarssl_naming_split(self):
        assert mbedtls.fingerprint_for("1.2.8").library == "PolarSSL"
        assert mbedtls.fingerprint_for("2.7.0").library == "Mbed TLS"

    def test_early_polarssl_tls11(self):
        fingerprint = mbedtls.fingerprint_for("0.14.0")
        assert fingerprint.tls_version == TLSVersion.TLS_1_1

    def test_2x_drops_rc4(self):
        fingerprint = mbedtls.fingerprint_for("2.1.0")
        ciphers = {suite_by_code(c).cipher for c in fingerprint.ciphersuites}
        assert not any(c and c.startswith("RC4") for c in ciphers)

    def test_27_drops_3des(self):
        older = mbedtls.fingerprint_for("2.6.0")
        newer = mbedtls.fingerprint_for("2.7.0")
        has_3des = lambda fp: any(
            (suite_by_code(c).cipher or "").startswith("3DES")
            for c in fp.ciphersuites)
        assert has_3des(older)
        assert not has_3des(newer)

    def test_216_is_lts_supported(self):
        assert mbedtls.fingerprint_for("2.16.4").supported_in_2020


class TestCurlGrids:
    def test_grid_sizes_match_paper(self):
        assert len(curl.openssl_build_fingerprints()) == 5591
        assert len(curl.wolfssl_build_fingerprints()) == 1130

    def test_alpn_from_733(self):
        from repro.tlslib.extensions import ExtensionType
        old = curl._build("7.30.0", "OpenSSL", openssl, "1.0.1u")
        new = curl._build("7.40.0", "OpenSSL", openssl, "1.0.1u")
        alpn = int(ExtensionType.APPLICATION_LAYER_PROTOCOL_NEGOTIATION)
        assert alpn not in old.extensions
        assert alpn in new.extensions

    def test_npn_only_with_openssl(self):
        from repro.tlslib.extensions import ExtensionType
        npn = int(ExtensionType.NEXT_PROTOCOL_NEGOTIATION)
        with_openssl = curl._build("7.40.0", "OpenSSL", openssl, "1.0.1u")
        with_wolfssl = curl._build("7.40.0", "wolfSSL", wolfssl, "3.9.0")
        assert npn in with_openssl.extensions
        assert npn not in with_wolfssl.extensions

    def test_backend_suites_inherited(self):
        build = curl._build("7.52.1", "OpenSSL", openssl, "1.0.2u")
        base = openssl.fingerprint_for("1.0.2u")
        assert build.ciphersuites == base.ciphersuites


class TestCorpus:
    def test_total_size_matches_paper(self, corpus):
        assert len(corpus) == 6891

    def test_families_present(self, corpus):
        assert set(corpus.libraries()) == {
            "OpenSSL", "wolfSSL", "PolarSSL", "Mbed TLS",
            "curl+OpenSSL", "curl+wolfSSL"}

    def test_exact_match_returns_highest_version(self, corpus):
        target = openssl.fingerprint_for("1.0.2f")
        match = corpus.match(target.tls_version, target.ciphersuites,
                             target.extensions)
        assert match is not None
        # 1.0.2f and 1.0.2u share a fingerprint; the match reports the
        # later end of the range.
        assert "1.0.2u" in match.version

    def test_no_match_for_custom_fingerprint(self, corpus):
        assert corpus.match(TLSVersion.TLS_1_2, (0xC02F, 0x1301), (0,)) \
            is None

    def test_match_all_spans_versions(self, corpus):
        target = openssl.fingerprint_for("1.0.2u")
        all_matches = corpus.match_all(target.tls_version,
                                       target.ciphersuites,
                                       target.extensions)
        assert len(all_matches) > 1

    def test_fingerprint_key_helper(self):
        key = fingerprint_key(TLSVersion.TLS_1_2, [1, 2], [3])
        assert key == (0x0303, (1, 2), (3,))
