"""Tests for the parallel probe engine, retry path, and StudyConfig."""

import random

import pytest

from repro.config import StudyConfig
from repro.probing.engine import (
    FaultInjector,
    InjectedReset,
    LatencyModel,
    ProbeEngine,
    ProbeStats,
    RetryPolicy,
    SlowResponse,
    TransientFailure,
)
from repro.probing.prober import Prober
from repro.probing.vantage import VANTAGE_POINTS
from repro.study import get_study

#: Enough SNIs to cover reachable, unreachable, shared, and geo-variant
#: endpoints without probing the full matrix in every test.
SUBSET = 180


@pytest.fixture(scope="module")
def snis(study):
    return [spec.fqdn for spec in study.world.servers][:SUBSET]


@pytest.fixture(scope="module")
def serial_subset(network, snis):
    return Prober(network).probe_all(snis)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_delay(a, rng) for a in (1, 2, 3)]
        assert delays == [0.1, 0.2, 0.4]

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5)
        a = policy.backoff_delay(1, random.Random(42))
        b = policy.backoff_delay(1, random.Random(42))
        assert a == b
        assert 1.0 <= a <= 1.5

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_frozen_and_hashable(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.max_attempts = 5
        assert hash(policy) == hash(RetryPolicy())


class TestFaultInjector:
    def test_plan_deterministic_and_bounded(self, network):
        a = FaultInjector(network, transient_rate=0.5)
        b = FaultInjector(network, transient_rate=0.5)
        fqdns = list(network.endpoints)[:50]
        plans = [a.fault_plan(f, "us") for f in fqdns]
        assert plans == [b.fault_plan(f, "us") for f in fqdns]
        assert any(plans), "expected some endpoints to draw faults"
        assert max(len(p) for p in plans) <= a.max_faulty_attempts

    def test_faults_clear_after_plan(self, study, network):
        spec = study.world.reachable_servers()[0]
        injector = FaultInjector(network, transient_rate=1.0,
                                 max_faulty_attempts=2)
        prober = Prober(injector)
        for _ in range(2):
            with pytest.raises(TransientFailure):
                prober.probe_one(spec.fqdn, VANTAGE_POINTS[0])
        result = prober.probe_one(spec.fqdn, VANTAGE_POINTS[0])
        assert result.reachable and result.leaf is not None

    def test_fault_kinds(self, network):
        injector = FaultInjector(network, reset_rate=1.0)
        assert injector.fault_plan("x.example", "us")[0] == "reset"
        slow = FaultInjector(network, slow_rate=1.0)
        assert slow.fault_plan("x.example", "us")[0] == "slow"

    def test_reset_clears_history(self, study, network):
        spec = study.world.reachable_servers()[0]
        injector = FaultInjector(network, transient_rate=1.0,
                                 max_faulty_attempts=1)
        prober = Prober(injector)
        with pytest.raises(TransientFailure):
            prober.probe_one(spec.fqdn, VANTAGE_POINTS[0])
        assert prober.probe_one(spec.fqdn, VANTAGE_POINTS[0]).reachable
        injector.reset()
        with pytest.raises(TransientFailure):
            prober.probe_one(spec.fqdn, VANTAGE_POINTS[0])


class TestEngineDeterminism:
    def test_parallel_equals_serial_seed_2023(self, network, snis,
                                              serial_subset):
        parallel = ProbeEngine(network, jobs=4).probe_all(snis)
        assert parallel.fingerprint() == serial_subset.fingerprint()
        assert [r.fqdn for r in parallel.results] == \
            [r.fqdn for r in serial_subset.results]
        assert [r.vantage for r in parallel.results] == \
            [r.vantage for r in serial_subset.results]

    def test_parallel_equals_serial_seed_7(self):
        study7 = get_study(StudyConfig(seed=7))
        snis7 = [spec.fqdn for spec in study7.world.servers][:SUBSET]
        serial = Prober(study7.network).probe_all(snis7)
        parallel = ProbeEngine(study7.network, jobs=4).probe_all(snis7)
        assert parallel.fingerprint() == serial.fingerprint()

    def test_full_matrix_parallel_equals_serial(self, network,
                                                certificates, study):
        # The session dataset was probed through the engine (study
        # config); compare against the serial reference prober.
        snis = [spec.fqdn for spec in study.world.servers]
        serial = Prober(network).probe_all(snis)
        assert serial.fingerprint() == certificates.fingerprint()

    def test_worker_count_does_not_change_output(self, network, snis):
        prints = {ProbeEngine(network, jobs=j).probe_all(snis).fingerprint()
                  for j in (1, 2, 8)}
        assert len(prints) == 1


class TestRetryPath:
    def test_transient_failures_recover_within_budget(self, network, snis,
                                                      serial_subset):
        injector = FaultInjector(network, transient_rate=0.2)
        engine = ProbeEngine(injector, jobs=4,
                             retry=RetryPolicy(max_attempts=3),
                             seed=network.seed)
        dataset = engine.probe_all(snis)
        assert dataset.fingerprint() == serial_subset.fingerprint()
        assert dataset.reachable_fqdns() == \
            serial_subset.reachable_fqdns()
        assert dataset.stats.retries > 0
        assert dataset.stats.exhausted == 0
        assert dataset.stats.faults["transient"] == dataset.stats.retries

    def test_exhausted_budget_yields_classified_error(self, network,
                                                      snis):
        injector = FaultInjector(network, transient_rate=1.0,
                                 max_faulty_attempts=5)
        engine = ProbeEngine(injector, jobs=2,
                             retry=RetryPolicy(max_attempts=3),
                             seed=network.seed)
        dataset = engine.probe_all(snis[:10])
        for result in dataset.results:
            assert not result.reachable
            assert "retry budget exhausted" in result.error
            assert "transient" in result.error
        stats = dataset.stats
        assert stats.exhausted == len(dataset)
        assert stats.outcomes["exhausted_transient"] == len(dataset)
        assert stats.attempts == 3 * len(dataset)

    def test_slow_responses_count_as_timeouts(self, network, snis):
        injector = FaultInjector(network, slow_rate=1.0,
                                 max_faulty_attempts=1)
        engine = ProbeEngine(injector, jobs=2, seed=network.seed)
        dataset = engine.probe_all(snis[:10])
        # one slow attempt per probe: 10 SNIs x 3 vantages.
        assert dataset.stats.faults["timeout"] == len(dataset) == 30
        assert dataset.stats.exhausted == 0

    def test_mixed_fault_modes_classified(self, network, snis):
        injector = FaultInjector(network, transient_rate=0.2,
                                 reset_rate=0.2, slow_rate=0.2)
        engine = ProbeEngine(injector, jobs=4, seed=network.seed)
        dataset = engine.probe_all(snis)
        categories = set(dataset.stats.faults)
        assert categories <= {"transient", "reset", "timeout"}
        assert len(categories) >= 2


class TestLatencyModel:
    def test_rtt_deterministic_and_regional(self):
        model = LatencyModel(seed=3)
        assert model.rtt("a.example", "us") == model.rtt("a.example", "us")
        us = [model.rtt(f"h{i}.example", "us") for i in range(50)]
        asia = [model.rtt(f"h{i}.example", "asia") for i in range(50)]
        assert sum(asia) / len(asia) > sum(us) / len(us)

    def test_engine_buckets_latencies(self, network, snis):
        engine = ProbeEngine(network, jobs=2,
                             latency=LatencyModel(seed=network.seed))
        dataset = engine.probe_all(snis[:30])
        # time_scale=0: latencies are recorded but never slept.
        assert sum(dataset.stats.latency_buckets.values()) == \
            dataset.stats.attempts
        assert set(dataset.stats.latency_buckets) <= \
            {"<10ms", "<50ms", "<100ms", "<250ms", ">=250ms"}


class TestProbeStats:
    def test_attempt_accounting(self, network, snis, serial_subset):
        engine = ProbeEngine(network, jobs=4)
        stats = engine.probe_all(snis).stats
        assert stats.probes == len(snis) * 3
        assert stats.attempts == stats.probes + stats.retries
        assert sum(stats.reachable_by_vantage.values()) + \
            sum(stats.unreachable_by_vantage.values()) == stats.probes
        assert stats.outcomes["ok"] <= stats.probes
        assert stats.wall_seconds > 0

    def test_to_json_schema(self, network, snis):
        stats = ProbeEngine(network, jobs=2).probe_all(snis[:10]).stats
        payload = stats.to_json()
        assert {"probes", "attempts", "retries", "exhausted", "outcomes",
                "faults", "latency_buckets", "reachable_by_vantage",
                "unreachable_by_vantage", "wall_seconds"} <= set(payload)

    def test_summary_renders(self, network, snis):
        stats = ProbeEngine(network, jobs=2).probe_all(snis[:10]).stats
        text = stats.summary()
        assert "probes" in text and "outcomes" in text


class TestResultSerialization:
    def test_to_json_reachable_row(self, study, certificates):
        fqdn = study.world.reachable_servers()[0].fqdn
        row = certificates.result(fqdn).to_json(
            ct_logs=study.network.ct_logs)
        assert row["fqdn"] == fqdn
        assert row["reachable"] is True
        assert {"issuer", "validity_days", "not_after", "chain_length",
                "stapled", "in_ct"} <= set(row)

    def test_to_json_unreachable_row(self, study, certificates):
        dead = next(s for s in study.world.servers if s.unreachable)
        row = certificates.result(dead.fqdn).to_json()
        assert row["reachable"] is False
        assert row["error"]
        assert "issuer" not in row

    def test_dataset_rows_sorted_and_complete(self, study, certificates):
        rows = certificates.to_json_rows(ct_logs=study.network.ct_logs)
        assert len(rows) == len(study.world.servers)
        assert [r["fqdn"] for r in rows] == \
            sorted(r["fqdn"] for r in rows)


class TestStudyConfig:
    def test_frozen_hashable_defaults(self):
        config = StudyConfig()
        assert config == StudyConfig(seed=2023)
        assert hash(config) == hash(StudyConfig())
        with pytest.raises(AttributeError):
            config.seed = 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(probe_jobs=0)
        with pytest.raises(ValueError):
            StudyConfig(trust_stores=("mozilla", "netscape"))
        with pytest.raises(ValueError):
            StudyConfig(vantages=())

    def test_get_study_memoizes_per_config(self, study):
        assert get_study(StudyConfig()) is study
        # The bare-seed shim finished its deprecation cycle: both
        # legacy spellings now fail with the migration hint.
        with pytest.raises(TypeError, match="was removed"):
            get_study(seed=2023)
        with pytest.raises(TypeError, match="was removed"):
            get_study(2023)

    def test_config_and_seed_conflict(self):
        with pytest.raises(TypeError, match="was removed"):
            get_study(StudyConfig(seed=1), seed=2)

    def test_probe_jobs_config_changes_only_wallclock(self, study,
                                                      certificates):
        parallel_study = get_study(StudyConfig(probe_jobs=4))
        assert parallel_study is not study
        assert parallel_study.world is study.world  # seed-shared
        assert parallel_study.certificates.fingerprint() == \
            certificates.fingerprint()

    def test_trust_store_selection(self, study):
        mozilla_only = get_study(
            StudyConfig(trust_stores=("mozilla",)))
        store = mozilla_only.validator().store
        assert store is mozilla_only.ecosystem.stores["mozilla"] or \
            len(store) <= len(study.ecosystem.union_store)
        assert study.validator().store is study.ecosystem.union_store

    def test_with_seed(self):
        derived = StudyConfig(probe_jobs=4).with_seed(7)
        assert derived.seed == 7
        assert derived.probe_jobs == 4
