"""Unit tests for certificate authorities."""

import random

import pytest

from repro.x509.ca import CertificateAuthority, IssuancePolicy
from repro.x509.ct import CTLogSet
from repro.x509.errors import IssuanceError

NOW = 1_600_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def public_ca():
    return CertificateAuthority(
        "TestiCert", is_public_trust=True,
        policy=IssuancePolicy(validity_days=397, logs_to_ct=True),
        rng=random.Random(5), now=NOW,
        intermediate_names=("TestiCert Issuing CA",))


@pytest.fixture(scope="module")
def private_ca():
    return CertificateAuthority(
        "GadgetCo", is_public_trust=False,
        policy=IssuancePolicy(validity_days=7300, logs_to_ct=False),
        rng=random.Random(6), now=NOW)


class TestStructure:
    def test_root_is_self_signed_ca(self, public_ca):
        assert public_ca.root.is_self_signed()
        assert public_ca.root.is_ca

    def test_intermediate_chains_to_root(self, public_ca):
        intermediate = public_ca.intermediates[0]
        intermediate.verify_signature(public_ca.root.public_key)
        assert intermediate.is_ca

    def test_leafs_signed_by_intermediate(self, public_ca):
        leaf, _key = public_ca.issue_leaf("host.example.com", now=NOW)
        intermediate = public_ca.intermediates[0]
        leaf.verify_signature(intermediate.public_key)
        assert str(leaf.issuer) == str(intermediate.subject)

    def test_root_signing_without_intermediates(self, private_ca):
        leaf, _key = private_ca.issue_leaf("cloud.gadgetco.io", now=NOW)
        leaf.verify_signature(private_ca.root.public_key)

    def test_add_intermediate_extends_chain(self):
        ca = CertificateAuthority("Deep", is_public_trust=False,
                                  rng=random.Random(9), now=NOW)
        ca.add_intermediate("Deep Sub 1", now=NOW)
        ca.add_intermediate("Deep Sub 2", now=NOW)
        leaf, _ = ca.issue_leaf("x.deep.example", now=NOW)
        chain = ca.chain_for(leaf, include_root=True)
        assert len(chain) == 4  # leaf + two intermediates + root
        # Each link verifies against the next.
        for child, parent in zip(chain, chain[1:]):
            child.verify_signature(parent.public_key)


class TestIssuance:
    def test_policy_validity_used(self, private_ca):
        leaf, _ = private_ca.issue_leaf("a.gadgetco.io", now=NOW)
        assert leaf.validity_days == pytest.approx(7300)

    def test_validity_override(self, private_ca):
        leaf, _ = private_ca.issue_leaf("b.gadgetco.io", now=NOW,
                                        validity_days=30)
        assert leaf.validity_days == pytest.approx(30)

    def test_zero_validity_rejected(self, private_ca):
        with pytest.raises(IssuanceError):
            private_ca.issue_leaf("c.gadgetco.io", now=NOW, validity_days=0)

    def test_default_san_is_cn(self, public_ca):
        leaf, _ = public_ca.issue_leaf("host.example.com", now=NOW)
        assert leaf.san_dns_names == ("host.example.com",)

    def test_explicit_san_list(self, public_ca):
        leaf, _ = public_ca.issue_leaf(
            "*.cdn.example", now=NOW,
            san_dns_names=("*.cdn.example", "cdn.example"))
        assert leaf.covers_host("x.cdn.example")
        assert leaf.covers_host("cdn.example")

    def test_omit_names_misissuance(self, private_ca):
        leaf, _ = private_ca.issue_leaf("a2.gadgetco.io", now=NOW,
                                        omit_names=True)
        assert not leaf.covers_host("a2.gadgetco.io")
        assert leaf.san_dns_names == ()

    def test_serials_unique(self, public_ca):
        serials = {public_ca.issue_leaf(f"h{i}.example", now=NOW)[0].serial
                   for i in range(5)}
        assert len(serials) == 5

    def test_subject_key_reuse(self, public_ca):
        leaf_a, key = public_ca.issue_leaf("a.example", now=NOW)
        leaf_b, _ = public_ca.issue_leaf("b.example", now=NOW,
                                         subject_key=key)
        assert leaf_a.public_key == leaf_b.public_key
        assert leaf_a.fingerprint() != leaf_b.fingerprint()


class TestCTBehaviour:
    def test_public_ca_logs(self, public_ca):
        logs = CTLogSet()
        leaf, _ = public_ca.issue_leaf("logged.example", now=NOW,
                                       ct_logs=logs)
        assert logs.query(leaf)

    def test_private_ca_never_logs(self, private_ca):
        logs = CTLogSet()
        leaf, _ = private_ca.issue_leaf("dark.gadgetco.io", now=NOW,
                                        ct_logs=logs)
        assert not logs.query(leaf)


class TestChainAssembly:
    def test_chain_without_root(self, public_ca):
        leaf, _ = public_ca.issue_leaf("h.example", now=NOW)
        chain = public_ca.chain_for(leaf)
        assert chain[0] is leaf
        assert all(c.fingerprint() != public_ca.root.fingerprint()
                   for c in chain)

    def test_chain_with_root(self, public_ca):
        leaf, _ = public_ca.issue_leaf("h2.example", now=NOW)
        chain = public_ca.chain_for(leaf, include_root=True)
        assert chain[-1].fingerprint() == public_ca.root.fingerprint()

    def test_repr_mentions_kind(self, public_ca, private_ca):
        assert "public-trust" in repr(public_ca)
        assert "private" in repr(private_ca)
