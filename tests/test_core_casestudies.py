"""Tests for the Section 6 case studies."""

import pytest

from repro.core import casestudies
from repro.x509.validation import ChainStatus


@pytest.fixture(scope="module")
def tv_study(study):
    return casestudies.smart_tv_study(ecosystem=study.ecosystem)


class TestSmartTVs:
    def test_groups_present(self, tv_study):
        assert set(tv_study.validations) == {"amazon", "amazon-own",
                                             "roku", "roku-own"}

    def test_third_party_failures(self, tv_study):
        table = tv_study.status_table()
        roku_issues = table["roku"]
        assert "Incomplete chain" in roku_issues
        assert any("netflix.com" in fqdn
                   for fqdn in roku_issues["Incomplete chain"])
        assert "Expired certificate" in roku_issues

    def test_amazon_group_expired_server(self, tv_study):
        table = tv_study.status_table()
        expired = table.get("amazon-own", {}).get("Expired certificate", [])
        assert "arcus-uswest.amazon.com" in expired

    def test_amazon_infrastructure_clean(self, tv_study):
        infra = tv_study.vendor_infrastructure["amazon-own"]
        vendor_like = [(issuer, days, in_ct) for issuer, days, in_ct
                       in infra if issuer in ("Amazon", "DigiCert")]
        assert vendor_like
        # Amazon's own non-expired certs: ~400 days and logged in CT.
        for issuer, days, in_ct in vendor_like:
            if days > 390 and days < 410:
                assert in_ct

    def test_roku_infrastructure_split(self, tv_study):
        infra = tv_study.vendor_infrastructure["roku-own"]
        issuers = {issuer for issuer, _d, _ct in infra}
        assert "Roku" in issuers
        assert issuers & {"Amazon", "DigiCert", "Let's Encrypt"}
        for issuer, days, in_ct in infra:
            if issuer == "Roku":
                assert days >= 4000       # ~13 years
                assert not in_ct          # never logged
            elif days < 1000:
                assert in_ct

    def test_runs_standalone_without_shared_ecosystem(self):
        study = casestudies.smart_tv_study()
        assert study.validations


class TestLocalPKI:
    @pytest.fixture(scope="class")
    def local(self):
        return casestudies.local_pki_study()

    def test_connection_inventory(self, local):
        assert len(local.connections) == 5
        ports = {c.port for c in local.connections}
        assert {55443, 10101, 8443, 32245} <= ports

    def test_echo_self_signed_ip_cn(self, local):
        echo = next(c for c in local.connections
                    if c.server == "Amazon Echo")
        leaf = echo.leaf
        assert leaf.is_self_signed()
        assert leaf.subject.common_name.count(".") == 3  # an IPv4 literal
        assert leaf.validity_days == pytest.approx(365)

    def test_cast_chain_structure(self, local):
        chromecast = next(c for c in local.connections
                          if c.server == "Google Chromecast"
                          and c.chain_extractable)
        leaf, ica = chromecast.chain
        assert ica.subject.common_name == "Chromecast ICA 12"
        assert ica.issuer.common_name == "Cast Root CA"
        assert 21 * 365 <= ica.validity_days <= 23 * 365
        leaf.verify_signature(ica.public_key)

    def test_home_ica_validity(self, local):
        home = next(c for c in local.connections
                    if c.server == "Google Home")
        _leaf, ica = home.chain
        assert "Audio Assist" in ica.subject.common_name
        assert 19 * 365 <= ica.validity_days <= 21 * 365

    def test_tls13_chain_not_extractable(self, local):
        macbook = next(c for c in local.connections
                       if c.client == "MacBook")
        assert macbook.tls_version == "TLS 1.3"
        assert not macbook.chain_extractable
        assert macbook.leaf is None

    def test_cast_roots_not_in_stores_or_ct(self, local, study):
        chromecast = next(c for c in local.connections
                          if c.server == "Google Chromecast"
                          and c.chain_extractable)
        _leaf, ica = chromecast.chain
        assert not study.ecosystem.union_store.contains(ica)
        assert not study.network.ct_logs.query(ica)

    def test_validation_fails_against_public_store(self, local, study):
        chromecast = next(c for c in local.connections
                          if c.server == "Google Chromecast"
                          and c.chain_extractable)
        report = study.validator().validate(
            list(chromecast.chain), at=casestudies.parse_date("2020-03-01"))
        assert report.status in (ChainStatus.INCOMPLETE_CHAIN,
                                 ChainStatus.UNTRUSTED_ROOT)
