"""Unit tests for RSA keys and signatures."""

import random

import pytest

from repro.x509.errors import SignatureError
from repro.x509.keys import KeyPool, RSAPublicKey, generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512, rng=random.Random(7))


class TestGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.public.bit_length == 512
        assert keypair.public.byte_length == 64

    def test_deterministic_given_rng(self):
        a = generate_keypair(512, rng=random.Random(99))
        b = generate_keypair(512, rng=random.Random(99))
        assert a.public.n == b.public.n

    def test_different_seeds_different_keys(self):
        a = generate_keypair(512, rng=random.Random(1))
        b = generate_keypair(512, rng=random.Random(2))
        assert a.public.n != b.public.n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(256)

    def test_public_exponent(self, keypair):
        assert keypair.public.e == 65537


class TestSignVerify:
    def test_sign_verify_roundtrip(self, keypair):
        message = b"the quick brown fox"
        signature = keypair.sign(message)
        keypair.public.verify(message, signature)  # no exception

    def test_signature_deterministic(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_tampered_message_fails(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public.verifies(b"tampered", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(keypair.sign(b"message"))
        signature[10] ^= 0xFF
        assert not keypair.public.verifies(b"message", bytes(signature))

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(512, rng=random.Random(55))
        signature = keypair.sign(b"message")
        assert not other.public.verifies(b"message", signature)

    def test_wrong_length_raises(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", b"\x01\x02")

    def test_out_of_range_signature(self, keypair):
        too_big = (keypair.public.n + 1).to_bytes(
            keypair.public.byte_length, "big", signed=False) \
            if keypair.public.n + 1 < 1 << (8 * keypair.public.byte_length) \
            else b"\xff" * keypair.public.byte_length
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", too_big)

    def test_fingerprint_stability(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        other = generate_keypair(512, rng=random.Random(3))
        assert keypair.public.fingerprint() != other.public.fingerprint()


class TestKeyPool:
    def test_cycles_deterministically(self):
        pool_a = KeyPool(size=4, rng=random.Random(0))
        pool_b = KeyPool(size=4, rng=random.Random(0))
        for _ in range(6):
            assert pool_a.take().public.n == pool_b.take().public.n

    def test_wraps_around(self):
        pool = KeyPool(size=2, rng=random.Random(0))
        first = pool.take()
        pool.take()
        assert pool.take().public.n == first.public.n
