"""Unit tests for sharing (Jaccard / server ties) and semantic matching."""

import pytest

from repro.core import semantics, sharing
from repro.inspector.dataset import InspectorDataset
from tests.conftest import make_record


class TestJaccard:
    def test_identity(self):
        assert sharing.jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert sharing.jaccard({1}, {2}) == 0.0

    def test_subset_penalized(self):
        # The paper's rationale: a small subset of a big set is dissimilar.
        assert sharing.jaccard({1}, {1, 2, 3, 4}) == pytest.approx(0.25)

    def test_empty_sets(self):
        assert sharing.jaccard(set(), set()) == 0.0

    def test_symmetry(self):
        a, b = {1, 2, 3}, {2, 3, 4, 5}
        assert sharing.jaccard(a, b) == sharing.jaccard(b, a)

    def test_pairs_thresholded(self, mini_dataset):
        pairs = sharing.vendor_similarity_pairs(mini_dataset, threshold=0.2)
        # Acme {u, s, k} vs Bolt {s, k}: J = 2/3.
        assert pairs == [(pytest.approx(2 / 3), "Acme", "Bolt")]

    def test_bands(self):
        pairs = [(1.0, "A", "B"), (0.75, "C", "D"), (0.5, "E", "F"),
                 (0.35, "G", "H"), (0.2, "I", "J")]
        bands = sharing.similarity_bands(pairs)
        assert bands["1"] == [("A", "B")]
        assert bands["[0.7, 1)"] == [("C", "D")]
        assert bands["[0.4, 0.7)"] == [("E", "F")]
        assert bands["[0.3, 0.4)"] == [("G", "H")]
        assert bands["[0.2, 0.3)"] == [("I", "J")]


class TestServerTies:
    def test_mini_sdk_tie_found(self, mini_dataset):
        fraction, ties = sharing.server_specific_fingerprints(mini_dataset)
        # The SDK fingerprint is used by dev-a2 and dev-b1 exclusively
        # toward cdn.shared.net.
        assert fraction > 0
        assert len(ties) == 1
        tie = ties[0]
        assert tie.sld == "shared.net"
        assert tie.device_count == 2
        assert tie.vendors == ("Acme", "Bolt")

    def test_single_device_not_tied(self):
        records = [
            make_record(device="solo", vendor="V", suites=(0x0035,),
                        sni="only.app.example"),
        ]
        ds = InspectorDataset(records)
        fraction, ties = sharing.server_specific_fingerprints(ds)
        assert fraction == 0.0
        assert ties == []

    def test_fingerprint_spread_over_slds_not_tied(self):
        base = dict(vendor="V", suites=(0x0035,))
        records = [
            make_record(device="d1", sni="a.one.example", **base),
            make_record(device="d1", sni="b.two.example", **base),
            make_record(device="d2", sni="a.one.example", **base),
            make_record(device="d2", sni="b.two.example", **base),
        ]
        ds = InspectorDataset(records)
        fraction, _ties = sharing.server_specific_fingerprints(ds)
        assert fraction == 0.0

    def test_corpus_matched_fingerprints_excluded(self, corpus):
        from repro.libraries import openssl
        library = openssl.fingerprint_for("1.0.2u")
        records = [
            make_record(device=f"d{i}", vendor=f"V{i}",
                        version=library.tls_version,
                        suites=library.ciphersuites,
                        extensions=library.extensions,
                        sni="x.lib.example")
            for i in range(2)
        ]
        ds = InspectorDataset(records)
        fraction, _ = sharing.server_specific_fingerprints(ds, corpus)
        assert fraction == 0.0

    def test_full_dataset_includes_sdk_domains(self, dataset, corpus):
        _fraction, ties = sharing.server_specific_fingerprints(dataset,
                                                               corpus)
        slds = {tie.sld for tie in ties}
        assert "roku.com" in slds
        assert "sonos.com" in slds


class TestSemanticClassification:
    def classify(self, device, library):
        return semantics.classify_against_library(device, library)

    def test_exact(self):
        assert self.classify((1, 2, 3), (1, 2, 3)) == "exact"

    def test_exact_ignores_grease_and_scsv(self):
        assert self.classify((0x0A0A, 1, 2, 0x00FF), (1, 2)) == "exact"

    def test_same_set_diff_order(self):
        assert self.classify((2, 1), (1, 2)) == "same_set_diff_order"

    def test_same_component(self):
        # Same {kx} × {cipher} × {mac} sets, different combinations:
        # device pairs ECDHE with AES-128 and RSA with AES-256; the
        # library pairs them the other way around.
        device = (0xC013, 0x0035)
        library = (0xC014, 0x002F)
        assert self.classify(device, library) == "same_component"

    def test_component_superset_not_same(self):
        device = (0xC02F, 0xC013)
        library = (0xC013, 0xC02F, 0xC014)  # adds AES_256_CBC
        assert self.classify(device, library) != "same_component"

    def test_similar_component(self):
        # Device keeps only AES_256 variants of a 128+256 library.
        device = (0xC014, 0x0035)           # ECDHE/RSA AES_256_CBC_SHA
        library = (0xC013, 0x002F)          # ECDHE/RSA AES_128_CBC_SHA
        assert self.classify(device, library) == "similar_component"

    def test_sha1_not_similar_to_sha256(self):
        device = (0x003C,)   # RSA AES_128_CBC_SHA256
        library = (0x002F,)  # RSA AES_128_CBC_SHA
        assert self.classify(device, library) == "customization"

    def test_customization(self):
        assert self.classify((0xC02F,), (0x0035,)) == "customization"


class TestSemanticPipeline:
    def test_full_run_covers_all_tuples(self, dataset, corpus):
        matches = semantics.semantic_fingerprinting(dataset, corpus)
        assert len(matches) == len(dataset.ciphersuite_lists())

    def test_summary_shares_sum_to_one(self, dataset, corpus):
        matches = semantics.semantic_fingerprinting(dataset, corpus)
        summary = semantics.semantic_summary(matches)
        assert sum(row["share"] for row in summary.values()) == \
            pytest.approx(1.0)

    def test_customization_has_no_library(self, dataset, corpus):
        matches = semantics.semantic_fingerprinting(dataset, corpus)
        for match in matches:
            if match.category == "customization":
                assert match.library is None
            else:
                assert match.library is not None

    def test_jaccard_bounds(self, dataset, corpus):
        matches = semantics.semantic_fingerprinting(dataset, corpus)
        assert all(0.0 <= match.jaccard <= 1.0 for match in matches)

    def test_figure8_histogram_shape(self, dataset, corpus):
        matches = semantics.semantic_fingerprinting(dataset, corpus)
        histograms = semantics.jaccard_distribution(matches, bins=10)
        for counts in histograms.values():
            assert len(counts) == 10
            assert all(count >= 0 for count in counts)
