"""Tests of the world generator's internal planning helpers."""

from collections import Counter

import pytest

from repro.inspector.generator import (
    LIBRARY_BASES,
    PRIVATE_CA_ORGS,
    STANDALONE_VENDORS,
    WorldGenerator,
)
from repro.inspector.stacks import stable_rng
from repro.inspector.vendors import PROFILES_BY_NAME, VENDOR_PROFILES


@pytest.fixture(scope="module")
def generator():
    return WorldGenerator(seed=2023)


class TestIssuerSampling:
    def test_weighted_issuer_distribution(self, generator):
        rng = stable_rng(0, "issuer-test")
        counts = Counter(generator._weighted_issuer(rng)
                         for _ in range(4000))
        # DigiCert dominates, per the Figure 5 calibration.
        assert counts.most_common(1)[0][0] == "DigiCert"
        assert 0.40 <= counts["DigiCert"] / 4000 <= 0.62

    def test_exclusive_vendor_issuer_is_own_org(self, generator):
        rng = stable_rng(0, "issuer-test-2")
        profile = PROFILES_BY_NAME["Tuya"]
        for _ in range(10):
            assert generator._default_issuer(profile, rng) == "Tuya"


class TestOwnStackCounts:
    def test_zero_rate_zero_stacks(self):
        profile = PROFILES_BY_NAME["Sharp"]  # platform-only
        rng = stable_rng(0, "own-test")
        counts = [WorldGenerator._own_stack_count(profile, rng)
                  for _ in range(200)]
        assert all(count == 0 for count in counts)

    def test_high_rate_vendor_produces_stacks(self):
        profile = PROFILES_BY_NAME["Synology"]
        rng = stable_rng(0, "own-test-2")
        counts = [WorldGenerator._own_stack_count(profile, rng)
                  for _ in range(400)]
        assert sum(counts) > 100          # prolific customizer
        assert max(counts) >= 2           # multi-stack devices exist


class TestExactPlan:
    def test_exact_keys_distinct(self, generator):
        plan = generator._exact_device_plan()
        keys = []
        for vendor_plan in plan.values():
            for stacks in vendor_plan.values():
                keys.extend(stack.fingerprint() for stack in stacks)
        # Each planned exact stack carries a distinct corpus fingerprint
        # (Wyze's OpenSSL stack may coincide with a curl build).
        assert len(set(keys)) >= len(set(
            stack.name for vendor_plan in plan.values()
            for stacks in vendor_plan.values() for stack in stacks)) - 3

    def test_exact_stacks_are_exact(self, generator):
        plan = generator._exact_device_plan()
        for vendor_plan in plan.values():
            for stacks in vendor_plan.values():
                for stack in stacks:
                    assert stack.mutation == "exact"
                    assert stack.origin_library


class TestCommodityPlan:
    def test_group_membership_respects_standalone(self, generator):
        generator._commodity = generator._build_commodity_pool()
        for _stack, members in generator._commodity:
            assert not members & STANDALONE_VENDORS

    def test_group_sizes(self, generator):
        generator._commodity = generator._build_commodity_pool()
        sizes = Counter(len(members)
                        for _stack, members in generator._commodity)
        assert sizes[2] == 100
        assert sum(count for size, count in sizes.items()
                   if 3 <= size <= 5) == 70
        assert sum(count for size, count in sizes.items() if size >= 6) \
            == 17

    def test_members_are_real_vendors(self, generator):
        generator._commodity = generator._build_commodity_pool()
        names = {p.name for p in VENDOR_PROFILES}
        for _stack, members in generator._commodity:
            assert members <= names


class TestPrivateCAOrgMap:
    def test_fifteen_vendor_orgs(self):
        assert len(PRIVATE_CA_ORGS) == 15
        assert PRIVATE_CA_ORGS["Google"] == "Nest Labs"
        assert PRIVATE_CA_ORGS["Dish Network"] == "EchoStar"

    def test_every_mapped_vendor_exists(self):
        for vendor in PRIVATE_CA_ORGS:
            assert vendor in PROFILES_BY_NAME


class TestLibraryBases:
    def test_versions_resolve(self):
        from repro.libraries import mbedtls, openssl, wolfssl
        modules = {"openssl": openssl, "wolfssl": wolfssl,
                   "mbedtls": mbedtls}
        for key, bases in LIBRARY_BASES.items():
            for family, version in bases:
                fingerprint = modules[family].fingerprint_for(version)
                assert fingerprint.ciphersuites

    def test_no_export_bases_remain(self):
        # Severe suites must only come from the explicit low-hygiene path.
        from repro.libraries import mbedtls, openssl, wolfssl
        from repro.tlslib.ciphersuites import suite_by_code
        modules = {"openssl": openssl, "wolfssl": wolfssl,
                   "mbedtls": mbedtls}
        for key, bases in LIBRARY_BASES.items():
            for family, version in bases:
                fingerprint = modules[family].fingerprint_for(version)
                for code in fingerprint.ciphersuites:
                    suite = suite_by_code(code)
                    assert not suite.is_export, (key, version, suite.name)
                    assert not suite.is_anon, (key, version, suite.name)
