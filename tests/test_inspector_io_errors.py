"""Error handling and fidelity tests for JSONL persistence."""

import json

import pytest

from repro.inspector.io import (
    load_dataset,
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
)
from repro.tlslib.versions import TLSVersion
from tests.conftest import make_record


class TestDictRoundTrip:
    def test_roundtrip_preserves_everything(self):
        record = make_record(suites=(0x0A0A, 0xC02F),
                             extensions=(0x0A0A, 0, 10),
                             version=TLSVersion.SSL_3_0)
        assert record_from_dict(record_to_dict(record)) == record

    def test_null_sni_roundtrip(self):
        record = make_record(sni=None)
        loaded = record_from_dict(record_to_dict(record))
        assert loaded.sni is None

    def test_missing_sni_key_tolerated(self):
        payload = record_to_dict(make_record())
        del payload["sni"]
        assert record_from_dict(payload).sni is None

    def test_version_round_trips_as_int(self):
        payload = record_to_dict(make_record(version=TLSVersion.TLS_1_0))
        assert payload["tls_version"] == 0x0301
        assert record_from_dict(payload).tls_version is TLSVersion.TLS_1_0

    def test_bad_version_rejected(self):
        payload = record_to_dict(make_record())
        payload["tls_version"] = 0x9999
        with pytest.raises(ValueError):
            record_from_dict(payload)


class TestFiles:
    def test_blank_lines_skipped(self, tmp_path):
        records = [make_record(device=f"d{i}") for i in range(3)]
        path = tmp_path / "capture.jsonl"
        save_records(records, path)
        content = path.read_text().replace("\n", "\n\n")
        path.write_text(content)
        assert load_records(path) == records

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"device_id": "x"\n')
        with pytest.raises(json.JSONDecodeError):
            load_records(path)

    def test_missing_required_field_raises(self, tmp_path):
        path = tmp_path / "incomplete.jsonl"
        payload = record_to_dict(make_record())
        del payload["vendor"]
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(KeyError):
            load_records(path)

    def test_load_dataset_builds_indexes(self, tmp_path):
        records = [make_record(device="a"), make_record(device="b")]
        path = tmp_path / "capture.jsonl"
        save_records(records, path)
        dataset = load_dataset(path)
        assert dataset.device_count == 2
        assert dataset.fingerprint_count == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_records(path) == []
