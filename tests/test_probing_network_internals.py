"""Deeper tests of the simulated network's construction internals."""

import pytest

from repro.core.issuers import leaf_issuer_org
from repro.inspector.timeline import CAPTURE_END, PROBE_TIME, WORLD_EPOCH
from repro.probing.network import REGIONS, SimulatedNetwork
from repro.study import Study


class TestEndpointConstruction:
    def test_every_region_materialized(self, study, network):
        endpoint = network.endpoint(study.world.servers[0].fqdn)
        assert set(endpoint.chains) == set(REGIONS)
        assert set(endpoint.leaves) == set(REGIONS)

    def test_chain_kind_leaf_only(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.chain == "leaf_only")
        chain = network.endpoint(spec.fqdn).chain("us")
        assert len(chain) == 1

    def test_chain_kind_duplicate_leaf(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.chain == "duplicate_leaf")
        chain = network.endpoint(spec.fqdn).chain("us")
        assert len(chain) == 2
        assert chain[0].fingerprint() == chain[1].fingerprint()

    def test_chain_kind_with_root_ends_self_signed(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.chain == "with_root")
        chain = network.endpoint(spec.fqdn).chain("us")
        assert chain[-1].is_self_signed()

    def test_chain_kind_self_signed(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.chain == "self_signed")
        chain = network.endpoint(spec.fqdn).chain("us")
        assert len(chain) == 1
        assert chain[0].is_self_signed()

    def test_no_intermediate_kind_skips_intermediate(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.chain == "no_intermediate")
        chain = network.endpoint(spec.fqdn).chain("us")
        leaf = chain[0]
        # None of the presented certs signed the leaf.
        assert not any(c.public_key.verifies(leaf.tbs_der, leaf.signature)
                       for c in chain[1:])

    def test_issuer_org_matches_spec(self, study, network):
        for spec in study.world.reachable_servers()[::43]:
            if spec.chain == "self_signed":
                continue
            leaf = network.endpoint(spec.fqdn).leaf("us")
            org = leaf_issuer_org(leaf)
            expected = "Netflix" if spec.issuer == \
                "Netflix Public SHA2 RSA CA 3" else spec.issuer
            assert org == expected, spec.fqdn

    def test_validity_overrides_applied(self, study, network):
        spec = next(s for s in study.world.servers
                    if s.validity_days == 36500)
        leaf = network.endpoint(spec.fqdn).leaf("us")
        assert leaf.validity_days == pytest.approx(36500)

    def test_long_lived_certs_predate_capture(self, study, network):
        spec = next(s for s in study.world.servers
                    if (s.validity_days or 0) >= 3000
                    and s.chain != "self_signed")
        leaf = network.endpoint(spec.fqdn).leaf("us")
        assert leaf.not_before < CAPTURE_END
        assert leaf.not_before >= WORLD_EPOCH

    def test_short_lived_certs_valid_at_probe(self, study, network):
        for spec in study.world.reachable_servers()[::37]:
            if spec.expired_not_after or (spec.validity_days or 0) >= 3000:
                continue
            leaf = network.endpoint(spec.fqdn).leaf("us")
            assert leaf.is_time_valid(PROBE_TIME), spec.fqdn

    def test_expired_spec_expired_at_probe(self, study, network):
        spec = next(s for s in study.world.servers if s.expired_not_after)
        leaf = network.endpoint(spec.fqdn).leaf("us")
        assert leaf.is_expired(PROBE_TIME)


class TestCTSubmissionRules:
    def test_ct_absent_specs_not_logged(self, study, network):
        for spec in study.world.servers:
            if spec.ct_absent:
                leaf = network.endpoint(spec.fqdn).leaf("us")
                assert not network.ct_logs.query(leaf), spec.fqdn

    def test_public_ok_specs_logged(self, study, network):
        checked = 0
        for spec in study.world.reachable_servers():
            if spec.ct_absent or spec.chain == "self_signed":
                continue
            if spec.issuer in study.ecosystem.public:
                leaf = network.endpoint(spec.fqdn).leaf("us")
                assert network.ct_logs.query(leaf), spec.fqdn
                checked += 1
            if checked > 80:
                break
        assert checked > 50

    def test_private_specs_never_logged(self, study, network):
        for spec in study.world.servers:
            if spec.issuer in study.ecosystem.private \
                    or spec.issuer == "Netflix Public SHA2 RSA CA 3":
                leaf = network.endpoint(spec.fqdn).leaf("us")
                assert not network.ct_logs.query(leaf), spec.fqdn


class TestDeterminism:
    def test_rebuild_identical_certificates(self, study):
        rebuilt = SimulatedNetwork(study.world)
        sample = [s.fqdn for s in study.world.servers[::151]]
        for fqdn in sample:
            original = study.network.endpoint(fqdn)
            clone = rebuilt.endpoint(fqdn)
            for region in REGIONS:
                assert original.leaf(region).serial == \
                    clone.leaf(region).serial
                assert original.leaf(region).subject == \
                    clone.leaf(region).subject

    def test_ip_assignment_deterministic(self, study):
        rebuilt = SimulatedNetwork(study.world)
        for fqdn in [s.fqdn for s in study.world.servers[::97]]:
            assert study.network.endpoint(fqdn).ips == \
                rebuilt.endpoint(fqdn).ips
