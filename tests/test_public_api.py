"""The curated ``repro`` top-level surface and the shared JSON schema."""

import pytest

import repro
from repro.schema import (SCHEMA_KEY, SCHEMA_VERSION, strip_version,
                          versioned)

#: the complete supported public surface; additions are deliberate API
#: decisions (update this list *and* the README), removals are breaking.
PUBLIC_SURFACE = {
    "ArtifactStore",
    "CorpusIndex",
    "DEFAULT_SEED",
    "FingerprintVector",
    "Ingester",
    "MatchEngine",
    "SCHEMA_VERSION",
    "SimilarityIndex",
    "Study",
    "StudyConfig",
    "SweepRunner",
    "TimelineStream",
    "__version__",
    "expand_grid",
    "get_study",
    "run_full_study",
    "run_load",
    "serve_study",
}


class TestPublicSurface:
    def test_all_matches_contract(self):
        assert set(repro.__all__) == PUBLIC_SURFACE

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_top_level_import_runs_a_study(self):
        study = repro.get_study(repro.StudyConfig())
        assert study.seed == repro.DEFAULT_SEED
        assert len(study.dataset.records) > 0

    def test_bare_seed_get_study_raises_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"StudyConfig\(seed=7\)"):
            repro.get_study(7)
        with pytest.raises(TypeError, match=r"StudyConfig\(seed=7\)"):
            repro.get_study(seed=7)

    def test_bare_seed_study_raises_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"StudyConfig\(seed=9\)"):
            repro.Study(seed=9)


class TestSchemaVersioning:
    def test_versioned_strip_round_trip(self):
        payload = versioned({"a": 1})
        assert payload[SCHEMA_KEY] == SCHEMA_VERSION
        assert strip_version(payload) == {"a": 1}

    def test_client_hello_record_round_trip(self, dataset):
        from repro.inspector.model import ClientHelloRecord
        record = dataset.records[0]
        row = record.to_json()
        assert row[SCHEMA_KEY] == SCHEMA_VERSION
        assert ClientHelloRecord.from_json(row) == record

    def test_probe_result_versioned(self, certificates):
        rows = certificates.to_json_rows()
        assert rows
        assert all(row[SCHEMA_KEY] == SCHEMA_VERSION for row in rows)

    def test_run_manifest_round_trip(self):
        from repro import obs
        from repro.obs.manifest import RunManifest
        ctx = obs.Observability()
        manifest = RunManifest.from_run(
            command="test", config=repro.StudyConfig(), obs_ctx=ctx,
            outputs=[], started_at=1.0, finished_at=2.0)
        payload = manifest.to_json()
        assert payload[SCHEMA_KEY] == SCHEMA_VERSION
        assert RunManifest.from_json(payload).to_json() == payload

    def test_sweep_report_versioned(self):
        from repro.sweep import SweepAggregator
        report = SweepAggregator([], campaign_id="c", stage="full",
                                 units_total=0).report()
        assert report.to_json()[SCHEMA_KEY] == SCHEMA_VERSION

    def test_streaming_report_versioned(self, study):
        from repro.verify import check_streaming
        payload = check_streaming(study).to_json()
        assert payload[SCHEMA_KEY] == SCHEMA_VERSION
