"""Learned fingerprint attribution: repro.ml + its CLI and gates."""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.cli import main
from repro.ml import (DEFAULT_WIDTH, AttributionModel, FeatureExtractor,
                      LogisticOVR, MLParams, MultinomialNB,
                      canonical_report_text, eval_digest,
                      evaluate_capture, evaluate_study, feature_seed,
                      fingerprint_tokens, labeled_examples,
                      stratified_split)
from repro.sweep.aggregate import SCALAR_BANDS
from repro.sweep.grid import expand_grid, parse_grid

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------- features


class TestFeatures:
    FP = (0x0303, (0x1301, 0x1302, 0x002F), (0, 5, 10, 13))

    def test_tokens_deterministic(self):
        assert fingerprint_tokens(self.FP) == \
            fingerprint_tokens(self.FP)
        assert any(token.startswith("v:")
                   for token in fingerprint_tokens(self.FP))

    def test_index_stable_per_seed(self):
        a = FeatureExtractor(width=256, seed=7)
        b = FeatureExtractor(width=256, seed=7)
        tokens = fingerprint_tokens(self.FP)
        assert [a.index(t) for t in tokens] == \
            [b.index(t) for t in tokens]

    def test_seed_changes_layout(self):
        a = FeatureExtractor(width=DEFAULT_WIDTH, seed=1)
        b = FeatureExtractor(width=DEFAULT_WIDTH, seed=2)
        tokens = fingerprint_tokens(self.FP)
        assert [a.index(t) for t in tokens] != \
            [b.index(t) for t in tokens]

    def test_vector_shape_and_mass(self):
        extractor = FeatureExtractor(width=128, seed=3)
        vec = extractor.vector(self.FP)
        assert vec.shape == (128,)
        assert vec.sum() == len(fingerprint_tokens(self.FP))

    def test_json_round_trip(self):
        extractor = FeatureExtractor(width=64, seed=9)
        clone = FeatureExtractor.from_json(extractor.to_json())
        got = clone.matrix([self.FP])
        assert np.array_equal(got, extractor.matrix([self.FP]))

    def test_feature_seed_derives_from_config(self, study):
        seed = feature_seed(study.config)
        assert seed == int(study.config.digest()[:16], 16)


# -------------------------------------------------------------------- data


class TestLabels:
    def test_family_labels_cover_corpus_families(self, study):
        examples, unmatched = labeled_examples(
            study.dataset, study.corpus, study.world, target="family")
        assert examples and unmatched
        families = {entry.library for entry in study.corpus}
        assert {example.label for example in examples} <= families
        assert sum(1 for e in examples if e.matched) < len(examples)

    def test_split_deterministic_and_stratified(self, study):
        examples, _ = labeled_examples(
            study.dataset, study.corpus, study.world, target="family")
        train_a, test_a = stratified_split(examples, seed=11)
        train_b, test_b = stratified_split(examples, seed=11)
        assert train_a == train_b and test_a == test_b
        assert len(train_a) + len(test_a) == len(examples)
        # every class that can afford a held-out member keeps one in
        # train, and a different seed reshuffles the membership
        train_labels = {e.label for e in train_a}
        assert {e.label for e in examples} == train_labels
        _, test_c = stratified_split(examples, seed=12)
        assert {e.fingerprint for e in test_a} != \
            {e.fingerprint for e in test_c}


# ------------------------------------------------------------------ models


def _toy_xy():
    rng = np.random.default_rng(5)
    X = np.zeros((40, 16))
    y = np.arange(40) % 2
    for i in range(40):
        X[i, (0, 1) if y[i] == 0 else (8, 9)] = 1.0
        X[i, int(rng.integers(2, 8))] += 1.0
    return X, y


class TestModels:
    def test_nb_separable_and_round_trip(self):
        X, y = _toy_xy()
        nb = MultinomialNB().fit(X, y, 2)
        assert np.array_equal(nb.predict(X), y)
        clone = MultinomialNB.from_json(nb.to_json())
        assert np.array_equal(clone.predict(X), y)

    def test_lr_separable_and_round_trip(self):
        X, y = _toy_xy()
        lr = LogisticOVR(iters=200).fit(X, y, 2)
        assert np.array_equal(lr.predict(X), y)
        clone = LogisticOVR.from_json(lr.to_json())
        assert np.array_equal(clone.predict(X), y)
        proba = lr.proba(X)
        assert proba.shape == (40, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_fit_bit_reproducible(self):
        X, y = _toy_xy()
        a = LogisticOVR(iters=100).fit(X, y, 2)
        b = LogisticOVR(iters=100).fit(X, y, 2)
        assert np.array_equal(a.weights, b.weights)


# ---------------------------------------------------------------- pipeline


class TestEvalPipeline:
    def test_headline_quality_and_digest_stability(self, study):
        payload = evaluate_study(study)
        # the PR's acceptance bar: held-out macro-F1 must beat the
        # ~2.55% exact-match coverage by >= 10x
        assert payload["macro"]["f1"] >= 0.255
        assert payload["coverage"]["coverage_gain"] >= 10.0
        assert payload["accuracy"] >= payload["baseline_nb"]["accuracy"] \
            - 0.05
        text = canonical_report_text(payload)
        assert text.endswith("\n")
        assert canonical_report_text(json.loads(text)) == text
        assert len(eval_digest(payload)) == 64

    def test_committed_ml_baseline_matches(self, study):
        from repro.ml import check_ml_baseline
        report = check_ml_baseline(evaluate_study(study),
                                   REPO_ROOT / "conformance" /
                                   "ml_baseline.json")
        assert report["ok"], report


# ------------------------------------------------------------------- sweep


class TestSweepAxis:
    def test_parse_grid_accepts_ml(self):
        assert parse_grid("ml") == ("seeds", "ml")

    def test_expand_grid_adds_ml_units(self, study):
        units = expand_grid(study.config, seeds=2, grid="seeds,ml")
        ml_units = [unit for unit in units if unit.stage == "ml"]
        assert [unit.name for unit in ml_units] == \
            ["seed2023-ml", "seed2024-ml"]
        assert len(units) == 4

    def test_bands_cover_ml_scalars(self):
        for name in ("ml_macro_f1", "ml_heldout_accuracy",
                     "ml_attribution_coverage"):
            low, high = SCALAR_BANDS[name]
            assert 0.0 <= low < high <= 1.0


# --------------------------------------------------------------------- cli


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, study):
    path = tmp_path_factory.mktemp("ml") / "model.json"
    assert main(["ml", "train", "-o", str(path)]) == 0
    return path


class TestCLI:
    def test_eval_reports_byte_identical(self, model_path, tmp_path,
                                         study, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["ml", "eval", "--model", str(model_path),
                     "--report", str(first)]) == 0
        assert main(["ml", "eval", "--model", str(model_path),
                     "--report", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "macro-F1" in capsys.readouterr().out

    def test_predict_lists_unmatched(self, model_path, study, capsys):
        assert main(["ml", "predict", "--model", str(model_path),
                     "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "confidence=" in out and "unmatched" in out

    def test_eval_missing_model_exits_2(self, tmp_path, study, capsys):
        missing = tmp_path / "nope.json"
        assert main(["ml", "eval", "--model", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err and "repro ml train" in err
        assert len(err.strip().splitlines()) == 1

    def test_eval_bad_threshold_exits_2(self, model_path, study,
                                        capsys):
        assert main(["ml", "eval", "--model", str(model_path),
                     "--threshold", "1.5"]) == 2
        err = capsys.readouterr().err
        assert "[0.0, 1.0]" in err
        assert len(err.strip().splitlines()) == 1

    def test_predict_missing_model_exits_2(self, tmp_path, study,
                                           capsys):
        assert main(["ml", "predict", "--model",
                     str(tmp_path / "gone.json")]) == 2
        assert "model file not found" in capsys.readouterr().err

    def test_eval_input_on_family_model_exits_2(self, model_path,
                                                tmp_path, study,
                                                capsys):
        capture = tmp_path / "capture.jsonl"
        capture.write_text('{"vendor": "Acme"}\n', encoding="utf-8")
        assert main(["ml", "eval", "--model", str(model_path),
                     "--input", str(capture)]) == 2
        assert "vendor labels" in capsys.readouterr().err

    def test_eval_missing_input_exits_2(self, model_path, tmp_path,
                                        study, capsys):
        assert main(["ml", "eval", "--model", str(model_path),
                     "--input", str(tmp_path / "none.jsonl")]) == 2
        assert "input file not found" in capsys.readouterr().err

    def test_verify_ml_missing_baseline_exits_2(self, tmp_path, study,
                                                capsys):
        assert main(["verify", "ml", "--baseline",
                     str(tmp_path / "none.json")]) == 2
        err = capsys.readouterr().err
        assert "baseline not found" in err and "--record" in err


# ------------------------------------------------------- capture eval path


@pytest.fixture(scope="module")
def vendor_model(tmp_path_factory):
    """A tiny hand-built vendor-target model (no full training run)."""
    params = MLParams(target="vendor", width=64, iters=50)
    extractor = FeatureExtractor(width=64, seed=17)
    fps = [(0x0303, (1, 2), (0, 5)), (0x0301, (9, 10), (13, 16))]
    X = extractor.matrix(fps)
    y = np.array([0, 1])
    model = AttributionModel(
        params=params, extractor=extractor, classes=("Acme", "Bolt"),
        nb=MultinomialNB().fit(X, y, 2),
        lr=LogisticOVR(iters=50).fit(X, y, 2),
        artifact_digest="0" * 64, counts={"examples": 2})
    path = tmp_path_factory.mktemp("vendor") / "vendor_model.json"
    model.save(path)
    return model, path


class TestCaptureEval:
    ROW = {"vendor": "Acme", "tls_version": 0x0303,
           "ciphersuites": [1, 2], "extensions": [0, 5]}

    def test_labeled_capture_scores(self, vendor_model):
        model, _ = vendor_model
        payload = evaluate_capture(model, [self.ROW, self.ROW])
        assert payload["records"] == 2
        assert payload["fingerprints"] == 1
        assert payload["accuracy"] == 1.0

    def test_unlabeled_row_raises(self, vendor_model):
        model, _ = vendor_model
        with pytest.raises(ValueError, match="row 1 has no vendor"):
            evaluate_capture(model, [self.ROW, {"tls_version": 771}])

    def test_malformed_row_raises(self, vendor_model):
        model, _ = vendor_model
        with pytest.raises(ValueError, match="row 0 is not a capture"):
            evaluate_capture(model, [{"vendor": "Acme",
                                      "tls_version": "x"}])

    def test_cli_unlabeled_row_exits_2(self, vendor_model, tmp_path,
                                       study, capsys):
        _, path = vendor_model
        capture = tmp_path / "capture.jsonl"
        capture.write_text(json.dumps(self.ROW) + "\n" + "{}\n",
                           encoding="utf-8")
        assert main(["ml", "eval", "--model", str(path),
                     "--input", str(capture)]) == 2
        err = capsys.readouterr().err
        assert "row 1 has no vendor label" in err
        assert len(err.strip().splitlines()) == 1


# -------------------------------------------------------------- bench gate


def _bench_gate():
    spec = importlib.util.spec_from_file_location(
        "bench_gate", REPO_ROOT / "tools" / "bench_gate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchGate:
    def test_ml_is_gated(self):
        gate = _bench_gate()
        assert "ml" in gate.BENCHES
        assert "ml" in gate.DEFAULT_GATE
        assert gate.BENCHES["ml"]["metric"] == "coverage_gain"

    def test_unknown_override_exits_2(self, capsys):
        gate = _bench_gate()
        with pytest.raises(SystemExit) as excinfo:
            gate.main(["--override", "frobnicate=0.5",
                       "--bench", "probe"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "ml" in err and "probe" in err
        assert len(err.strip().splitlines()) == 1

    def test_ungated_override_exits_2(self, capsys):
        gate = _bench_gate()
        with pytest.raises(SystemExit) as excinfo:
            gate.main(["--override", "sweep=0.5", "--bench", "probe"])
        assert excinfo.value.code == 2
        assert "not gated" in capsys.readouterr().err

    def test_non_numeric_override_exits_2(self, capsys):
        gate = _bench_gate()
        with pytest.raises(SystemExit) as excinfo:
            gate.main(["--override", "probe=fast", "--bench", "probe"])
        assert excinfo.value.code == 2
        assert "not a number" in capsys.readouterr().err
