"""Unit tests for security classification and library matching analyses."""

import pytest

from repro.core import matching, security
from repro.inspector.dataset import InspectorDataset
from repro.tlslib.ciphersuites import SecurityLevel
from repro.tlslib.versions import TLSVersion
from tests.conftest import make_record


class TestFingerprintSecurity:
    def test_vulnerable_components_aggregated(self):
        fp = (int(TLSVersion.TLS_1_2), (0x000A, 0x0005, 0xC02F), (0,))
        assert security.fingerprint_vulnerable_components(fp) == \
            ["3DES", "RC4"]

    def test_clean_fingerprint(self):
        fp = (int(TLSVersion.TLS_1_2), (0xC02F, 0xC030), (0,))
        assert security.fingerprint_vulnerable_components(fp) == []

    def test_worst_level_wins(self):
        optimal = (int(TLSVersion.TLS_1_2), (0xC02F,), (0,))
        mixed = (int(TLSVersion.TLS_1_2), (0xC02F, 0x0035), (0,))
        bad = (int(TLSVersion.TLS_1_2), (0xC02F, 0x000A), (0,))
        assert security.fingerprint_security_level(optimal) == \
            SecurityLevel.OPTIMAL
        assert security.fingerprint_security_level(mixed) == \
            SecurityLevel.SUBOPTIMAL
        assert security.fingerprint_security_level(bad) == \
            SecurityLevel.VULNERABLE


class TestVulnerabilityReport:
    @pytest.fixture
    def vuln_dataset(self):
        records = [
            make_record(device="d1", vendor="V1", suites=(0x000A, 0xC02F)),
            make_record(device="d2", vendor="V1", suites=(0x000A, 0xC02F)),
            make_record(device="d3", vendor="V2", suites=(0xC02F,)),
            make_record(device="d4", vendor="V3",
                        suites=(0x0034, 0x0003)),  # anon + export
        ]
        return InspectorDataset(records)

    def test_counts(self, vuln_dataset):
        report = security.vulnerability_report(vuln_dataset)
        assert report.total_fingerprints == 3
        assert report.vulnerable_fingerprints == 2
        assert report.multi_device_vulnerable == 1
        assert report.component_counts["3DES"] == 1
        assert report.component_counts["ANON"] == 1

    def test_severe_tracking(self, vuln_dataset):
        report = security.vulnerability_report(vuln_dataset)
        assert report.severe_fingerprints == 1
        assert report.severe_devices == {"d4"}
        assert report.severe_vendors == {"V3"}

    def test_flows_unit_is_device_list_tuple(self, vuln_dataset):
        flows = security.vendor_vulnerability_flows(vuln_dataset)
        # V1: two devices, same list → two flow units under ("3DES",).
        assert flows["V1"][("3DES",)] == 2
        assert flows["V2"][()] == 1


class TestMatching:
    def test_mini_dataset_no_matches(self, mini_dataset, corpus):
        report = matching.match_against_corpus(mini_dataset, corpus)
        assert report.matched_count == 0
        assert report.matched_fraction == 0.0

    def test_crafted_exact_match(self, corpus):
        from repro.libraries import openssl
        library = openssl.fingerprint_for("1.0.2u")
        record = make_record(device="wyze-1", vendor="Wyze",
                             version=library.tls_version,
                             suites=library.ciphersuites,
                             extensions=library.extensions)
        ds = InspectorDataset([record])
        report = matching.match_against_corpus(ds, corpus)
        assert report.matched_count == 1
        assert report.matched_devices() == 1
        [library_match] = report.matched.values()
        assert "1.0.2u" in library_match.version

    def test_case_study_wyze(self, dataset, corpus):
        # The generator gives Wyze an exact OpenSSL 1.0.2u stack, matching
        # the paper's validation case.
        matches = matching.validate_case_study(dataset, corpus, "Wyze")
        assert any("1.0.2u" in name for name in matches)

    def test_full_dataset_unsupported_dominates(self, dataset, corpus):
        report = matching.match_against_corpus(dataset, corpus)
        assert report.matched_count > 0
        assert len(report.unsupported_libraries()) >= \
            0.8 * len(report.matched_libraries())
