"""Unit tests for the device-label identification pipeline."""

import random

import pytest

from repro.inspector.labels import (
    identify,
    label_identifiable,
    make_label,
    tokenize,
)

VENDORS = ["Amazon", "Google", "Western Digital", "TP-Link", "Belkin",
           "Philips", "Sony", "Wyze", "Synology", "iRobot", "Nintendo"]


class TestTokenize:
    def test_basic(self):
        assert tokenize("Living Room Echo #2") == ["living", "room",
                                                   "echo", "2"]

    def test_punctuation_stripped(self):
        assert tokenize("wyze-cam_v2!") == ["wyze", "cam", "v2"]


class TestIdentify:
    @pytest.mark.parametrize("label,vendor", [
        ("amazon echo", "Amazon"),
        ("Living room Echo Dot", "Amazon"),          # alias "echo"
        ("alexa", "Amazon"),
        ("chromecast ultra", "Google"),
        ("nest thermostat", "Google"),
        ("wemo plug", "Belkin"),
        ("kasa outlet", "TP-Link"),
        ("hue bridge", "Philips"),
        ("PS4", "Sony"),
        ("wyze cam #2", "Wyze"),
        ("western digital nas", "Western Digital"),   # bigram match
        ("roomba", "iRobot"),
    ])
    def test_recovers_vendor(self, label, vendor):
        assert identify(label, VENDORS)[0] == vendor

    def test_type_hint(self):
        vendor, hint = identify("wyze cam", VENDORS)
        assert (vendor, hint) == ("Wyze", "camera")

    def test_unknown_label(self):
        assert identify("mystery box", VENDORS) == (None, None)

    def test_general_computing_excluded(self):
        assert identify("john's iphone", VENDORS) == (None, None)
        assert identify("work laptop", VENDORS) == (None, None)
        # Even when a vendor word appears alongside.
        assert identify("amazon tablet", VENDORS) == (None, None)

    def test_case_insensitive(self):
        assert identify("AMAZON ECHO", VENDORS)[0] == "Amazon"

    def test_alias_requires_known_vendor(self):
        # "echo" aliases to Amazon, but Amazon isn't in this universe.
        assert identify("echo", ["Google"]) == (None, None)


class TestGeneration:
    def test_label_identifiable_roundtrips(self):
        rng = random.Random(3)
        for vendor in VENDORS:
            label = label_identifiable(rng, vendor, "Camera", VENDORS)
            assert identify(label, VENDORS)[0] == vendor

    def test_make_label_styles(self):
        rng = random.Random(4)
        labels = {make_label(rng, "Amazon", "Echo") for _ in range(40)}
        assert len(labels) > 5  # several distinct formats appear

    def test_some_styles_unidentifiable(self):
        # Style 3 omits the vendor; with a generic type it cannot be
        # identified — that's the funnel's drop path.
        rng = random.Random(5)
        label = make_label(rng, "Vizio", "SmartCast TV", style=3)
        assert "vizio" not in label
