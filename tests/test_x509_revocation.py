"""Unit tests for CRL / OCSP revocation infrastructure."""

import random

import pytest

from repro.x509.ca import CertificateAuthority
from repro.x509.errors import SignatureError
from repro.x509.revocation import (
    CertStatus,
    RevocationAuthority,
    RevocationChecker,
    RevocationReason,
)

NOW = 1_650_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("RevoCA", is_public_trust=True,
                                rng=random.Random(61), now=NOW - 40 * DAY)


@pytest.fixture(scope="module")
def authority(ca):
    return RevocationAuthority(ca)


@pytest.fixture(scope="module")
def checker(ca):
    return RevocationChecker({ca.name: ca.signing_key.public})


class TestOCSP:
    def test_good_status(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("good.example", now=NOW)
        authority.register(leaf)
        response = authority.ocsp_response(leaf, at=NOW)
        assert checker.check_staple(leaf, response, at=NOW) == \
            CertStatus.GOOD

    def test_revoked_status(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("bad.example", now=NOW)
        authority.revoke(leaf, at=NOW, reason=RevocationReason.KEY_COMPROMISE)
        response = authority.ocsp_response(leaf, at=NOW)
        assert checker.check_staple(leaf, response, at=NOW) == \
            CertStatus.REVOKED
        assert authority.is_revoked(leaf)

    def test_unknown_serial(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("stranger.example", now=NOW)
        response = authority.ocsp_response(leaf, at=NOW)
        assert checker.check_staple(leaf, response, at=NOW) == \
            CertStatus.UNKNOWN

    def test_forged_staple_raises(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("forge.example", now=NOW)
        authority.register(leaf)
        response = authority.ocsp_response(leaf, at=NOW)
        forged = type(response)(
            responder_name=response.responder_name, serial=response.serial,
            status=CertStatus.GOOD, produced_at=response.produced_at,
            next_update=response.next_update,
            signature=bytes(64))
        with pytest.raises(SignatureError):
            checker.check_staple(leaf, forged, at=NOW)

    def test_stale_staple_soft_fails(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("stale.example", now=NOW)
        authority.register(leaf)
        response = authority.ocsp_response(leaf, at=NOW)
        late = NOW + RevocationAuthority.OCSP_VALIDITY + DAY
        assert checker.check_staple(leaf, response, at=late) == \
            CertStatus.UNKNOWN

    def test_mismatched_serial_soft_fails(self, ca, authority, checker):
        leaf_a, _ = ca.issue_leaf("a.example", now=NOW)
        leaf_b, _ = ca.issue_leaf("b.example", now=NOW)
        authority.register(leaf_a)
        response = authority.ocsp_response(leaf_a, at=NOW)
        assert checker.check_staple(leaf_b, response, at=NOW) == \
            CertStatus.UNKNOWN

    def test_untrusted_responder_soft_fails(self, ca, authority):
        leaf, _ = ca.issue_leaf("nobody.example", now=NOW)
        authority.register(leaf)
        response = authority.ocsp_response(leaf, at=NOW)
        empty = RevocationChecker({})
        assert empty.check_staple(leaf, response, at=NOW) == \
            CertStatus.UNKNOWN


class TestCRL:
    def test_crl_roundtrip(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("crl.example", now=NOW)
        authority.revoke(leaf, at=NOW)
        crl = authority.issue_crl(at=NOW)
        assert checker.check_crl(leaf, crl, at=NOW) == CertStatus.REVOKED

    def test_crl_good_for_unrevoked(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("fine.example", now=NOW)
        crl = authority.issue_crl(at=NOW)
        assert checker.check_crl(leaf, crl, at=NOW) == CertStatus.GOOD

    def test_tampered_crl_raises(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("evil.example", now=NOW)
        authority.revoke(leaf, at=NOW)
        crl = authority.issue_crl(at=NOW)
        crl.entries = ()  # attacker removes the revocation
        with pytest.raises(SignatureError):
            checker.check_crl(leaf, crl, at=NOW)

    def test_stale_crl_soft_fails(self, ca, authority, checker):
        leaf, _ = ca.issue_leaf("oldcrl.example", now=NOW)
        crl = authority.issue_crl(at=NOW)
        late = NOW + RevocationAuthority.CRL_VALIDITY + DAY
        assert checker.check_crl(leaf, crl, at=late) == CertStatus.UNKNOWN

    def test_crl_entries_sorted(self, ca, authority):
        crl = authority.issue_crl(at=NOW)
        serials = [entry.serial for entry in crl.entries]
        assert serials == sorted(serials)
