"""Unit tests for the DoC metrics on the hand-built mini dataset."""

import pytest

from repro.core import customization


class TestDegreeDistribution:
    def test_mini_distribution(self, mini_dataset):
        distribution = customization.degree_distribution(mini_dataset)
        # 1 unique fingerprint, 2 shared by both vendors.
        assert distribution["1"] == pytest.approx(1 / 3)
        assert distribution["2"] == pytest.approx(2 / 3)
        assert distribution["3-5"] == 0
        assert distribution[">5"] == 0

    def test_buckets_sum_to_one(self, dataset):
        distribution = customization.degree_distribution(dataset)
        assert sum(distribution.values()) == pytest.approx(1.0)


class TestDoCVendor:
    def test_values(self, mini_dataset):
        # Acme: 1 of 3 fingerprints is unique → 1/3.
        assert customization.doc_vendor(mini_dataset, "Acme") == \
            pytest.approx(1 / 3)
        # Bolt: both fingerprints shared with Acme → 0.
        assert customization.doc_vendor(mini_dataset, "Bolt") == 0.0

    def test_unknown_vendor(self, mini_dataset):
        assert customization.doc_vendor(mini_dataset, "Ghost") == 0.0

    def test_all_vendors(self, mini_dataset):
        values = customization.doc_vendor_all(mini_dataset)
        assert set(values) == {"Acme", "Bolt"}

    def test_range_invariant(self, dataset):
        for value in customization.doc_vendor_all(dataset).values():
            assert 0.0 <= value <= 1.0


class TestDoCDevice:
    def test_per_device(self, mini_dataset):
        # dev-a1's one fingerprint is unique within Acme → DoC 1.
        assert customization.doc_device(mini_dataset, "dev-a1") == 1.0
        # dev-a2's two fingerprints are unique *within Acme* (dev-a1
        # doesn't use them) → DoC 1 as well.
        assert customization.doc_device(mini_dataset, "dev-a2") == 1.0

    def test_vendor_mean(self, mini_dataset):
        assert customization.doc_device_vendor(mini_dataset, "Acme") == 1.0

    def test_within_vendor_scoping(self):
        from repro.inspector.dataset import InspectorDataset
        from tests.conftest import make_record
        # Two Acme devices sharing one fingerprint → both DoC 0.
        shared = dict(suites=(0x0035,), extensions=(0,))
        records = [
            make_record(device="a", vendor="Acme", **shared),
            make_record(device="b", vendor="Acme", **shared),
        ]
        ds = InspectorDataset(records)
        assert customization.doc_device(ds, "a") == 0.0
        assert customization.doc_device_vendor(ds, "Acme") == 0.0

    def test_distribution_structure(self, mini_dataset):
        dist = customization.doc_distribution(mini_dataset)
        assert len(dist["Acme"]) == 2
        assert len(dist["Bolt"]) == 1


class TestHeterogeneity:
    def test_mini_rows(self, mini_dataset):
        row = customization.vendor_heterogeneity(mini_dataset, "Acme")
        assert row.fingerprint_count == 3
        assert row.shared_by_10_or_more == 0.0
        assert row.used_by_one_device == 1.0

    def test_empty_vendor(self, mini_dataset):
        row = customization.vendor_heterogeneity(mini_dataset, "Ghost")
        assert row.fingerprint_count == 0

    def test_top_sorted_by_count(self, dataset):
        rows = customization.top_vendor_heterogeneity(dataset, top=10)
        counts = [row.fingerprint_count for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert len(rows) == 10

    def test_amazon_leads(self, dataset):
        rows = customization.top_vendor_heterogeneity(dataset, top=3)
        assert rows[0].vendor == "Amazon"
