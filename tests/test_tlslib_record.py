"""Unit tests for the TLS record layer."""

import pytest

from repro.tlslib.errors import TLSParseError
from repro.tlslib.record import (
    MAX_FRAGMENT_LENGTH,
    ContentType,
    Record,
    decode_records,
    encode_records,
    iter_handshake_messages,
    reassemble_handshake,
)
from repro.tlslib.versions import TLSVersion


class TestRecord:
    def test_roundtrip_single(self):
        record = Record(ContentType.HANDSHAKE, TLSVersion.TLS_1_2, b"hello")
        decoded = decode_records(record.to_bytes())
        assert decoded == [record]

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Record(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                   b"x" * (MAX_FRAGMENT_LENGTH + 1))

    def test_repr_mentions_type(self):
        record = Record(ContentType.ALERT, TLSVersion.TLS_1_0, b"")
        assert "ALERT" in repr(record)


class TestEncodeDecode:
    def test_fragmentation(self):
        payload = b"a" * (MAX_FRAGMENT_LENGTH + 100)
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                              payload)
        records = decode_records(wire)
        assert len(records) == 2
        assert reassemble_handshake(records) == payload

    def test_empty_payload_one_record(self):
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2, b"")
        records = decode_records(wire)
        assert len(records) == 1
        assert records[0].payload == b""

    def test_multiple_content_types(self):
        wire = (encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                               b"hs")
                + encode_records(ContentType.ALERT, TLSVersion.TLS_1_2,
                                 b"\x02\x28"))
        records = decode_records(wire)
        assert [r.content_type for r in records] == [ContentType.HANDSHAKE,
                                                     ContentType.ALERT]
        # Reassembly only collects handshake payloads.
        assert reassemble_handshake(records) == b"hs"

    def test_truncated_header(self):
        with pytest.raises(TLSParseError):
            decode_records(b"\x16\x03")

    def test_truncated_payload(self):
        wire = encode_records(ContentType.HANDSHAKE, TLSVersion.TLS_1_2,
                              b"full")
        with pytest.raises(TLSParseError):
            decode_records(wire[:-1])


class TestHandshakeIteration:
    @staticmethod
    def message(msg_type, body):
        return bytes([msg_type]) + len(body).to_bytes(3, "big") + body

    def test_iterates_messages(self):
        stream = self.message(1, b"one") + self.message(11, b"two!")
        parsed = list(iter_handshake_messages(stream))
        assert [(t, b) for t, b, _full in parsed] == [(1, b"one"),
                                                      (11, b"two!")]

    def test_full_bytes_include_header(self):
        stream = self.message(2, b"abc")
        _t, _b, full = next(iter(iter_handshake_messages(stream)))
        assert full == stream

    def test_truncated_handshake_body(self):
        stream = self.message(1, b"one")[:-1]
        with pytest.raises(TLSParseError):
            list(iter_handshake_messages(stream))

    def test_truncated_handshake_header(self):
        with pytest.raises(TLSParseError):
            list(iter_handshake_messages(b"\x01\x00"))
