"""Unit tests for the dataset query layer (on a hand-built mini world)."""

from repro.inspector.dataset import InspectorDataset
from tests.conftest import make_record


class TestPopulation:
    def test_counts(self, mini_dataset):
        assert mini_dataset.device_count == 3
        assert mini_dataset.vendor_count == 2
        assert mini_dataset.user_count == 3

    def test_vendor_names(self, mini_dataset):
        assert mini_dataset.vendor_names() == ["Acme", "Bolt"]

    def test_devices_of_vendor(self, mini_dataset):
        assert mini_dataset.devices_of_vendor("Acme") == ["dev-a1", "dev-a2"]

    def test_device_attribution(self, mini_dataset):
        assert mini_dataset.device_vendor("dev-b1") == "Bolt"
        assert mini_dataset.device_user("dev-a2") == "u2"
        assert mini_dataset.device_type("dev-a1") == "Camera"


class TestFingerprints:
    def test_distinct_count(self, mini_dataset):
        # unique(a1) + shared(a2,b1) + sdk(a2,b1) = 3 fingerprints.
        assert mini_dataset.fingerprint_count == 3

    def test_degree(self, mini_dataset):
        degrees = sorted(mini_dataset.fingerprint_degree(fp)
                         for fp in mini_dataset.fingerprints())
        assert degrees == [1, 2, 2]

    def test_vendor_fingerprints(self, mini_dataset):
        acme = mini_dataset.vendor_fingerprints("Acme")
        bolt = mini_dataset.vendor_fingerprints("Bolt")
        assert len(acme) == 3
        assert len(bolt) == 2
        assert len(acme & bolt) == 2

    def test_device_fingerprints(self, mini_dataset):
        assert len(mini_dataset.device_fingerprints("dev-a2")) == 2
        assert len(mini_dataset.device_fingerprints("dev-a1")) == 1

    def test_fingerprint_devices(self, mini_dataset):
        for fp in mini_dataset.fingerprints():
            devices = mini_dataset.fingerprint_devices(fp)
            assert devices <= {"dev-a1", "dev-a2", "dev-b1"}


class TestSNIs:
    def test_sni_index(self, mini_dataset):
        assert "cdn.shared.net" in mini_dataset.snis()
        assert mini_dataset.sni_devices("cdn.shared.net") == {"dev-a2",
                                                              "dev-b1"}

    def test_sni_fingerprints(self, mini_dataset):
        assert len(mini_dataset.sni_fingerprints("cdn.shared.net")) == 1

    def test_sni_users(self, mini_dataset):
        assert mini_dataset.sni_users("cdn.shared.net") == {"u2", "u3"}

    def test_device_fingerprint_pairs(self, mini_dataset):
        pairs = mini_dataset.sni_device_fingerprints("cdn.shared.net")
        assert len(pairs) == 2


class TestTuples:
    def test_ciphersuite_list_tuples(self, mini_dataset):
        tuples = mini_dataset.ciphersuite_lists()
        assert ("dev-a1", (0x002F, 0x0035)) in tuples
        # dev-a2 contributes two distinct lists.
        assert sum(1 for d, _s in tuples if d == "dev-a2") == 2

    def test_len_and_iter(self, mini_dataset):
        assert len(mini_dataset) == 5
        assert sum(1 for _ in mini_dataset) == 5


class TestRecordsOfDevice:
    def test_records_grouped(self, mini_dataset):
        records = mini_dataset.records_of_device("dev-a2")
        assert len(records) == 2
        assert all(record.device_id == "dev-a2" for record in records)
