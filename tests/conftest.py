"""Shared fixtures.

The full study (world generation + certificate issuance + probing) takes
~10 s, so it is built once per session and shared; unit tests use small
hand-built worlds instead.
"""

import random
import time

import pytest

from repro import obs
from repro.inspector.dataset import InspectorDataset
from repro.inspector.model import ClientHelloRecord
from repro.study import get_study
from repro.tlslib.versions import TLSVersion


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore the process-global obs context after every test.

    Server boot paths (``serve_study``, ``make_fabric_server``,
    ``FabricWorker.run``) call ``obs.ensure_enabled()``, which installs
    an enabled context with no scope to restore — without this fixture
    the first test that boots a server flips observability on for every
    test that runs after it.
    """
    previous = obs.current()
    yield
    obs.deactivate(previous)


@pytest.fixture(scope="session")
def study():
    """The memoized full study (seed 2023)."""
    return get_study()


@pytest.fixture(scope="session")
def dataset(study):
    return study.dataset


@pytest.fixture(scope="session")
def corpus(study):
    return study.corpus


@pytest.fixture(scope="session")
def network(study):
    return study.network


@pytest.fixture(scope="session")
def certificates(study):
    return study.certificates


@pytest.fixture(scope="session")
def survey(study, certificates):
    from repro.core.chains import validate_all
    from repro.inspector.timeline import PROBE_TIME
    return validate_all(certificates, study.validator(), at=PROBE_TIME)


@pytest.fixture
def rng():
    return random.Random(1234)


def make_record(device="dev-0", vendor="Acme", dtype="Camera",
                user="user-0", version=TLSVersion.TLS_1_2,
                suites=(0xC02F, 0x002F), extensions=(0, 10, 11),
                sni="api.acme.com", timestamp=1_560_000_000):
    """Build one ClientHelloRecord with overridable fields."""
    return ClientHelloRecord(
        device_id=device, vendor=vendor, device_type=dtype, user_id=user,
        timestamp=timestamp, tls_version=version,
        ciphersuites=tuple(suites), extensions=tuple(extensions), sni=sni)


@pytest.fixture
def mini_dataset():
    """A tiny hand-built dataset with known structure.

    - Acme: two devices; dev-a1 has a unique fingerprint, dev-a2 shares a
      fingerprint with Bolt's device (cross-vendor sharing).
    - Bolt: one device.
    - Both vendors also share the SDK fingerprint toward sdk.shared.net.
    """
    shared = dict(suites=(0xC02F, 0x000A), extensions=(0, 10))
    sdk = dict(suites=(0xC02B, 0xC02F), extensions=(0, 10, 16))
    records = [
        make_record(device="dev-a1", vendor="Acme", user="u1",
                    suites=(0x002F, 0x0035), sni="api.acme.com"),
        make_record(device="dev-a2", vendor="Acme", user="u2",
                    sni="api.acme.com", **shared),
        make_record(device="dev-b1", vendor="Bolt", user="u3",
                    sni="api.bolt.io", **shared),
        make_record(device="dev-a2", vendor="Acme", user="u2",
                    sni="cdn.shared.net", **sdk),
        make_record(device="dev-b1", vendor="Bolt", user="u3",
                    sni="cdn.shared.net", **sdk),
    ]
    return InspectorDataset(records)
