"""Tests for the what-if experiments and the markdown report."""

import pytest

from repro.core import whatif
from repro.core.pipeline import run_full_study
from repro.core.report import render_report
from repro.x509.validation import ChainStatus


class TestACMEAdoption:
    @pytest.fixture(scope="class")
    def result(self, study):
        return whatif.acme_adoption(study)

    def test_validity_collapses(self, result):
        assert result["before"]["validity_min_med_max"][2] >= 30_000
        assert result["after"]["validity_min_med_max"][2] <= 90

    def test_ct_coverage_complete(self, result):
        assert result["before"]["ct_share"] == 0.0
        assert result["after"]["ct_share"] == 1.0

    def test_population_is_the_private_leafs(self, result, study,
                                             certificates):
        from repro.core.issuers import leaf_issuer_org
        expected = sum(
            1 for r in certificates.results_at().values()
            if r.leaf is not None and not study.ecosystem.is_public_trust(
                leaf_issuer_org(r.leaf)))
        assert result["private_leaf_count"] == expected


class TestAIAChasing:
    @pytest.fixture(scope="class")
    def result(self, study, certificates):
        return whatif.aia_chasing(study, certificates)

    def test_incomplete_never_increases(self, result):
        assert result["after"].get(ChainStatus.INCOMPLETE_CHAIN, 0) <= \
            result["before"].get(ChainStatus.INCOMPLETE_CHAIN, 0)

    def test_private_roots_not_fixed(self, result):
        # AIA can complete chains, not mint trust.
        assert result["after"].get(ChainStatus.UNTRUSTED_ROOT, 0) >= \
            result["before"].get(ChainStatus.UNTRUSTED_ROOT, 0)

    def test_total_preserved(self, result):
        assert sum(result["before"].values()) == \
            sum(result["after"].values())


class TestTrustStores:
    def test_aligned_stores_agree(self, study, certificates):
        histograms = whatif.trust_store_choice(study, certificates)
        assert histograms["mozilla"] == histograms["apple"] == \
            histograms["microsoft"] == histograms["union"]


class TestRevocationExposure:
    def test_private_revocations_expose_devices(self, study):
        result = whatif.revocation_exposure(study, compromised_share=0.08)
        assert result["revoked_leafs"]["public"] > 0
        assert result["revoked_leafs"]["private"] >= 0
        if result["revoked_leafs"]["private"]:
            assert result["devices_exposed_no_revocation_path"] > 0

    def test_deterministic(self, study):
        one = whatif.revocation_exposure(study)
        two = whatif.revocation_exposure(study)
        assert one == two


class TestFingerprintDefinition:
    def test_paper_definition_is_finest(self, dataset):
        result = whatif.fingerprint_definition(dataset)
        assert result["3-tuple (paper)"]["fingerprints"] >= \
            result["suites+version"]["fingerprints"] >= \
            result["suites_only"]["fingerprints"]

    def test_degree_one_share_robust(self, dataset):
        result = whatif.fingerprint_definition(dataset)
        shares = [d["degree_one_share"] for d in result.values()]
        assert max(shares) - min(shares) < 0.1


class TestReport:
    @pytest.fixture(scope="class")
    def text(self, study):
        return render_report(run_full_study(study), seed=study.seed,
                             generated_at=1_650_000_000)

    def test_contains_all_sections(self, text):
        for anchor in ("Table 2", "Table 3", "Table 7", "Table 8",
                       "Table 14", "Netflix (Table 9)", "Geography",
                       "Lab cross-check"):
            assert anchor in text

    def test_markdown_tables_well_formed(self, text):
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_headline_numbers_present(self, text):
        assert "47.26%" in text        # DigiCert share
        assert "2014" in text or "1151" in text
