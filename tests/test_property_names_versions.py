"""Property-based tests for host matching and version ordering."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.libraries.base import version_sort_key
from repro.x509.names import hostname_matches, second_level_domain

SLOW = settings(deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

label = st.from_regex(r"[a-z]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)
hostname = st.builds(lambda parts: ".".join(parts),
                     st.lists(label, min_size=2, max_size=5))


class TestHostnameProperties:
    @SLOW
    @given(host=hostname)
    def test_exact_match_reflexive(self, host):
        assert hostname_matches(host, host)

    @SLOW
    @given(host=hostname)
    def test_case_insensitive(self, host):
        assert hostname_matches(host.upper(), host)

    @SLOW
    @given(host=hostname, extra=label)
    def test_wildcard_matches_exactly_one_label(self, host, extra):
        if host.count(".") < 2:
            return
        pattern = "*." + host.split(".", 1)[1]
        assert hostname_matches(pattern, host)
        # One extra label breaks the match.
        assert not hostname_matches(pattern, f"{extra}.{host}")

    @SLOW
    @given(host=hostname)
    def test_wildcard_never_matches_bare_domain(self, host):
        pattern = f"*.{host}"
        assert not hostname_matches(pattern, host)

    @SLOW
    @given(host=hostname)
    def test_sld_is_suffix(self, host):
        sld = second_level_domain(host)
        assert host.lower().endswith(sld)
        assert 1 <= sld.count(".") <= 2


class TestVersionOrderingProperties:
    version = st.builds(
        lambda a, b, c, letter: f"{a}.{b}.{c}{letter}",
        st.integers(0, 9), st.integers(0, 20), st.integers(0, 30),
        st.sampled_from(["", "a", "b", "m", "u"]))

    @SLOW
    @given(v=version)
    def test_reflexive(self, v):
        assert version_sort_key(v) == version_sort_key(v)

    @SLOW
    @given(vs=st.lists(version, min_size=2, max_size=8))
    def test_total_order_consistent(self, vs):
        ordered = sorted(vs, key=version_sort_key)
        # Sorting is stable and idempotent under the key.
        assert sorted(ordered, key=version_sort_key) == ordered

    @SLOW
    @given(a=st.integers(0, 50), b=st.integers(0, 50))
    def test_numeric_not_lexical(self, a, b):
        if a == b:
            return
        smaller, larger = sorted((a, b))
        assert version_sort_key(f"1.{smaller}.0") < \
            version_sort_key(f"1.{larger}.0")

    @SLOW
    @given(letter=st.sampled_from("abcdefg"))
    def test_patch_letter_after_base(self, letter):
        assert version_sort_key("1.0.2") < version_sort_key(f"1.0.2{letter}")
