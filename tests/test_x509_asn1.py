"""Unit tests for the DER codec."""

import pytest

from repro.x509 import asn1
from repro.x509.errors import DERDecodeError


class TestIntegers:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 256, -1, -128,
                                       -129, 2 ** 64, -(2 ** 64),
                                       2 ** 512 + 12345])
    def test_roundtrip(self, value):
        assert asn1.decode(asn1.encode_integer(value)).as_integer() == value

    def test_minimal_encoding_enforced(self):
        # 0x00 0x7F is a non-minimal encoding of 127.
        blob = bytes([asn1.Tag.INTEGER, 2, 0x00, 0x7F])
        with pytest.raises(DERDecodeError):
            asn1.decode(blob).as_integer()

    def test_empty_integer_rejected(self):
        blob = bytes([asn1.Tag.INTEGER, 0])
        with pytest.raises(DERDecodeError):
            asn1.decode(blob).as_integer()

    def test_positive_high_bit_padded(self):
        # 128 must encode as 00 80 (leading zero keeps it positive).
        assert asn1.encode_integer(128) == bytes([asn1.Tag.INTEGER, 2,
                                                  0x00, 0x80])


class TestOIDs:
    @pytest.mark.parametrize("oid", [
        "2.5.4.3", "1.2.840.113549.1.1.11", "2.5.29.17", "0.9.2342",
        "1.3.6.1.4.1.11129.2.4.2",
    ])
    def test_roundtrip(self, oid):
        assert asn1.decode(asn1.encode_oid(oid)).as_oid() == oid

    def test_invalid_oid_rejected(self):
        with pytest.raises(ValueError):
            asn1.encode_oid("3.1.2")
        with pytest.raises(ValueError):
            asn1.encode_oid("5")

    def test_truncated_multibyte_arc(self):
        blob = bytes([asn1.Tag.OID, 2, 0x55, 0x81])  # dangling continuation
        with pytest.raises(DERDecodeError):
            asn1.decode(blob).as_oid()


class TestStringsAndBytes:
    def test_octet_string_roundtrip(self):
        data = bytes(range(256))
        assert asn1.decode(
            asn1.encode_octet_string(data)).as_octet_string() == data

    def test_bit_string_roundtrip(self):
        data = b"\xDE\xAD\xBE\xEF"
        assert asn1.decode(
            asn1.encode_bit_string(data)).as_bit_string() == data

    def test_utf8_roundtrip(self):
        text = "Tuya 智能 — ümlauts"
        assert asn1.decode(asn1.encode_utf8(text)).as_text() == text

    def test_printable_roundtrip(self):
        assert asn1.decode(asn1.encode_printable("US")).as_text() == "US"

    def test_boolean_roundtrip(self):
        assert asn1.decode(asn1.encode_boolean(True)).as_boolean() is True
        assert asn1.decode(asn1.encode_boolean(False)).as_boolean() is False

    def test_type_mismatch_raises(self):
        node = asn1.decode(asn1.encode_integer(5))
        with pytest.raises(DERDecodeError):
            node.as_octet_string()


class TestTimes:
    def test_utc_time_roundtrip(self):
        # 2022-04-15 00:00:00 UTC
        stamp = 1_649_980_800
        assert asn1.decode(asn1.encode_utc_time(stamp)).as_time() == stamp

    def test_generalized_time_roundtrip(self):
        stamp = 4_102_444_800  # 2100-01-01 — beyond UTCTime's range
        node = asn1.decode(asn1.encode_generalized_time(stamp))
        assert node.as_time() == stamp

    def test_encode_time_picks_generalized_after_2050(self):
        stamp = 4_102_444_800
        assert asn1.encode_time(stamp)[0] == asn1.Tag.GENERALIZED_TIME

    def test_encode_time_picks_utc_before_2050(self):
        stamp = 1_649_980_800
        assert asn1.encode_time(stamp)[0] == asn1.Tag.UTC_TIME

    def test_malformed_time_rejected(self):
        blob = asn1.encode_tlv(asn1.Tag.UTC_TIME, b"20220101")
        with pytest.raises(DERDecodeError):
            asn1.decode(blob).as_time()


class TestStructures:
    def test_sequence_children(self):
        blob = asn1.encode_sequence(asn1.encode_integer(1),
                                    asn1.encode_utf8("x"))
        node = asn1.decode(blob)
        assert len(node) == 2
        assert node[0].as_integer() == 1
        assert node[1].as_text() == "x"

    def test_nested_sequences(self):
        inner = asn1.encode_sequence(asn1.encode_integer(7))
        outer = asn1.encode_sequence(inner, inner)
        node = asn1.decode(outer)
        assert node[0][0].as_integer() == 7
        assert node[1][0].as_integer() == 7

    def test_set_members_sorted(self):
        a, b = asn1.encode_integer(2), asn1.encode_integer(1)
        assert asn1.encode_set(a, b) == asn1.encode_set(b, a)

    def test_context_tag(self):
        blob = asn1.encode_context(3, asn1.encode_integer(9))
        node = asn1.decode(blob)
        assert node.tag == asn1.Tag.context(3)
        assert node[0].as_integer() == 9

    def test_long_form_length(self):
        payload = b"z" * 300
        node = asn1.decode(asn1.encode_octet_string(payload))
        assert node.as_octet_string() == payload

    def test_trailing_bytes_rejected(self):
        with pytest.raises(DERDecodeError):
            asn1.decode(asn1.encode_integer(1) + b"\x00")

    def test_decode_all(self):
        blob = asn1.encode_integer(1) + asn1.encode_integer(2)
        values = asn1.decode_all(blob)
        assert [v.as_integer() for v in values] == [1, 2]

    def test_non_minimal_length_rejected(self):
        # long-form length used for a short value
        blob = bytes([asn1.Tag.OCTET_STRING, 0x81, 0x01, 0x00])
        with pytest.raises(DERDecodeError):
            asn1.decode(blob)

    def test_content_past_end_rejected(self):
        blob = bytes([asn1.Tag.OCTET_STRING, 5, 1, 2])
        with pytest.raises(DERDecodeError):
            asn1.decode(blob)
