"""Tests for the TLS alert protocol, including the end-to-end path."""

import pytest

from repro.inspector.timeline import CAPTURE_END
from repro.tlslib.alerts import (
    Alert,
    AlertDescription,
    AlertLevel,
    extract_alert,
)
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.errors import TLSHandshakeError, TLSParseError
from repro.tlslib.handshake import TLSClient
from repro.tlslib.record import decode_records
from repro.tlslib.versions import TLSVersion


class TestAlertCodec:
    def test_roundtrip(self):
        alert = Alert(AlertLevel.FATAL, AlertDescription.PROTOCOL_VERSION)
        assert Alert.from_bytes(alert.to_bytes()) == alert

    def test_wrong_length_rejected(self):
        with pytest.raises(TLSParseError):
            Alert.from_bytes(b"\x02")
        with pytest.raises(TLSParseError):
            Alert.from_bytes(b"\x02\x28\x00")

    def test_unknown_code_rejected(self):
        with pytest.raises(TLSParseError):
            Alert.from_bytes(b"\x02\xfe")

    def test_record_roundtrip(self):
        alert = Alert.fatal(AlertDescription.HANDSHAKE_FAILURE)
        records = decode_records(alert.to_record_bytes(TLSVersion.TLS_1_0))
        assert extract_alert(records) == alert

    def test_extract_none_when_absent(self):
        from repro.tlslib.record import ContentType, encode_records
        records = decode_records(encode_records(
            ContentType.HANDSHAKE, TLSVersion.TLS_1_2, b"x"))
        assert extract_alert(records) is None

    def test_snake_names(self):
        assert AlertDescription.PROTOCOL_VERSION.snake_name == \
            "protocol_version"
        assert AlertDescription.from_snake_name("protocol_version") is \
            AlertDescription.PROTOCOL_VERSION
        # Unknown names degrade to the generic failure.
        assert AlertDescription.from_snake_name("no_such_alert") is \
            AlertDescription.HANDSHAKE_FAILURE


class TestEndToEndAlerts:
    def test_ssl3_client_gets_protocol_version_alert(self, study, network):
        spec = study.world.reachable_servers()[0]
        hello = ClientHello(version=TLSVersion.SSL_3_0,
                            ciphersuites=[0x0035, 0x002F],
                            extensions=[0], sni=spec.fqdn)
        client = TLSClient()
        flight = network.connect(spec.fqdn, client.first_flight(hello),
                                 at=CAPTURE_END)
        with pytest.raises(TLSHandshakeError) as err:
            client.read_server_flight(hello, flight)
        assert err.value.alert == "protocol_version"

    def test_no_common_suite_gets_handshake_failure(self, study, network):
        spec = study.world.reachable_servers()[0]
        hello = ClientHello(version=TLSVersion.TLS_1_2,
                            ciphersuites=[0x1301],  # TLS 1.3-only suite
                            extensions=[0], sni=spec.fqdn)
        client = TLSClient()
        flight = network.connect(spec.fqdn, client.first_flight(hello),
                                 at=CAPTURE_END)
        with pytest.raises(TLSHandshakeError) as err:
            client.read_server_flight(hello, flight)
        assert err.value.alert == "handshake_failure"

    def test_prober_records_alert_as_error(self, study, network):
        from repro.probing.prober import Prober
        from repro.probing.vantage import VANTAGE_POINTS
        prober = Prober(network)
        # Cripple the prober's hello to force an alert.
        original = prober._hello

        def ssl3_hello(sni):
            hello = original(sni)
            hello.version = TLSVersion.SSL_3_0
            return hello

        prober._hello = ssl3_hello
        result = prober.probe_one(study.world.reachable_servers()[0].fqdn,
                                  VANTAGE_POINTS[0], at=CAPTURE_END)
        assert result.reachable
        assert result.leaf is None
        assert "protocol_version" in result.error
