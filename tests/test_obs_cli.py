"""Tests for the ``repro obs`` CLI group against a live server.

Exercises ``obs export`` / ``obs diff`` / ``obs top`` end to end over a
real socket (the same transport an operator would use), plus the error
paths that must exit 2 with a one-line diagnosis instead of a traceback.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.ingest import Ingester, QueryService, make_server
from repro.obs.telemetry import parse_prometheus

#: nothing listens here: the connection-refused error path.
DEAD_URL = "http://127.0.0.1:1"


@pytest.fixture(scope="module")
def server_url(study):
    service = QueryService(study, Ingester(study)).warm()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()


class TestObsExport:
    def test_export_json(self, server_url, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert main(["obs", "export", server_url, "-o", str(out)]) == 0
        assert "wrote json metrics snapshot" in capsys.readouterr().out
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert "metrics" in payload["data"]

    def test_export_prom(self, server_url, tmp_path):
        out = tmp_path / "snap.prom"
        assert main(["obs", "export", server_url, "-o", str(out),
                     "--format", "prom"]) == 0
        # The export must be valid exposition text.
        parse_prometheus(out.read_text(encoding="utf-8"))

    def test_export_to_stdout(self, server_url, capsys):
        assert main(["obs", "export", server_url, "-o", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["endpoint"] == "/metrics"

    def test_export_dead_server_exits_2(self, capsys):
        assert main(["obs", "export", DEAD_URL, "-o", "-"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("obs export: ")
        assert len(err.strip().splitlines()) == 1


class TestObsDiff:
    def export(self, server_url, path):
        assert main(["obs", "export", server_url,
                     "-o", str(path)]) == 0

    def test_diff_without_regressions(self, server_url, tmp_path,
                                      capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        self.export(server_url, before)
        self.export(server_url, after)
        capsys.readouterr()
        assert main(["obs", "diff", str(before), str(after)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_detects_regression(self, tmp_path, capsys):
        def write(path, errors):
            path.write_text(json.dumps({
                "metrics": {"families":
                            {"serve.errors": {"500": errors}}}}),
                encoding="utf-8")

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        write(before, 0)
        write(after, 5)
        report_path = tmp_path / "report.json"
        assert main(["obs", "diff", str(before), str(after),
                     "--json", str(report_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["ok"] is False
        assert report["regressions"][0]["reason"] == "error counter grew"

    def test_diff_missing_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["obs", "diff", str(missing), str(missing)]) == 2
        assert capsys.readouterr().err.startswith("obs diff: ")


class TestObsTop:
    def test_renders_frames(self, server_url, capsys):
        assert main(["obs", "top", server_url, "--count", "2",
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert out.count("serve: ") == 2
        assert "slo" in out
        assert "req/s" in out  # second frame carries the rate delta

    def test_dead_server_exits_2(self, capsys):
        assert main(["obs", "top", DEAD_URL, "--count", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("obs top: ")
        assert len(err.strip().splitlines()) == 1
