"""Unit tests for the miniature ACME implementation."""

import random

import pytest

from repro.x509.acme import (
    ACMEClient,
    ACMEError,
    ACMEServer,
    OrderStatus,
    WellKnownStore,
)
from repro.x509.ca import CertificateAuthority, IssuancePolicy
from repro.x509.ct import CTLogSet

NOW = 1_650_000_000
DAY = 86_400


@pytest.fixture
def setup():
    ca = CertificateAuthority(
        "AutoCA", is_public_trust=True,
        policy=IssuancePolicy(validity_days=90, logs_to_ct=True),
        rng=random.Random(71), now=NOW - 40 * DAY)
    well_known = WellKnownStore()
    ct = CTLogSet()
    server = ACMEServer(ca, well_known, ct_logs=ct, validity_days=90)
    client = ACMEClient(server, well_known, contact="ops@vendor.example",
                        rng=random.Random(72))
    return ca, well_known, ct, server, client


class TestHappyPath:
    def test_full_issuance_flow(self, setup):
        _ca, _wk, ct, _server, client = setup
        leaf = client.obtain(["iot.vendor.example"], now=NOW)
        assert leaf.covers_host("iot.vendor.example")
        assert leaf.validity_days == pytest.approx(90)
        assert ct.query(leaf)   # automation brings CT logging with it

    def test_multi_identifier_order(self, setup):
        _ca, _wk, _ct, _server, client = setup
        leaf = client.obtain(["a.vendor.example", "b.vendor.example"],
                             now=NOW)
        assert leaf.covers_host("a.vendor.example")
        assert leaf.covers_host("b.vendor.example")

    def test_challenges_withdrawn_after_issuance(self, setup):
        _ca, well_known, _ct, server, client = setup
        client.obtain(["c.vendor.example"], now=NOW)
        assert not well_known._content  # nothing left published


class TestChallengeSecurity:
    def test_unpublished_challenge_fails(self, setup):
        _ca, _wk, _ct, server, client = setup
        order = server.new_order(client.account.account_id,
                                 ("victim.example",))
        with pytest.raises(ACMEError):
            server.validate_challenges(order.order_id)
        assert order.status is OrderStatus.INVALID

    def test_wrong_account_key_fails(self, setup):
        # An attacker publishing a token bound to a DIFFERENT account key
        # cannot pass validation.
        _ca, well_known, _ct, server, client = setup
        attacker = ACMEClient(server, well_known, contact="evil@x",
                              rng=random.Random(99))
        order = server.new_order(client.account.account_id,
                                 ("contested.example",))
        challenge = order.challenges[0]
        well_known.publish(challenge.identifier, challenge.token,
                           challenge.key_authorization(attacker.account_key))
        with pytest.raises(ACMEError):
            server.validate_challenges(order.order_id)

    def test_finalize_requires_ready(self, setup):
        _ca, _wk, _ct, server, client = setup
        from repro.x509.keys import generate_keypair
        order = server.new_order(client.account.account_id, ("x.example",))
        with pytest.raises(ACMEError):
            server.finalize(order.order_id, generate_keypair(512), NOW)

    def test_empty_order_rejected(self, setup):
        _ca, _wk, _ct, server, client = setup
        with pytest.raises(ACMEError):
            server.new_order(client.account.account_id, ())

    def test_unknown_account_rejected(self, setup):
        _ca, _wk, _ct, server, _client = setup
        with pytest.raises(ACMEError):
            server.new_order(999, ("x.example",))


class TestRenewal:
    def test_renewal_window(self, setup):
        _ca, _wk, _ct, _server, client = setup
        client.obtain(["renew.example"], now=NOW)
        assert not client.needs_renewal(["renew.example"], at=NOW + 10 * DAY)
        assert client.needs_renewal(["renew.example"], at=NOW + 70 * DAY)

    def test_renew_due_rotates_certificate(self, setup):
        _ca, _wk, _ct, _server, client = setup
        first = client.obtain(["rotate.example"], now=NOW)
        renewed = client.renew_due(at=NOW + 70 * DAY)
        assert renewed == [("rotate.example",)]
        second = client.certificates[("rotate.example",)]
        assert second.fingerprint() != first.fingerprint()
        assert second.not_after > first.not_after

    def test_unenrolled_name_needs_renewal(self, setup):
        _ca, _wk, _ct, _server, client = setup
        assert client.needs_renewal(["new.example"], at=NOW)

    def test_continuous_operation_never_lapses(self, setup):
        # Run the renewal loop monthly for two years; the active cert must
        # always be valid — the "ACME fixes set-and-forget" claim.
        _ca, _wk, _ct, _server, client = setup
        client.obtain(["always-on.example"], now=NOW)
        for month in range(1, 25):
            at = NOW + month * 30 * DAY
            client.renew_due(at=at)
            leaf = client.certificates[("always-on.example",)]
            assert leaf.is_time_valid(at)
