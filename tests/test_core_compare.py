"""Tests for the study comparison API."""

import pytest

from repro.core.compare import (
    Headline,
    client_headlines,
    compare_datasets,
    compare_headlines,
    drifted,
)


class TestHeadlines:
    def test_metric_set(self, dataset, corpus):
        names = {headline.name
                 for headline in client_headlines(dataset, corpus)}
        assert "degree_one_share" in names
        assert "vulnerable_share" in names
        assert len(names) == 6

    def test_values_plausible(self, dataset, corpus):
        for headline in client_headlines(dataset, corpus):
            assert headline.value >= 0
            assert headline.tolerance > 0


class TestCompare:
    def test_self_comparison_no_drift(self, dataset, corpus):
        deltas = compare_datasets(dataset, dataset, corpus)
        assert all(delta.delta == 0 for delta in deltas)
        assert drifted(deltas) == []

    def test_mismatched_sets_rejected(self):
        a = [Headline("x", 1.0, 0.1)]
        b = [Headline("y", 1.0, 0.1)]
        with pytest.raises(ValueError):
            compare_headlines(a, b)

    def test_drift_detection(self):
        a = [Headline("x", 1.0, 0.1), Headline("y", 2.0, 0.5)]
        b = [Headline("x", 1.5, 0.1), Headline("y", 2.1, 0.5)]
        deltas = compare_headlines(a, b)
        bad = drifted(deltas)
        assert [delta.name for delta in bad] == ["x"]
        assert bad[0].delta == pytest.approx(0.5)

    def test_cross_seed_within_tolerance(self, dataset, corpus):
        # The seed-7 world's client headlines stay inside every band.
        from repro.inspector.dataset import InspectorDataset
        from repro.inspector.generator import WorldGenerator
        alt = InspectorDataset.from_world(WorldGenerator(seed=7).generate())
        deltas = compare_datasets(dataset, alt, corpus)
        assert drifted(deltas) == []
