"""Edge-case tests for path building and validation."""

import random

import pytest

from repro.x509.ca import CertificateAuthority
from repro.x509.certificate import sign_certificate
from repro.x509.chain import build_path
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName
from repro.x509.truststore import TrustStore
from repro.x509.validation import ChainStatus, ChainValidator

NOW = 1_650_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(
        "EdgeCA", is_public_trust=True, rng=random.Random(91),
        now=NOW - 40 * DAY, intermediate_names=("EdgeCA Sub",))


@pytest.fixture(scope="module")
def store(ca):
    return TrustStore("edge-store", [ca.root])


class TestBrokenLinks:
    def test_name_matching_wrong_key_is_bad_signature(self, ca, store):
        # An intermediate with the RIGHT name but the WRONG key: path
        # building follows the name link and flags the broken signature.
        impostor_ca = CertificateAuthority(
            "EdgeCA", is_public_trust=True, rng=random.Random(92),
            now=NOW - 40 * DAY, intermediate_names=("EdgeCA Sub",))
        leaf, _ = ca.issue_leaf("broken.example", now=NOW)
        presented = [leaf, impostor_ca.intermediates[0],
                     impostor_ca.root]
        report = ChainValidator(TrustStore("empty")).validate(
            presented, at=NOW + DAY)
        assert report.status is ChainStatus.BAD_SIGNATURE

    def test_tampered_self_signed_root(self, store):
        key = generate_keypair(512, rng=random.Random(93))
        other = generate_keypair(512, rng=random.Random(94))
        subject = DistinguishedName(common_name="Fake Root")
        # Self-issued but signed with a different key.
        fake = sign_certificate(serial=1, subject=subject, issuer=subject,
                                issuer_keypair=other, not_before=NOW,
                                not_after=NOW + DAY,
                                public_key=key.public, is_ca=True)
        path = build_path([fake], store)
        assert path.complete
        assert path.broken_link_at is not None


class TestDepthAndCycles:
    def test_max_depth_guard(self, store):
        # Two certificates that claim to issue each other: the loop guard
        # terminates path building.
        key_a = generate_keypair(512, rng=random.Random(95))
        key_b = generate_keypair(512, rng=random.Random(96))
        name_a = DistinguishedName(common_name="Loop A")
        name_b = DistinguishedName(common_name="Loop B")
        cert_a = sign_certificate(serial=1, subject=name_a, issuer=name_b,
                                  issuer_keypair=key_b, not_before=NOW,
                                  not_after=NOW + DAY,
                                  public_key=key_a.public, is_ca=True)
        cert_b = sign_certificate(serial=2, subject=name_b, issuer=name_a,
                                  issuer_keypair=key_a, not_before=NOW,
                                  not_after=NOW + DAY,
                                  public_key=key_b.public, is_ca=True)
        path = build_path([cert_a, cert_b, cert_a], store, max_depth=5)
        assert len(path) <= 6
        assert not path.anchor_in_store

    def test_deep_chain_within_limit(self, store):
        ca = CertificateAuthority(
            "DeepEdge", is_public_trust=True, rng=random.Random(97),
            now=NOW - 40 * DAY)
        for i in range(4):
            ca.add_intermediate(f"DeepEdge Sub {i}", now=NOW - 30 * DAY)
        deep_store = TrustStore("deep", [ca.root])
        leaf, _ = ca.issue_leaf("deep.example", now=NOW)
        path = build_path(ca.chain_for(leaf, include_root=True), deep_store)
        assert path.complete
        assert path.anchor_in_store
        assert len(path) == 6


class TestReportFields:
    def test_presented_vs_path_length(self, ca, store):
        leaf, _ = ca.issue_leaf("fields.example", now=NOW)
        # Present only the leaf: the store supplies nothing (intermediate
        # missing), so path stays short.
        report = ChainValidator(store).validate([leaf], at=NOW + DAY)
        assert report.presented_length == 1
        assert report.path_length == 1

    def test_store_anchor_appended_to_path(self, ca, store):
        intermediate = ca.intermediates[0]
        leaf, _ = ca.issue_leaf("anchored.example", now=NOW)
        report = ChainValidator(store).validate([leaf, intermediate],
                                                at=NOW + DAY)
        assert report.presented_length == 2
        assert report.path_length == 3  # + the store root

    def test_hostname_none_when_not_given(self, ca, store):
        leaf, _ = ca.issue_leaf("hostless.example", now=NOW)
        report = ChainValidator(store).validate(ca.chain_for(leaf),
                                                at=NOW + DAY)
        assert report.hostname_ok is None
        assert not report.cn_mismatch
        assert report.valid
