"""Study-level calibration: the paper's headline numbers must hold in shape.

Each assertion uses a tolerance band around the value the paper reports;
absolute equality is expected only where the generator pins the quantity
exactly (population sizes).
"""

import pytest

from repro.core import customization, matching, security, sharing
from repro.core.issuers import issuer_report
from repro.core.tables import percent


class TestPopulations:
    def test_device_count(self, dataset):
        assert dataset.device_count == 2014

    def test_vendor_count(self, dataset):
        assert dataset.vendor_count == 65

    def test_user_count(self, dataset):
        assert dataset.user_count == 721

    def test_sni_counts(self, study):
        assert len(study.world.servers) == 1194
        assert len(study.world.reachable_servers()) == 1151

    def test_unreachable_at_probe(self, certificates):
        assert len(certificates.unreachable_fqdns()) == 43

    def test_sld_count(self, study):
        assert len(study.world.servers_by_sld()) == 357


class TestClientSideShape:
    def test_fingerprint_count_near_903(self, dataset):
        assert 800 <= dataset.fingerprint_count <= 1010

    def test_match_rate_near_2_55_percent(self, dataset, corpus):
        report = matching.match_against_corpus(dataset, corpus)
        assert 0.012 <= report.matched_fraction <= 0.042
        # ~98% of fingerprints do NOT match known libraries.
        assert report.matched_fraction < 0.05

    def test_matched_libraries_mostly_unsupported(self, dataset, corpus):
        report = matching.match_against_corpus(dataset, corpus)
        libraries = report.matched_libraries()
        unsupported = report.unsupported_libraries()
        assert len(unsupported) >= 0.8 * len(libraries)

    def test_matched_families(self, dataset, corpus):
        report = matching.match_against_corpus(dataset, corpus)
        families = report.libraries_by_family()
        # The paper's matches resolve to curl+OpenSSL and Mbed TLS.
        assert families.get("curl+OpenSSL", 0) >= 10
        assert families.get("Mbed TLS", 0) >= 1

    def test_degree_distribution(self, dataset):
        distribution = customization.degree_distribution(dataset)
        assert 0.70 <= distribution["1"] <= 0.83       # paper: 77.47%
        assert 0.07 <= distribution["2"] <= 0.17       # paper: 11.43%
        assert 0.04 <= distribution["3-5"] <= 0.13     # paper: 8.32%
        assert 0.005 <= distribution[">5"] <= 0.06     # paper: 2.78%

    def test_vulnerable_share(self, dataset):
        report = security.vulnerability_report(dataset)
        assert 0.33 <= report.vulnerable_fraction <= 0.55  # paper: 44.63%
        assert 0.30 <= report.component_fraction("3DES") <= 0.52
        # 3DES is the most common vulnerable component.
        assert report.component_counts["3DES"] == max(
            report.component_counts.values())

    def test_severe_suites_limited(self, dataset):
        report = security.vulnerability_report(dataset)
        # Paper: 31 fingerprints / 27 devices / 14 vendors.
        assert 8 <= report.severe_fingerprints <= 60
        assert 10 <= len(report.severe_devices) <= 60
        assert 4 <= len(report.severe_vendors) <= 20

    def test_doc_vendor_shape(self, dataset):
        values = list(customization.doc_vendor_all(dataset).values())
        with_unique = sum(1 for v in values if v > 0) / len(values)
        fully_unique = sum(1 for v in values if v == 1) / len(values)
        assert with_unique > 0.70     # paper: "over 70% of vendors"
        assert 0.10 <= fully_unique <= 0.35   # paper: ~20%

    def test_supply_chain_pairs(self, dataset):
        pairs = sharing.vendor_similarity_pairs(dataset)
        as_dict = {(a, b): s for s, a, b in pairs}
        assert as_dict.get(("HDHomeRun", "SiliconDust")) == 1.0
        assert as_dict.get(("Sharp", "TCL"), 0) >= 0.5
        assert as_dict.get(("Arlo", "NETGEAR"), 0) >= 0.2

    def test_server_ties_near_17_percent(self, dataset, corpus):
        fraction, ties = sharing.server_specific_fingerprints(dataset,
                                                              corpus)
        assert 0.08 <= fraction <= 0.30    # paper: 17.42%
        vendors_seen = {v for tie in ties for v in tie.vendors}
        # Cross-vendor ties exist and include the Roku-platform brands.
        assert {"Roku", "TCL"} <= vendors_seen


class TestServerSideShape:
    def test_leaf_and_org_counts(self, study, dataset, certificates):
        report = issuer_report(dataset, certificates, study.ecosystem)
        assert 700 <= report.leaf_count <= 900     # paper: 842
        assert report.issuer_org_count == 33

    def test_digicert_share(self, study, dataset, certificates):
        report = issuer_report(dataset, certificates, study.ecosystem)
        assert 0.40 <= report.issuer_share("DigiCert") <= 0.54  # 47.26%

    def test_private_ca_share(self, study, dataset, certificates):
        report = issuer_report(dataset, certificates, study.ecosystem)
        assert 0.06 <= report.private_leaf_share() <= 0.14      # 9.86%

    def test_self_signing_vendors(self, study, dataset, certificates):
        report = issuer_report(dataset, certificates, study.ecosystem)
        self_signing = report.vendors_self_signing()
        assert 12 <= len(self_signing) <= 16       # paper: 16
        for vendor in ("Roku", "Samsung", "Tuya", "Canary"):
            assert vendor in self_signing

    def test_exclusive_vendor_ca_usage(self, study, dataset, certificates):
        report = issuer_report(dataset, certificates, study.ecosystem)
        exclusive = report.vendors_exclusively_self_signed()
        assert set(exclusive) == {"Canary", "Obihai", "Tuya"}
