"""End-to-end tests for OCSP stapling through the handshake path."""

import pytest

from repro.inspector.timeline import PROBE_TIME
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.extensions import ExtensionType
from repro.tlslib.handshake import ServerConfig, TLSClient, TLSServer
from repro.tlslib.versions import TLSVersion
from repro.x509.revocation import (
    CertStatus,
    OCSPResponse,
    RevocationChecker,
)


class TestHandshakeStapling:
    @staticmethod
    def run(extensions, staple_provider):
        server = TLSServer(ServerConfig(
            supported_versions=frozenset({TLSVersion.TLS_1_2}),
            supported_suites=(0xC02F,),
            chain_provider=lambda _s: [b"leaf"],
            staple_provider=staple_provider))
        hello = ClientHello(version=TLSVersion.TLS_1_2,
                            ciphersuites=[0xC02F],
                            extensions=list(extensions), sni="h.example")
        return TLSClient().handshake(hello, server)

    def test_staple_delivered_when_requested(self):
        result = self.run([0, int(ExtensionType.STATUS_REQUEST)],
                          lambda _s: b"staple-bytes")
        assert result.ocsp_staple == b"staple-bytes"

    def test_no_staple_without_request(self):
        result = self.run([0], lambda _s: b"staple-bytes")
        assert result.ocsp_staple is None

    def test_no_staple_without_provider(self):
        result = self.run([0, int(ExtensionType.STATUS_REQUEST)], None)
        assert result.ocsp_staple is None

    def test_empty_staple_omitted(self):
        result = self.run([0, int(ExtensionType.STATUS_REQUEST)],
                          lambda _s: None)
        assert result.ocsp_staple is None


class TestStudyStapling:
    def test_some_servers_staple(self, study, certificates):
        stapled = [r for r in certificates.results_at().values()
                   if r.stapled]
        reachable = len(certificates.reachable_fqdns())
        # Partial adoption: a meaningful minority, never everyone.
        assert 0.15 * reachable < len(stapled) < 0.6 * reachable

    def test_private_ca_servers_never_staple(self, study, certificates):
        from repro.core.issuers import leaf_issuer_org
        for result in certificates.results_at().values():
            if result.stapled:
                org = leaf_issuer_org(result.leaf)
                assert study.ecosystem.is_public_trust(org)

    def test_staples_verify_against_issuer(self, study, certificates):
        checked = 0
        for result in certificates.results_at().values():
            if not result.stapled or checked >= 20:
                continue
            response = OCSPResponse.from_bytes(result.ocsp_staple)
            ca = study.ecosystem.issuer(response.responder_name)
            checker = RevocationChecker(
                {response.responder_name: ca.signing_key.public})
            assert checker.check_staple(result.leaf, response,
                                        at=PROBE_TIME) == CertStatus.GOOD
            checked += 1
        assert checked == 20

    def test_staple_roundtrip(self, certificates):
        result = next(r for r in certificates.results_at().values()
                      if r.stapled)
        response = OCSPResponse.from_bytes(result.ocsp_staple)
        assert OCSPResponse.from_bytes(response.to_bytes()) == response

    def test_stapling_deterministic(self, study):
        first = {f for f in study.network.endpoints
                 if study.network.server_staples(f)}
        second = {f for f in study.network.endpoints
                  if study.network.server_staples(f)}
        assert first == second
