"""Tests for the multi-seed sweep engine (``repro.sweep``).

Covers the campaign contract end to end: grid expansion and unit
content keys, the atomic campaign ledger, resume-after-kill (a partial
ledger re-runs only incomplete configs), aggregator statistics on known
inputs, calibrated-band failures, and the core determinism guarantee —
a process pool produces per-config digests byte-identical to the serial
reference path over the same shared artifact store.
"""

import json

import pytest

from repro.cli import main
from repro.config import MAJOR_STORES, StudyConfig
from repro.store.campaign import (CAMPAIGN_FORMAT, CampaignIndex,
                                  campaign_id_for)
from repro.sweep import (FAULT_ABLATION, SCALAR_BANDS, ScalarStats,
                         SweepAggregator, SweepRunner, SweepUnit,
                         campaign_units, expand_grid, parse_grid)


@pytest.fixture
def config():
    return StudyConfig()


class TestGrid:
    def test_parse_grid_implies_seeds(self):
        assert parse_grid("seeds") == ("seeds",)
        assert parse_grid("stores") == ("seeds", "stores")
        assert parse_grid("seeds, stores ,faults") == \
            ("seeds", "stores", "faults")

    def test_parse_grid_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="frobnicate"):
            parse_grid("seeds,frobnicate")

    def test_seed_grid_is_consecutive(self, config):
        units = expand_grid(config, seeds=3)
        assert [unit.name for unit in units] == \
            ["seed2023", "seed2024", "seed2025"]
        assert [unit.seed for unit in units] == [2023, 2024, 2025]
        assert all(unit.stage == "full" and not unit.fault_rates
                   for unit in units)

    def test_stores_axis_adds_single_store_ablations(self, config):
        units = expand_grid(config, seeds=1, grid="stores")
        assert len(units) == 1 + len(MAJOR_STORES)
        ablations = [unit for unit in units if "-store-" in unit.name]
        assert sorted(unit.trust_stores[0] for unit in ablations) == \
            sorted(MAJOR_STORES)
        assert all(len(unit.trust_stores) == 1 for unit in ablations)

    def test_faults_axis_raises_retry_budget(self, config):
        units = expand_grid(config, seeds=2, grid="faults")
        faulted = [unit for unit in units if unit.fault_rates]
        assert [unit.name for unit in faulted] == \
            ["seed2023-faults", "seed2024-faults"]
        assert all(unit.fault_rates == FAULT_ABLATION for unit in faulted)
        assert all(unit.retries >= 4 for unit in faulted)

    def test_rejects_empty_grid(self, config):
        with pytest.raises(ValueError):
            expand_grid(config, seeds=0)


class TestSweepUnit:
    def test_json_round_trip(self):
        unit = SweepUnit(name="u", seed=7, retries=4,
                         trust_stores=("mozilla",),
                         fault_rates=(("transient_rate", 0.2),),
                         time_scale=0.5, stage="probe")
        spec = unit.to_json()
        assert spec["key"] == unit.key()
        assert SweepUnit.from_json(spec) == unit
        json.dumps(spec)  # the spec must cross the process boundary

    def test_key_ignores_name_and_latency_free_knobs(self):
        a = SweepUnit(name="a", seed=7)
        b = SweepUnit(name="b", seed=7)
        assert a.key() == b.key()  # same work → ledger dedupes

    def test_key_tracks_work_selection(self):
        base = SweepUnit(name="u", seed=7)
        assert base.key() != SweepUnit(name="u", seed=8).key()
        assert base.key() != SweepUnit(name="u", seed=7,
                                       stage="probe").key()
        assert base.key() != SweepUnit(name="u", seed=7,
                                       time_scale=0.1).key()
        assert base.key() != SweepUnit(
            name="u", seed=7,
            fault_rates=(("transient_rate", 0.2),)).key()
        assert base.key() != SweepUnit(name="u", seed=7,
                                       trust_stores=("mozilla",)).key()

    def test_validation(self):
        with pytest.raises(ValueError, match="stage"):
            SweepUnit(name="u", seed=7, stage="half")
        with pytest.raises(ValueError, match="retries"):
            SweepUnit(name="u", seed=7, retries=0)
        with pytest.raises(ValueError, match="fault"):
            SweepUnit(name="u", seed=7, retries=1,
                      fault_rates=(("transient_rate", 0.2),))


class TestCampaignIndex:
    def _specs(self, seeds=2):
        return [unit.to_json()
                for unit in expand_grid(StudyConfig(), seeds=seeds)]

    def test_create_load_round_trip(self, tmp_path):
        path = tmp_path / "campaign.json"
        specs = self._specs()
        index = CampaignIndex.create(path, specs, "full",
                                     cache_dir=tmp_path / "cache")
        loaded = CampaignIndex.load(path)
        assert loaded.campaign_id == index.campaign_id
        assert loaded.stage == "full"
        assert loaded.cache_dir == str(tmp_path / "cache")
        assert loaded.units == specs
        assert loaded.matches([spec["key"] for spec in specs])
        assert not loaded.matches(["other"])
        assert [unit.name for unit in campaign_units(loaded)] == \
            ["seed2023", "seed2024"]

    def test_ledger_updates_survive_reload(self, tmp_path):
        path = tmp_path / "campaign.json"
        specs = self._specs()
        index = CampaignIndex.create(path, specs, "full")
        first, second = specs[0]["key"], specs[1]["key"]
        index.complete(first, {"name": "seed2023", "ok": True})
        index.fail(second, "boom")
        loaded = CampaignIndex.load(path)
        assert set(loaded.completed) == {first}
        assert loaded.failed == {second: "boom"}
        # failed units stay pending so a resume retries them
        assert [unit["key"] for unit in loaded.pending_units()] == \
            [second]
        loaded.complete(second, {"name": "seed2024", "ok": True})
        assert loaded.failed == {}
        assert [result["name"] for result in loaded.results()] == \
            ["seed2023", "seed2024"]

    def test_load_rejects_missing_torn_or_foreign(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            CampaignIndex.load(tmp_path / "absent.json")
        torn = tmp_path / "torn.json"
        torn.write_text('{"format": 1, "units": [')
        with pytest.raises(ValueError, match="not valid JSON"):
            CampaignIndex.load(torn)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"format": CAMPAIGN_FORMAT + 1}))
        with pytest.raises(ValueError, match="format"):
            CampaignIndex.load(foreign)

    def test_campaign_id_orders_and_versions(self):
        assert campaign_id_for(["a", "b"], "1") == \
            campaign_id_for(["b", "a"], "1")
        assert campaign_id_for(["a", "b"], "1") != \
            campaign_id_for(["a", "b"], "2")


def _stub_runner(calls, kill_before=None):
    """A unit runner recording call order; optionally dies mid-campaign.

    ``kill_before`` names the unit whose execution raises
    ``KeyboardInterrupt`` — the runner does not catch it (only unit
    *failures* are caught), so it simulates a killed campaign process.
    """
    def run(payload):
        name = payload["unit"]["name"]
        if name == kill_before:
            raise KeyboardInterrupt
        calls.append(name)
        return {"name": name, "key": payload["unit"]["key"],
                "seed": payload["unit"]["seed"], "ok": True,
                "scalars": {}, "issuer_shares": {}, "invariants": {},
                "wall_seconds": 0.0}
    return run


class TestRunnerResume:
    def _runner(self, tmp_path, units, calls, **kwargs):
        return SweepRunner(units,
                           index_path=tmp_path / "campaign.json",
                           workers=1,
                           unit_runner=_stub_runner(calls, **kwargs))

    def test_resume_after_kill_runs_only_incomplete(self, tmp_path,
                                                    config):
        units = expand_grid(config, seeds=3)
        calls = []
        with pytest.raises(KeyboardInterrupt):
            self._runner(tmp_path, units, calls,
                         kill_before="seed2024").run()
        assert calls == ["seed2023"]  # ledger holds the partial campaign
        index = CampaignIndex.load(tmp_path / "campaign.json")
        assert len(index.completed) == 1

        resumed = []
        result = self._runner(tmp_path, units, resumed).run(resume=True)
        assert resumed == ["seed2024", "seed2025"]
        assert result.skipped == ["seed2023"]
        assert result.ok
        assert [r["name"] for r in result.results()] == \
            ["seed2023", "seed2024", "seed2025"]

    def test_failed_units_are_retried_on_resume(self, tmp_path, config):
        units = expand_grid(config, seeds=2)
        calls = []
        runner = self._runner(tmp_path, units, calls)
        runner.unit_runner = lambda payload: (_ for _ in ()).throw(
            RuntimeError("transient outage"))
        result = runner.run()
        assert not result.ok
        assert [name for name, _ in result.failed] == \
            ["seed2023", "seed2024"]

        retried = []
        again = self._runner(tmp_path, units, retried).run(resume=True)
        assert retried == ["seed2023", "seed2024"]
        assert again.ok and not again.skipped

    def test_rerun_over_same_out_dir_skips_completed(self, tmp_path,
                                                     config):
        units = expand_grid(config, seeds=2)
        calls = []
        assert self._runner(tmp_path, units, calls).run().ok
        assert calls == ["seed2023", "seed2024"]

        rerun_calls = []
        rerun = self._runner(tmp_path, units, rerun_calls).run()
        assert rerun_calls == []  # same campaign id → ledger reused
        assert rerun.skipped == ["seed2023", "seed2024"]

    def test_changed_grid_starts_a_fresh_campaign(self, tmp_path,
                                                  config):
        calls = []
        first = self._runner(tmp_path, expand_grid(config, seeds=1),
                             calls)
        old_id = first.run().index.campaign_id

        grown_calls = []
        grown = self._runner(tmp_path, expand_grid(config, seeds=2),
                             grown_calls).run()
        assert grown.index.campaign_id != old_id
        assert grown_calls == ["seed2023", "seed2024"]  # no stale skips
        assert not grown.skipped

    def test_fresh_campaign_requires_units(self, tmp_path):
        with pytest.raises(ValueError, match="at least one unit"):
            SweepRunner((), index_path=tmp_path / "c.json").run()


def _fake_result(name, seed=2023, match_rate=0.026, invariant_ok=True):
    return {
        "name": name, "key": f"key-{name}", "seed": seed,
        "stage": "full", "ok": True,
        "config_digest": f"cfg-{name}", "artifact_digest": f"art-{name}",
        "scalars": {"match_rate": match_rate, "doc_vendor_mean": 0.5,
                    "doc_device_mean": 0.4, "validity_min_days": 90.0,
                    "validity_max_days": 825.0},
        "issuer_shares": {"DigiCert Inc": 0.3, "Let's Encrypt": 0.2},
        "invariants": {"ok": invariant_ok, "checks": [
            {"name": "match_rate_band", "ok": invariant_ok},
            {"name": "doc_unit_interval", "ok": True}]},
        "wall_seconds": 1.5,
    }


class TestAggregator:
    def test_scalar_stats_on_known_inputs(self):
        stats = ScalarStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == 2.5
        assert stats.stddev == pytest.approx(1.290994449)  # sample, n-1
        assert (stats.min, stats.max) == (1.0, 4.0)
        lone = ScalarStats.of([0.25])
        assert (lone.mean, lone.stddev) == (0.25, 0.0)

    def test_report_aggregates_scalars_and_invariants(self):
        results = [_fake_result("seed2023", match_rate=0.02),
                   _fake_result("seed2024", seed=2024, match_rate=0.03)]
        report = SweepAggregator(results, campaign_id="c" * 64).report()
        assert report.ok
        assert report.units_completed == report.units_total == 2
        assert report.scalars["match_rate"].mean == pytest.approx(0.025)
        assert report.invariants["match_rate_band"] == \
            {"passed": 2, "n": 2, "ok": True}
        assert report.issuer_shares["DigiCert Inc"].n == 2
        # band checks only cover scalars the units actually emit —
        # the ml_* bands need stage="ml" units
        assert {entry["scalar"] for entry in report.bands} == \
            set(SCALAR_BANDS) & set(report.scalars)
        assert all(entry["ok"] for entry in report.bands)
        assert "sweep OK" in report.render()
        json.dumps(report.to_json())

    def test_out_of_band_unit_fails_the_report(self):
        # mean of (0.02, 0.2) still exceeds the match-rate band, and the
        # second unit is individually out of band — both verdicts flip.
        results = [_fake_result("a", match_rate=0.02),
                   _fake_result("b", match_rate=0.2)]
        report = SweepAggregator(results).report()
        band = {entry["scalar"]: entry for entry in report.bands}
        assert not band["match_rate"]["ok"]
        assert not band["match_rate"]["units_ok"]
        assert not report.ok
        assert "SWEEP CHECK FAILED" in report.render()

    def test_failing_invariant_anywhere_fails_the_report(self):
        results = [_fake_result("a"), _fake_result("b",
                                                   invariant_ok=False)]
        report = SweepAggregator(results).report()
        assert report.invariants["match_rate_band"] == \
            {"passed": 1, "n": 2, "ok": False}
        assert not report.ok

    def test_from_index_carries_failures(self, tmp_path):
        specs = [{"name": "a", "key": "ka"}, {"name": "b", "key": "kb"}]
        index = CampaignIndex.create(tmp_path / "c.json", specs, "full")
        index.complete("ka", _fake_result("a"))
        index.fail("kb", "worker died")
        report = SweepAggregator.from_index(index).report()
        assert report.units_total == 2
        assert report.units_completed == 1
        assert report.failures == [("b", "worker died")]
        assert not report.ok
        assert "FAILED b: worker died" in report.render()


@pytest.fixture(scope="module")
def sweep_root(tmp_path_factory):
    """Shared scratch dir: the pooled campaign warms ``cache`` for the
    serial-reference and CLI tests."""
    return tmp_path_factory.mktemp("sweep")


@pytest.fixture(scope="module")
def pooled(sweep_root):
    """A real 2-seed probe-stage campaign across a 2-worker process pool."""
    units = expand_grid(StudyConfig(), seeds=2, stage="probe")
    runner = SweepRunner(units, index_path=sweep_root / "pool.json",
                         workers=2, cache_dir=sweep_root / "cache")
    return units, runner.run()


class TestProcessPool:
    """End-to-end: real studies, real spawn workers, shared store."""

    def test_pool_completes_all_units(self, pooled):
        units, result = pooled
        assert result.ok
        assert sorted(result.ran) == ["seed2023", "seed2024"]
        for payload in result.results():
            assert payload["node_digests"]["probe.certificates"]
            assert payload["scalars"]["reachable_snis"] > 0
            assert payload["stage_timings"]  # worker obs travelled back

    def test_serial_digests_byte_identical_to_pool(self, sweep_root,
                                                   pooled):
        units, pool_result = pooled
        serial = SweepRunner(units,
                             index_path=sweep_root / "serial.json",
                             workers=1,
                             cache_dir=sweep_root / "cache").run()
        assert serial.ok
        by_key = {payload["key"]: payload
                  for payload in pool_result.results()}
        for payload in serial.results():
            pooled_payload = by_key[payload["key"]]
            assert payload["config_digest"] == \
                pooled_payload["config_digest"]
            assert payload["node_digests"] == \
                pooled_payload["node_digests"]
            assert payload["artifact_digest"] == \
                pooled_payload["artifact_digest"]

    def test_cli_run_resume_report(self, sweep_root, tmp_path, capsys):
        out = tmp_path / "campaign"
        cache = sweep_root / "cache"  # warm from the pooled fixture
        argv = ["sweep", "run", "--seeds", "1", "--workers", "1",
                "--stage", "probe", "--out", str(out),
                "--cache-dir", str(cache)]
        assert main(argv) == 0
        report = json.loads((out / "sweep_report.json").read_text())
        assert report["ok"]
        assert report["units_completed"] == 1

        assert main(argv) == 0  # re-run skips via the ledger
        assert "skipped 1" in capsys.readouterr().out

        assert main(["sweep", "resume", "--out", str(out)]) == 0
        assert main(["sweep", "report", "--out", str(out)]) == 0
        assert "sweep OK" in capsys.readouterr().out
