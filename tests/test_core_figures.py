"""Tests for the figure data exporters."""

import json

import pytest

from repro.core import figures
from repro.core.chains import validate_all
from repro.inspector.timeline import PROBE_TIME


class TestFigure1:
    def test_nodes_and_links(self, dataset):
        data = figures.figure1_data(dataset)
        vendors = [n for n in data["nodes"] if n["kind"] == "vendor"]
        fps = [n for n in data["nodes"] if n["kind"] == "fingerprint"]
        assert len(vendors) == 65
        assert len(fps) == dataset.fingerprint_count
        node_ids = {n["id"] for n in data["nodes"]}
        for link in data["links"]:
            assert link["source"] in node_ids
            assert link["target"] in node_ids

    def test_json_serializable(self, dataset):
        json.dumps(figures.figure1_data(dataset))


class TestFigure2:
    def test_sorted_unit_values(self, dataset):
        data = figures.figure2_data(dataset)
        for series in data.values():
            assert series == sorted(series)
            assert all(0.0 <= value <= 1.0 for value in series)
            assert len(series) == 65


class TestFigure5:
    def test_matrix_rows_normalized(self, study, dataset, certificates):
        data = figures.figure5_data(dataset, certificates, study.ecosystem)
        assert set(data["public"]) | set(data["private"]) == \
            set(data["issuers"])
        for vendor, row in data["matrix"].items():
            assert sum(row.values()) == pytest.approx(1.0, abs=0.01)


class TestFigure6:
    def test_points_shape(self, study, dataset, certificates, survey):
        data = figures.figure6_data(dataset, certificates, survey,
                                    study.ecosystem, study.network.ct_logs)
        assert data["points"]
        for point in data["points"][:50]:
            assert point["validity_days"] > 0
            assert isinstance(point["in_ct"], bool)


class TestExportAll:
    def test_writes_all_files(self, study, tmp_path):
        written = figures.export_all(study, tmp_path)
        assert len(written) == 9
        for path in written:
            payload = json.loads(path.read_text())
            assert payload  # non-empty, valid JSON

    def test_figure9_flows(self, dataset):
        data = figures.figure9_data(dataset)
        assert "Synology" in data
        assert any("3DES" in key for key in data["Synology"])

    def test_figure10_vendor_coverage(self, dataset):
        data = figures.figure10_data(dataset)
        assert len(data) == 65

    def test_figure11_indexes_sorted(self, dataset):
        data = figures.figure11_data(dataset)
        for values in data.values():
            assert values == sorted(values)
