"""Tests for the streaming ingest path (repro.ingest)."""

import pytest

from repro.config import StudyConfig
from repro.ingest import (ANALYSIS_NAMES, DEFAULT_WINDOW_SECONDS,
                          Ingester, TimelineStream, batch_snapshots,
                          default_analyses)
from repro.ingest.incremental import FingerprintIndex, fingerprint_id
from repro.inspector.timeline import CAPTURE_END, CAPTURE_START, days
from repro.store.artifact import ArtifactStore
from repro.verify import check_streaming
from repro.verify.canonical import canonicalize, digest

from .conftest import make_record


def snap_digest(payload):
    return digest(canonicalize(payload))


class TestTimelineStream:
    def test_records_time_ordered(self, study):
        stream = TimelineStream.from_study(study)
        stamps = [record.timestamp for record in stream.records]
        assert stamps == sorted(stamps)
        assert len(stream.records) == len(study.dataset.records)

    def test_windows_cover_capture_span(self, study):
        stream = TimelineStream.from_study(study)
        windows = list(stream.windows())
        assert windows[0].start == CAPTURE_START
        assert windows[-1].end == CAPTURE_END
        for before, after in zip(windows, windows[1:]):
            assert after.start == before.end
            assert after.index == before.index + 1
        assert sum(len(w) for w in windows) == len(stream.records)

    def test_stream_deterministic_per_config(self, study):
        one = TimelineStream.from_study(study)
        two = TimelineStream.from_study(study)
        assert [r.device_id for r in one.records] == \
            [r.device_id for r in two.records]

    def test_empty_windows_emitted(self):
        records = [make_record(timestamp=CAPTURE_START + 10)]
        stream = TimelineStream(records, window_seconds=days(28))
        windows = list(stream.windows())
        assert len(windows) == stream.window_count
        assert len(windows[0]) == 1
        assert all(len(w) == 0 for w in windows[1:])

    def test_out_of_span_records_clamped(self):
        records = [make_record(timestamp=CAPTURE_START - 999),
                   make_record(timestamp=CAPTURE_END + 999)]
        stream = TimelineStream(records)
        windows = list(stream.windows())
        assert len(windows[0]) == 1
        assert len(windows[-1]) == 1

    def test_resume_cursor_skips_absorbed_windows(self, study):
        stream = TimelineStream.from_study(study)
        tail = list(stream.windows(after=4))
        assert tail[0].index == 5
        assert len(tail) == stream.window_count - 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimelineStream([], window_seconds=0)
        with pytest.raises(ValueError):
            TimelineStream([], start=10, end=10)


class TestIncrementalAnalyses:
    def test_streaming_equals_batch_node_for_node(self, study):
        ingester = Ingester(study).run()
        batch = batch_snapshots(study)
        streaming = ingester.snapshots()
        assert set(streaming) == set(ANALYSIS_NAMES)
        for name in ANALYSIS_NAMES:
            assert snap_digest(streaming[name]) == \
                snap_digest(batch[name]), name

    def test_window_width_does_not_change_final_state(self, study):
        wide = Ingester(study, window_seconds=days(120)).run()
        narrow = Ingester(study, window_seconds=days(7)).run()
        for name in ANALYSIS_NAMES:
            assert snap_digest(wide.snapshots()[name]) == \
                snap_digest(narrow.snapshots()[name]), name

    def test_fingerprint_index_lookup(self, study):
        index = FingerprintIndex()
        for record in study.dataset.records:
            index.update(record)
        fp = study.dataset.records[0].fingerprint()
        entry = index.lookup(fingerprint_id(fp))
        assert entry is not None
        assert study.dataset.records[0].vendor in entry["vendors"]
        assert index.lookup("no-such-id") is None

    def test_fingerprint_index_similar(self, study):
        from repro.match import fingerprint_tokens, set_jaccard
        index = FingerprintIndex()
        for record in study.dataset.records:
            index.update(record)
        fp = study.dataset.records[0].fingerprint()
        hits = index.similar(fingerprint_id(fp), threshold=0.5,
                             limit=5)
        assert index.similar("no-such-id") is None
        assert len(hits) <= 5
        probe = fingerprint_tokens(fp)
        for hit in hits:
            other = (hit["tls_version"], tuple(hit["ciphersuites"]),
                     tuple(hit["extensions"]))
            assert other != fp  # the probe itself is excluded
            assert hit["similarity"] == set_jaccard(
                probe, fingerprint_tokens(other))
            assert hit["similarity"] >= 0.5

    def test_fingerprint_index_similar_after_restore(self, study):
        original = FingerprintIndex()
        for record in study.dataset.records:
            original.update(record)
        restored = FingerprintIndex()
        restored.restore(original.checkpoint())
        fp_id = fingerprint_id(study.dataset.records[0].fingerprint())
        assert restored.similar(fp_id, threshold=0.4) == \
            original.similar(fp_id, threshold=0.4)

    def test_merge_partitions_equals_whole(self, study):
        stream = TimelineStream.from_study(study)
        halves = [default_analyses(study), default_analyses(study)]
        for window in stream.windows():
            target = halves[0 if window.index % 2 == 0 else 1]
            for analysis in target:
                analysis.observe_window(window)
        whole = Ingester(study).run()
        for left, right, reference in zip(halves[0], halves[1],
                                          whole.analyses):
            left.merge(right)
            assert snap_digest(left.snapshot()) == \
                snap_digest(reference.snapshot()), left.name

    def test_checkpoint_restore_round_trip(self, study):
        original = Ingester(study).run()
        for analysis, fresh in zip(original.analyses,
                                   default_analyses(study)):
            fresh.restore(analysis.checkpoint())
            assert snap_digest(fresh.snapshot()) == \
                snap_digest(analysis.snapshot()), analysis.name


class TestIngesterResume:
    def test_resume_after_kill_matches_uninterrupted(self, study,
                                                     tmp_path):
        store = ArtifactStore(tmp_path)
        killed = Ingester(study, store=store, compact_every=4)
        killed.run(stop_after_windows=6)
        assert not killed.finished
        # the simulated kill loses the windows after the last compact
        assert killed.last_compacted == 3
        resumed = Ingester(study, store=store, compact_every=4).run()
        assert resumed.resumed
        assert resumed.finished
        uninterrupted = Ingester(study).run()
        for name in ANALYSIS_NAMES:
            assert snap_digest(resumed.snapshots()[name]) == \
                snap_digest(uninterrupted.snapshots()[name]), name
        assert resumed.records_ingested == \
            uninterrupted.records_ingested

    def test_finished_ingester_compacts_tail(self, study, tmp_path):
        store = ArtifactStore(tmp_path)
        ingester = Ingester(study, store=store, compact_every=4).run()
        assert ingester.finished
        assert ingester.last_compacted == \
            ingester.stream.window_count - 1

    def test_resume_from_finished_checkpoint_is_noop(self, study,
                                                     tmp_path):
        store = ArtifactStore(tmp_path)
        first = Ingester(study, store=store).run()
        again = Ingester(study, store=store).run()
        assert again.resumed and again.finished
        for name in ANALYSIS_NAMES:
            assert snap_digest(again.snapshots()[name]) == \
                snap_digest(first.snapshots()[name]), name

    def test_no_store_still_runs(self, study):
        ingester = Ingester(study, store=None).run()
        assert ingester.finished
        assert ingester.last_compacted == -1

    def test_empty_window_compaction(self, study, tmp_path):
        """Compaction cadence holds over windows with no traffic."""
        from repro.inspector.dataset import InspectorDataset
        from repro.study import Study
        sparse = Study(StudyConfig())
        sparse._dataset = InspectorDataset(
            [make_record(timestamp=CAPTURE_START + 5)])
        sparse.adopt_certificates(study.certificates)
        store = ArtifactStore(tmp_path)
        ingester = Ingester(sparse, store=store, compact_every=2).run()
        assert ingester.finished
        assert ingester.records_ingested == 1
        assert ingester.last_compacted == \
            ingester.stream.window_count - 1

    def test_status_payload(self, study):
        status = Ingester(study).run().status()
        assert status["finished"] is True
        assert status["windows_ingested"] == status["windows_total"]
        assert status["records_ingested"] == \
            len(study.dataset.records)


class TestVerifyStreaming:
    def test_check_streaming_ok(self, study):
        report = check_streaming(study)
        assert report.ok
        assert set(report.nodes) == set(ANALYSIS_NAMES)
        payload = report.to_json()
        assert payload["schema_version"] == 1
        assert payload["ok"] is True
        assert "streaming == batch" in report.render()

    def test_check_streaming_window_equals_default(self, study):
        assert DEFAULT_WINDOW_SECONDS == days(28)
        report = check_streaming(study,
                                 window_seconds=days(60))
        assert report.ok
