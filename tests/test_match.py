"""The ``repro.match`` core: bitsets, sketches, indexes, and the engine.

Three contracts are pinned here:

- the Jaccard contract (bounds, symmetry, identity, empty-set rules)
  holds identically for the deprecated ``sharing.jaccard`` shim, the
  non-deprecated ``set_jaccard``, and the popcount
  ``FingerprintVector.jaccard``;
- exactness: seeded fuzz proves sketch candidate generation is a
  *superset* of every pair at or above any positive threshold, and that
  ``SimilarityIndex.query``/``all_pairs`` return exactly what a
  brute-force scan returns;
- engine equivalence: ``exact`` and ``sketch`` modes produce
  byte-identical (canonical-digest-equal) analysis results.
"""

import random
from itertools import combinations

import pytest

from repro.core import matching, sharing
from repro.match import (CorpusIndex, FeatureSpace, FingerprintVector,
                         MatchEngine, MinHasher, SimilarityIndex,
                         SketchParams, active_mode, engine_mode,
                         fingerprint_tokens, seed_for_config,
                         set_default_mode, set_jaccard, shared_engine)
from repro.match.synth import (random_universe, scaled_fingerprints,
                               scaled_vendor_sets)
from repro.match.vector import _popcount_compat, popcount
from repro.verify.canonical import digest


def brute_force_pairs(sets, threshold):
    """Reference all-pairs scan with plain-set Jaccard."""
    results = [(set_jaccard(sets[a], sets[b]), a, b)
               for a, b in combinations(sorted(sets), 2)
               if set_jaccard(sets[a], sets[b]) >= threshold]
    results.sort(key=lambda row: (-row[0], row[1], row[2]))
    return results


class TestPopcountAndVector:
    def test_popcount_implementations_agree(self):
        rng = random.Random(0)
        for _ in range(200):
            value = rng.getrandbits(rng.randint(1, 300))
            assert popcount(value) == _popcount_compat(value)
        assert popcount(0) == 0

    def test_vector_set_algebra_matches_sets(self):
        rng = random.Random(1)
        space = FeatureSpace()
        for _ in range(50):
            a = set(rng.sample(range(100), rng.randint(0, 40)))
            b = set(rng.sample(range(100), rng.randint(0, 40)))
            va = FingerprintVector.from_tokens(a, space)
            vb = FingerprintVector.from_tokens(b, space)
            assert va.count == len(a)
            assert va.intersection_count(vb) == len(a & b)
            assert va.union_count(vb) == len(a | b)
            assert va.jaccard(vb) == set_jaccard(a, b)

    def test_from_fingerprint_round_trips_tokens(self):
        space = FeatureSpace()
        fp = (0x0303, (0x2F, 0x35), (0, 11, 35))
        vector = FingerprintVector.from_fingerprint(fp, space)
        assert vector.tokens() == fingerprint_tokens(fp)
        assert vector.count == 1 + 2 + 3

    def test_suite_and_extension_codes_stay_distinct(self):
        # Suite 11 and extension 11 must be different features.
        space = FeatureSpace()
        only_suite = FingerprintVector.from_fingerprint(
            (0x0303, (11,), ()), space)
        only_ext = FingerprintVector.from_fingerprint(
            (0x0303, (), (11,)), space)
        assert only_suite.intersection_count(only_ext) == 1  # version
        assert only_suite.union_count(only_ext) == 3

    def test_cross_space_comparison_rejected(self):
        va = FingerprintVector.from_tokens({1}, FeatureSpace())
        vb = FingerprintVector.from_tokens({1}, FeatureSpace())
        with pytest.raises(ValueError, match="FeatureSpace"):
            va.jaccard(vb)


def _shim_jaccard(a, b):
    with pytest.warns(DeprecationWarning):
        return sharing.jaccard(a, b)


def _vector_jaccard(a, b):
    space = FeatureSpace()
    return FingerprintVector.from_tokens(a, space).jaccard(
        FingerprintVector.from_tokens(b, space))


#: every implementation bound to the one pinned Jaccard contract.
JACCARD_IMPLS = [
    pytest.param(set_jaccard, id="set_jaccard"),
    pytest.param(_shim_jaccard, id="sharing.jaccard"),
    pytest.param(_vector_jaccard, id="FingerprintVector"),
]


@pytest.mark.parametrize("impl", JACCARD_IMPLS)
class TestJaccardContract:
    def test_two_empty_sets(self, impl):
        assert impl(set(), set()) == 0.0

    def test_one_empty_set(self, impl):
        assert impl(set(), {1, 2}) == 0.0
        assert impl({1, 2}, set()) == 0.0

    def test_identical_set_is_one(self, impl):
        assert impl({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_symmetry_and_bounds(self, impl):
        rng = random.Random(3)
        for _ in range(25):
            a = set(rng.sample(range(40), rng.randint(0, 15)))
            b = set(rng.sample(range(40), rng.randint(0, 15)))
            forward, backward = impl(a, b), impl(b, a)
            assert forward == backward
            assert 0.0 <= forward <= 1.0

    def test_agrees_with_reference(self, impl):
        rng = random.Random(4)
        for _ in range(25):
            a = set(rng.sample(range(40), rng.randint(0, 15)))
            b = set(rng.sample(range(40), rng.randint(0, 15)))
            assert impl(a, b) == set_jaccard(a, b)


class TestSketch:
    def test_params_validation(self):
        with pytest.raises(ValueError, match="divide"):
            SketchParams(num_hashes=64, bands=13)
        with pytest.raises(ValueError, match=">= 1"):
            SketchParams(num_hashes=0)
        assert SketchParams(num_hashes=64, bands=16).rows == 4

    def test_collision_probability_monotone(self):
        params = SketchParams()
        probabilities = [params.collision_probability(s / 10)
                        for s in range(11)]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] == 0.0
        assert probabilities[-1] == pytest.approx(1.0)

    def test_signatures_deterministic_across_instances(self):
        positions = [3, 17, 42]
        one = MinHasher(seed=9).signature(positions)
        two = MinHasher(seed=9).signature(positions)
        assert one == two
        assert MinHasher(seed=10).signature(positions) != one

    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(seed=0)
        signature = hasher.signature([1, 5, 9])
        assert hasher.estimate(signature, signature) == 1.0

    def test_empty_set_signature_is_sentinel(self):
        hasher = MinHasher(seed=0)
        empty = hasher.signature([])
        assert len(set(empty)) == 1
        assert hasher.estimate(empty, hasher.signature([])) == 1.0


class TestSimilarityIndexExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_candidates_superset_and_queries_exact(self, seed):
        # The satellite fuzz contract: for random universes, sketch
        # candidate pairs ⊇ every pair ≥ threshold, and query/all_pairs
        # equal brute force exactly.
        sets = random_universe(50, universe=120, seed=seed)
        index = SimilarityIndex(seed=seed)
        for item, tokens in sets.items():
            index.add(item, tokens)
        candidates = index.candidate_pairs()
        for threshold in (0.1, 0.3, 0.5, 0.9):
            brute = brute_force_pairs(sets, threshold)
            assert {(a, b) for s, a, b in brute} <= candidates
            assert index.all_pairs(threshold) == brute
        for item in list(sets)[:10]:
            expected = sorted(
                ((set_jaccard(sets[item], sets[other]), other)
                 for other in sets
                 if set_jaccard(sets[item], sets[other]) >= 0.4),
                key=lambda hit: (-hit[0], hit[1]))
            assert index.query(sets[item], 0.4) == expected

    def test_all_pairs_threshold_zero_includes_disjoint(self):
        index = SimilarityIndex()
        index.add("a", {1, 2})
        index.add("b", {3, 4})
        assert index.all_pairs(0.0) == [(0.0, "a", "b")]
        assert index.all_pairs(0.1) == []

    def test_query_limit_and_order(self):
        index = SimilarityIndex()
        index.add("far", {1, 9})
        index.add("near", {1, 2, 3})
        index.add("exactly", {1, 2, 3, 4})
        hits = index.query({1, 2, 3, 4}, threshold=0.2, limit=2)
        assert hits == [(1.0, "exactly"), (0.75, "near")]

    def test_duplicate_id_rejected(self):
        index = SimilarityIndex()
        index.add("a", {1})
        with pytest.raises(ValueError, match="already indexed"):
            index.add("a", {2})

    def test_incremental_add_keeps_sketches_consistent(self):
        # Forcing sketch construction early must not desync later adds.
        sets = random_universe(30, seed=11)
        items = sorted(sets)
        index = SimilarityIndex(seed=11)
        for item in items[:10]:
            index.add(item, sets[item])
        index.signature(items[0])  # builds sketches mid-stream
        for item in items[10:]:
            index.add(item, sets[item])
        assert index.all_pairs(0.3) == brute_force_pairs(sets, 0.3)


class TestCorpusIndex:
    def test_match_parity_with_linear_corpus(self, corpus, dataset):
        index = CorpusIndex(corpus)
        seen_keys = {entry.key() for entry in corpus}
        for key in seen_keys:
            assert index.match(*key) == corpus.match(*key)
        for fp in dataset.fingerprints():
            assert index.match(*fp) == corpus.match(*fp)
        assert index.match(0x9999, (1, 2), (3,)) is None

    def test_near_matches_exact_vs_brute_force(self, corpus, dataset):
        index = CorpusIndex(corpus)
        keys = sorted({entry.key() for entry in corpus})
        for fp in sorted(dataset.fingerprints())[:20]:
            probe = fingerprint_tokens(fp)
            expected = sorted(
                ((set_jaccard(probe, fingerprint_tokens(key)), key)
                 for key in keys
                 if set_jaccard(probe,
                                fingerprint_tokens(key)) >= 0.7),
                key=lambda hit: (-hit[0], hit[1]))
            hits = index.near_matches(fp, threshold=0.7, limit=None)
            assert [(s, lib.key()) for s, lib in hits] == expected

    def test_prefix_candidates_cover_own_key(self, corpus):
        index = CorpusIndex(corpus)
        for entry in list(corpus)[:50]:
            version, suites, _extensions = entry.key()
            assert entry.key() in index.prefix_candidates(version,
                                                          suites)

    def test_stats_shape(self, corpus):
        stats = CorpusIndex(corpus).stats()
        assert stats["entries"] == len(corpus)
        assert 0 < stats["distinct_keys"] <= stats["entries"]
        assert stats["dedup_ratio"] >= 1.0


class TestEngineEquivalence:
    def test_match_report_identical(self, dataset, corpus):
        exact = MatchEngine(mode="exact")
        sketch = MatchEngine(mode="sketch")
        report_e = exact.match_report(dataset, corpus)
        report_s = sketch.match_report(dataset, corpus)
        assert report_e.matched == report_s.matched
        assert report_e.device_counts == report_s.device_counts
        assert report_e.total_fingerprints == report_s.total_fingerprints

    def test_vendor_similarity_pairs_byte_identical(self, dataset):
        # The satellite contract: canonical digests equal, not just ==.
        pairs_e = MatchEngine(mode="exact").vendor_similarity_pairs(
            dataset)
        pairs_s = MatchEngine(mode="sketch").vendor_similarity_pairs(
            dataset)
        assert digest(pairs_e) == digest(pairs_s)
        assert pairs_e == pairs_s
        assert len(pairs_e) > 0

    def test_server_specific_fingerprints_identical(self, dataset,
                                                    corpus):
        result_e = MatchEngine(mode="exact").server_specific_fingerprints(
            dataset, corpus)
        result_s = MatchEngine(
            mode="sketch").server_specific_fingerprints(dataset, corpus)
        assert result_e == result_s

    def test_scaled_world_pairs_identical(self, dataset):
        # 3x world: exact pairwise vs sketch-pruned must still agree.
        world = {vendor: {("fp", fp) for fp in fingerprints}
                 for vendor, fingerprints
                 in scaled_vendor_sets(dataset, 3).items()}
        index = SimilarityIndex(seed=5)
        for vendor, tokens in world.items():
            index.add(vendor, tokens)
        assert index.all_pairs(0.2) == brute_force_pairs(world, 0.2)

    def test_for_config_seed_derivation(self, study):
        engine = MatchEngine.for_config(study.config)
        assert engine.seed == seed_for_config(study.config)
        assert engine.mode == "sketch"

    def test_engine_index_caches_reused(self, dataset, corpus):
        engine = MatchEngine(mode="sketch")
        assert engine.corpus_index(corpus) is engine.corpus_index(corpus)
        assert engine.vendor_index(dataset) is engine.vendor_index(
            dataset)


class TestModeRegistry:
    def test_default_is_exact(self):
        assert active_mode() == "exact"

    def test_engine_mode_scopes_and_restores(self):
        with engine_mode("sketch"):
            assert active_mode() == "sketch"
            assert shared_engine().mode == "sketch"
        assert active_mode() == "exact"
        assert shared_engine().mode == "exact"

    def test_engine_mode_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine_mode("sketch"):
                raise RuntimeError("boom")
        assert active_mode() == "exact"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown match mode"):
            set_default_mode("approximate")
        with pytest.raises(ValueError, match="unknown match mode"):
            MatchEngine(mode="fuzzy")

    def test_shared_engines_cached_per_mode(self):
        assert shared_engine("exact") is shared_engine("exact")
        assert shared_engine("sketch") is not shared_engine("exact")


class TestDeprecations:
    def test_sharing_jaccard_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.match.set_jaccard"):
            value = sharing.jaccard({1, 2}, {2, 3})
        assert value == set_jaccard({1, 2}, {2, 3})

    def test_match_against_corpus_warns_and_delegates(self, dataset,
                                                      corpus):
        with pytest.warns(DeprecationWarning, match="MatchEngine"):
            report = matching.match_against_corpus(dataset, corpus)
        expected = shared_engine().match_report(dataset, corpus)
        assert report.matched == expected.matched

    def test_non_deprecated_paths_warn_nothing(self, dataset, corpus,
                                               recwarn):
        sharing.vendor_similarity_pairs(dataset)
        sharing.server_specific_fingerprints(dataset, corpus)
        shared_engine().match_report(dataset, corpus)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestSynth:
    def test_scaled_vendor_sets_shape(self, dataset):
        world = scaled_vendor_sets(dataset, 4)
        vendors = dataset.vendor_names()
        assert len(world) == 4 * len(vendors)
        # clone 0 is verbatim; clones are fingerprint-disjoint from it.
        for vendor in vendors[:5]:
            assert world[vendor] == dataset.vendor_fingerprints(vendor)
            assert not world[vendor] & world[f"{vendor}#1"]
            # within-clone overlap structure survives tagging.
            assert len(world[f"{vendor}#2"]) == len(world[vendor])

    def test_scaled_fingerprints_distinct_and_deterministic(self,
                                                            dataset):
        one = scaled_fingerprints(dataset, 3, seed=6)
        two = scaled_fingerprints(dataset, 3, seed=6)
        assert one == two
        assert len(set(one)) == len(one)
        assert len(one) == 3 * len(dataset.fingerprints())

    def test_random_universe_deterministic(self):
        assert random_universe(25, seed=1) == random_universe(25,
                                                              seed=1)
        assert random_universe(25, seed=1) != random_universe(25,
                                                              seed=2)
