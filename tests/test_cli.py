"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_default(self):
        args = build_parser().parse_args(["report"])
        assert args.seed == 2023

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    # The Study cache makes these cheap after the session fixtures ran.

    def test_generate_writes_jsonl(self, tmp_path, study, capsys):
        out = tmp_path / "capture.jsonl"
        assert main(["generate", "-o", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == len(study.dataset.records)
        first = json.loads(lines[0])
        assert {"device_id", "vendor", "ciphersuites", "sni"} <= set(first)

    def test_probe_writes_summary(self, tmp_path, study, capsys):
        out = tmp_path / "certs.jsonl"
        assert main(["probe", "-o", str(out)]) == 0
        rows = [json.loads(line)
                for line in out.read_text().strip().splitlines()]
        assert len(rows) == 1194
        reachable = [row for row in rows if row["reachable"]]
        assert len(reachable) == 1151
        assert all("issuer" in row for row in reachable)

    def test_probe_parallel_identical_output(self, tmp_path, study,
                                             capsys):
        serial_out = tmp_path / "serial.jsonl"
        parallel_out = tmp_path / "parallel.jsonl"
        assert main(["probe", "-o", str(serial_out)]) == 0
        assert main(["probe", "-o", str(parallel_out),
                     "--jobs", "4", "--stats"]) == 0
        assert serial_out.read_text() == parallel_out.read_text()
        text = capsys.readouterr().out
        assert "retries" in text and "outcomes" in text

    def test_probe_flag_defaults(self):
        args = build_parser().parse_args(["probe"])
        assert args.jobs == 1
        assert args.retries == 3
        assert args.stats is False

    def test_report_to_stdout(self, study, capsys):
        assert main(["report", "-o", "-"]) == 0
        text = capsys.readouterr().out
        assert "# IoT TLS & Certificate Practice" in text
        assert "Table 2" in text
        assert "Netflix" in text

    def test_report_to_file(self, tmp_path, study, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out)]) == 0
        assert out.read_text().startswith("# IoT TLS")

    def test_audit_known_vendor(self, study, capsys):
        assert main(["audit", "Tuya"]) == 0
        text = capsys.readouterr().out
        assert "Tuya" in text
        assert "PRIVATE" in text

    def test_audit_unknown_vendor(self, study, capsys):
        assert main(["audit", "NotAVendor"]) == 2

    def test_whatif_revocation(self, study, capsys):
        assert main(["whatif", "revocation"]) == 0
        text = capsys.readouterr().out
        assert "no revocation path" in text


class TestMatchCommands:
    def test_mode_default_is_sketch(self):
        args = build_parser().parse_args(["match", "stats"])
        assert args.mode == "sketch"

    def test_build_index_writes_json(self, tmp_path, study, capsys):
        out = tmp_path / "index.json"
        assert main(["match", "build-index", "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert {"mode", "seed", "corpus", "vendors",
                "fingerprint_ids"} <= set(payload)
        assert payload["mode"] == "sketch"
        assert payload["corpus"]["entries"] >= \
            payload["corpus"]["distinct_keys"]
        assert payload["corpus"]["dedup_ratio"] > 1.0
        assert len(payload["fingerprint_ids"]) == \
            len(study.dataset.fingerprints())
        text = capsys.readouterr().out
        assert "built sketch match index" in text

    def test_query_known_fingerprint(self, tmp_path, study, capsys):
        from repro.ingest.incremental import fingerprint_id
        fp = sorted(study.dataset.fingerprints())[0]
        fp_id = fingerprint_id(fp)
        assert main(["match", "query", fp_id,
                     "--threshold", "0.3"]) == 0
        text = capsys.readouterr().out
        assert f"fingerprint {fp_id}" in text
        assert "exact corpus match:" in text
        assert "near matches (Jaccard >= 0.3)" in text

    def test_query_unknown_fingerprint(self, study, capsys):
        assert main(["match", "query", "no-such-id"]) == 2
        err = capsys.readouterr().err
        assert "unknown fingerprint id" in err

    def test_query_modes_agree(self, study, capsys):
        from repro.ingest.incremental import fingerprint_id
        fp = sorted(study.dataset.fingerprints())[5]
        fp_id = fingerprint_id(fp)
        assert main(["match", "query", fp_id, "--mode", "sketch"]) == 0
        sketch = capsys.readouterr().out
        assert main(["match", "query", fp_id, "--mode", "exact"]) == 0
        exact = capsys.readouterr().out
        assert sketch == exact

    def test_stats(self, study, capsys):
        assert main(["match", "stats"]) == 0
        text = capsys.readouterr().out
        assert "engine: mode=sketch" in text
        assert "corpus:" in text
        assert "vendors:" in text
