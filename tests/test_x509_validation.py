"""Unit tests for trust stores, path building, and Zeek-style validation."""

import random

import pytest

from repro.x509.ca import CertificateAuthority, IssuancePolicy
from repro.x509.chain import build_path
from repro.x509.truststore import TrustStore, major_stores
from repro.x509.validation import ChainStatus, ChainValidator

NOW = 1_600_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def public_ca():
    return CertificateAuthority(
        "PublicTrust", is_public_trust=True, rng=random.Random(21),
        now=NOW - 400 * DAY, intermediate_names=("PublicTrust Sub CA",))


@pytest.fixture(scope="module")
def private_ca():
    return CertificateAuthority(
        "VendorCA", is_public_trust=False, rng=random.Random(22),
        now=NOW - 400 * DAY,
        policy=IssuancePolicy(validity_days=7300, logs_to_ct=False))


@pytest.fixture(scope="module")
def store(public_ca):
    return TrustStore("test-store", [public_ca.root])


@pytest.fixture(scope="module")
def validator(store):
    return ChainValidator(store)


class TestTrustStore:
    def test_membership(self, store, public_ca, private_ca):
        assert store.contains(public_ca.root)
        assert not store.contains(private_ca.root)

    def test_rejects_non_ca(self, public_ca):
        leaf, _ = public_ca.issue_leaf("h.example", now=NOW)
        with pytest.raises(ValueError):
            TrustStore("bad", [leaf])

    def test_find_issuer_verifies_signature(self, store, public_ca):
        intermediate = public_ca.intermediates[0]
        assert store.find_issuer(intermediate) is not None

    def test_union(self, public_ca, private_ca):
        a = TrustStore("a", [public_ca.root])
        # A second store trusting the "private" root (device-local trust).
        b = TrustStore("b", [private_ca.root])
        union = a.union(b)
        assert union.contains(public_ca.root)
        assert union.contains(private_ca.root)
        assert len(union) == 2

    def test_major_stores_aligned(self, public_ca):
        mozilla, apple, microsoft = major_stores([public_ca])
        for trust_store in (mozilla, apple, microsoft):
            assert trust_store.contains(public_ca.root)


class TestPathBuilding:
    def test_path_via_store(self, public_ca, store):
        leaf, _ = public_ca.issue_leaf("h.example", now=NOW)
        path = build_path(public_ca.chain_for(leaf), store)
        assert path.complete
        assert path.anchor_in_store
        assert len(path) == 3  # leaf + intermediate + store root

    def test_path_missing_intermediate(self, public_ca, store):
        leaf, _ = public_ca.issue_leaf("h.example", now=NOW)
        path = build_path([leaf], store)
        assert not path.complete

    def test_path_to_untrusted_root(self, private_ca, store):
        leaf, _ = private_ca.issue_leaf("h.vendor", now=NOW)
        path = build_path(private_ca.chain_for(leaf, include_root=True),
                          store)
        assert path.complete
        assert not path.anchor_in_store

    def test_scrambled_presented_order(self, public_ca, store):
        leaf, _ = public_ca.issue_leaf("h.example", now=NOW)
        chain = public_ca.chain_for(leaf, include_root=True)
        scrambled = [chain[0]] + list(reversed(chain[1:]))
        path = build_path(scrambled, store)
        assert path.complete

    def test_empty_chain_rejected(self, store):
        with pytest.raises(ValueError):
            build_path([], store)


class TestValidationStatuses:
    def test_ok(self, public_ca, validator):
        leaf, _ = public_ca.issue_leaf("good.example", now=NOW)
        report = validator.validate(public_ca.chain_for(leaf),
                                    at=NOW + DAY, hostname="good.example")
        assert report.status is ChainStatus.OK
        assert report.valid

    def test_incomplete_chain(self, public_ca, validator):
        leaf, _ = public_ca.issue_leaf("alone.example", now=NOW)
        report = validator.validate([leaf], at=NOW + DAY)
        assert report.status is ChainStatus.INCOMPLETE_CHAIN

    def test_untrusted_root(self, private_ca, validator):
        leaf, _ = private_ca.issue_leaf("own.vendor", now=NOW)
        report = validator.validate(
            private_ca.chain_for(leaf, include_root=True), at=NOW + DAY)
        assert report.status is ChainStatus.UNTRUSTED_ROOT
        assert report.status.is_private_issuer_status

    def test_private_without_root_is_incomplete(self, private_ca,
                                                 validator):
        # Table 7's core case: private issuer, root neither presented nor
        # in the stores.
        leaf, _ = private_ca.issue_leaf("own2.vendor", now=NOW)
        report = validator.validate([leaf], at=NOW + DAY)
        assert report.status is ChainStatus.INCOMPLETE_CHAIN

    def test_self_signed(self, validator):
        from repro.x509.certificate import sign_certificate
        from repro.x509.keys import generate_keypair
        from repro.x509.names import DistinguishedName
        key = generate_keypair(512, rng=random.Random(30))
        subject = DistinguishedName(common_name="selfie.example")
        cert = sign_certificate(serial=1, subject=subject, issuer=subject,
                                issuer_keypair=key, not_before=NOW,
                                not_after=NOW + DAY, public_key=key.public)
        report = validator.validate([cert], at=NOW)
        assert report.status is ChainStatus.SELF_SIGNED

    def test_expired(self, public_ca, validator):
        leaf, _ = public_ca.issue_leaf("old.example", now=NOW - 500 * DAY,
                                       validity_days=30)
        report = validator.validate(public_ca.chain_for(leaf), at=NOW)
        assert report.status is ChainStatus.EXPIRED
        assert report.expired

    def test_not_yet_valid(self, public_ca, validator):
        leaf, _ = public_ca.issue_leaf("future.example", now=NOW + 100 * DAY)
        report = validator.validate(public_ca.chain_for(leaf), at=NOW)
        assert report.status is ChainStatus.NOT_YET_VALID

    def test_cn_mismatch_flag(self, public_ca, validator):
        leaf, _ = public_ca.issue_leaf("real.example", now=NOW)
        report = validator.validate(public_ca.chain_for(leaf), at=NOW + DAY,
                                    hostname="other.example")
        assert report.status is ChainStatus.OK
        assert report.cn_mismatch
        assert not report.valid

    def test_duplicate_leaf_chain(self, private_ca, validator):
        # The samsunghrm.com case: the same leaf presented twice.
        leaf, _ = private_ca.issue_leaf("hrm.vendor", now=NOW)
        report = validator.validate([leaf, leaf], at=NOW + DAY)
        assert report.status is ChainStatus.INCOMPLETE_CHAIN
        assert report.presented_length == 2

    def test_adding_missing_intermediate_never_hurts(self, public_ca,
                                                     validator):
        # Monotonicity: completing a chain cannot make it worse.
        leaf, _ = public_ca.issue_leaf("mono.example", now=NOW)
        bare = validator.validate([leaf], at=NOW + DAY)
        full = validator.validate(public_ca.chain_for(leaf), at=NOW + DAY)
        assert bare.status is ChainStatus.INCOMPLETE_CHAIN
        assert full.status is ChainStatus.OK

    def test_empty_chain_rejected(self, validator):
        with pytest.raises(ValueError):
            validator.validate([], at=NOW)
