"""Unit tests for ClientHello wire encoding and parsing."""

import pytest

from repro.tlslib.clienthello import ClientHello
from repro.tlslib.errors import TLSParseError
from repro.tlslib.extensions import ExtensionType
from repro.tlslib.versions import TLSVersion


def hello(**kwargs):
    defaults = dict(version=TLSVersion.TLS_1_2,
                    ciphersuites=[0xC02F, 0x009C, 0x000A],
                    extensions=[0, 10, 11, 13],
                    sni="device.vendor.com",
                    random=bytes(range(32)))
    defaults.update(kwargs)
    return ClientHello(**defaults)


class TestConstruction:
    def test_random_generated_when_missing(self):
        built = ClientHello(version=TLSVersion.TLS_1_2,
                            ciphersuites=[0xC02F])
        assert len(built.random) == 32

    def test_bad_random_length_rejected(self):
        with pytest.raises(ValueError):
            ClientHello(version=TLSVersion.TLS_1_2, ciphersuites=[0xC02F],
                        random=b"short")

    def test_sni_implies_server_name_extension(self):
        built = ClientHello(version=TLSVersion.TLS_1_2,
                            ciphersuites=[0xC02F], extensions=[10],
                            sni="a.b.com")
        assert built.extensions[0] == int(ExtensionType.SERVER_NAME)

    def test_grease_accessors(self):
        built = hello(ciphersuites=[0x0A0A, 0xC02F],
                      extensions=[0, 0x0A0A, 10])
        assert built.uses_grease_suites
        assert built.uses_grease_extensions
        assert built.suites_without_grease() == [0xC02F]
        assert 0x0A0A not in built.extensions_without_grease()


class TestRoundTrip:
    def test_basic_roundtrip(self):
        original = hello()
        parsed = ClientHello.from_bytes(original.to_bytes())
        assert parsed.version == original.version
        assert parsed.ciphersuites == list(original.ciphersuites)
        assert parsed.extensions == list(original.extensions)
        assert parsed.sni == original.sni
        assert parsed.random == original.random

    def test_roundtrip_without_extensions(self):
        original = hello(extensions=[], sni=None)
        parsed = ClientHello.from_bytes(original.to_bytes())
        assert parsed.extensions == []
        assert parsed.sni is None

    def test_roundtrip_with_session_id(self):
        original = hello(session_id=b"\x01\x02\x03")
        parsed = ClientHello.from_bytes(original.to_bytes())
        assert parsed.session_id == b"\x01\x02\x03"

    def test_roundtrip_all_versions(self):
        for version in TLSVersion:
            parsed = ClientHello.from_bytes(hello(version=version).to_bytes())
            assert parsed.version == version

    def test_large_suite_list(self):
        suites = list(range(0x0001, 0x0100, 3))
        parsed = ClientHello.from_bytes(hello(ciphersuites=suites).to_bytes())
        assert parsed.ciphersuites == suites

    def test_reencode_is_stable(self):
        wire = hello().to_bytes()
        assert ClientHello.from_bytes(wire).to_bytes() == wire


class TestParseErrors:
    def test_wrong_message_type(self):
        wire = bytearray(hello().to_bytes())
        wire[0] = 0x02  # ServerHello type
        with pytest.raises(TLSParseError):
            ClientHello.from_bytes(bytes(wire))

    def test_truncated_body(self):
        wire = hello().to_bytes()
        with pytest.raises(TLSParseError):
            ClientHello.from_bytes(wire[: len(wire) // 2])

    def test_odd_suite_vector(self):
        original = hello(extensions=[], sni=None)
        wire = bytearray(original.to_bytes())
        # Grow the declared suite-vector length by one byte.
        offset = 4 + 2 + 32 + 1  # type+len, version, random, empty sid
        length = int.from_bytes(wire[offset:offset + 2], "big")
        wire[offset:offset + 2] = (length + 1).to_bytes(2, "big")
        with pytest.raises(TLSParseError):
            ClientHello.from_bytes(bytes(wire))

    def test_unknown_version_rejected(self):
        wire = bytearray(hello().to_bytes())
        wire[4:6] = (0x0909).to_bytes(2, "big")
        with pytest.raises(TLSParseError):
            ClientHello.from_bytes(bytes(wire))

    def test_empty_input(self):
        with pytest.raises(TLSParseError):
            ClientHello.from_bytes(b"")
