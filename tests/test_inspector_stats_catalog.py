"""Tests for dataset statistics, catalog integrity, and vendor profiles."""

import pytest

from repro.inspector import catalog, stats
from repro.inspector.dataset import InspectorDataset
from repro.inspector.timeline import (
    CAPTURE_END,
    CAPTURE_START,
    LAB_END,
    LAB_START,
    PROBE_TIME,
    days,
    parse_date,
)
from repro.inspector.vendors import (
    EXCLUSIVE_CA_VENDORS,
    PROFILES_BY_NAME,
    SHARED_POOLS,
    VENDOR_CA_NAMES,
    VENDOR_PROFILES,
    total_devices,
)
from tests.conftest import make_record


class TestTimeline:
    def test_ordering(self):
        assert CAPTURE_START < CAPTURE_END < PROBE_TIME
        assert LAB_START < CAPTURE_START < LAB_END

    def test_capture_span_about_15_months(self):
        assert 440 <= (CAPTURE_END - CAPTURE_START) / 86_400 <= 470

    def test_days_helper(self):
        assert days(1) == 86_400
        assert days(0.5) == 43_200

    def test_parse_date(self):
        assert parse_date("1970-01-02") == 86_400
        assert parse_date("2018-07-31") < parse_date("2019-04-17")


class TestVendorProfiles:
    def test_population_pinned(self):
        assert len(VENDOR_PROFILES) == 65
        assert total_devices() == 2014

    def test_indexes_are_table13(self):
        assert sorted(p.index for p in VENDOR_PROFILES) == \
            list(range(1, 66))

    def test_names_unique(self):
        names = [p.name for p in VENDOR_PROFILES]
        assert len(set(names)) == 65

    def test_sixteen_vendor_cas(self):
        assert len(VENDOR_CA_NAMES) == 16

    def test_exclusive_vendors(self):
        assert set(EXCLUSIVE_CA_VENDORS) == {"Canary", "Obihai", "Tuya"}

    def test_pool_references_valid(self):
        for profile in VENDOR_PROFILES:
            for pool in profile.pools:
                assert pool in SHARED_POOLS

    def test_rates_in_unit_interval(self):
        for profile in VENDOR_PROFILES:
            for rate in (profile.hygiene, profile.device_stack_rate,
                         profile.grease_rate, profile.ocsp_rate,
                         profile.fallback_rate):
                assert 0.0 <= rate <= 1.0
            assert profile.stacks_per_device >= 1.0
            assert profile.devices > 0
            assert profile.types

    def test_severe_vendor_hygiene_band(self):
        # The paper's 14 severe vendors must sit below the promotion
        # threshold; the 7 clean vendors above the stripping threshold.
        low = [p.name for p in VENDOR_PROFILES if p.hygiene < 0.2]
        high = [p.name for p in VENDOR_PROFILES if p.hygiene > 0.85]
        assert "Synology" in low and "Belkin" in low
        assert "Sonos" in high
        assert 10 <= len(low) <= 16
        assert 5 <= len(high) <= 10


class TestCatalogIntegrity:
    def test_slds_unique(self):
        slds = [d.sld for d in catalog.EXPLICIT_DOMAINS]
        assert len(slds) == len(set(slds))

    def test_table15_fqdn_counts(self):
        by_sld = {d.sld: d.fqdn_count for d in catalog.EXPLICIT_DOMAINS}
        assert by_sld["amazon.com"] == 57
        assert by_sld["google.com"] == 24
        assert by_sld["googleapis.com"] == 35
        assert by_sld["netflix.com"] == 30
        assert by_sld["amazonaws.com"] == 33
        assert by_sld["roku.com"] == 42
        assert by_sld["cloudfront.net"] == 21

    def test_issuer_weights_positive(self):
        for name, weight in catalog.FILLER_ISSUER_WEIGHTS:
            assert weight > 0
            assert name

    def test_filler_names_unique_and_sized(self):
        names = catalog.filler_domain_names(250)
        assert len(names) == 250
        assert len(set(names)) == 250
        assert all("." in name for name in names)

    def test_filler_org_cycles(self):
        assert catalog.filler_org(0) == catalog.filler_org(
            len(catalog._FILLER_ORGS))

    def test_expired_groups_have_dates(self):
        for domain in catalog.EXPLICIT_DOMAINS:
            for group in domain.groups:
                if group.expired_not_after:
                    parse_date(group.expired_not_after)  # must parse


class TestCaptureStats:
    def test_describe_mini(self):
        records = [
            make_record(device="d1", user="u1", timestamp=CAPTURE_START),
            make_record(device="d1", user="u1",
                        timestamp=CAPTURE_START + days(10)),
            make_record(device="d2", vendor="Other", user="u2",
                        timestamp=CAPTURE_END),
        ]
        description = stats.describe(InspectorDataset(records))
        assert description.device_count == 2
        assert description.vendor_count == 2
        assert description.record_count == 3
        assert description.capture_days == pytest.approx(
            (CAPTURE_END - CAPTURE_START) / 86_400)
        assert description.records_per_device_mean == pytest.approx(1.5)

    def test_describe_full(self, dataset):
        description = stats.describe(dataset)
        assert description.device_count == 2014
        assert description.model_count >= 100
        assert description.devices_per_user_mean == pytest.approx(
            2014 / 721, rel=0.01)

    def test_devices_per_product(self, dataset):
        wyze = stats.devices_per_product(dataset, vendor="Wyze")
        assert sum(wyze.values()) == 75

    def test_coverage_histogram(self, dataset):
        histogram = stats.capture_window_coverage(dataset, buckets=15)
        assert len(histogram) == 15
        assert sum(histogram) == len(dataset)
        assert all(count > 0 for count in histogram)
