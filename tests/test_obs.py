"""Tests for the ``repro.obs`` observability subsystem.

Covers span nesting and thread-safety, metric snapshot determinism
across probe worker counts, run-manifest round-trips, the ProbeStats
registry view, and the CLI ``--trace``/``--metrics``/``trace-summary``
surface.
"""

import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.config import StudyConfig
from repro.obs.manifest import RunManifest, manifest_path_for
from repro.obs.metrics import MetricsRegistry, flatten_snapshot
from repro.obs.sink import JsonlSink, NullSink, read_events
from repro.obs.summary import render_summary, span_rows
from repro.obs.tracer import NULL_SPAN, Stopwatch, Tracer
from repro.probing.engine import ProbeEngine, ProbeStats, RetryPolicy
from repro.probing.vantage import VANTAGE_POINTS


class FakeClock:
    """A deterministic clock for exact span durations."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTracer:
    def test_nesting_and_deterministic_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        assert outer.duration == 3.5
        assert inner.duration == 2.0
        assert inner.parent is outer
        assert inner.depth == 1
        assert outer.self_seconds == 1.5
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert tracer.stage_timings() == {"inner": 2.0, "outer": 3.5}

    def test_siblings_and_find(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent"):
            with tracer.span("step"):
                pass
            with tracer.span("step"):
                pass
        assert len(tracer.find("step")) == 2
        assert all(s.parent.name == "parent" for s in tracer.find("step"))

    def test_live_duration_while_open(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("open")
        clock.advance(4.0)
        assert span.duration == 4.0  # still open: live reading
        assert span.ended is None

    def test_span_counters(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s") as span:
            span.incr("items", 3).incr("items", 2).incr("errors")
        assert span.counters == {"items": 5, "errors": 1}
        assert span.to_event()["counters"] == {"errors": 1, "items": 5}

    def test_sink_receives_events_and_error_flag(self):
        sink_events = []

        class ListSink:
            def emit(self, event):
                sink_events.append(event)

        tracer = Tracer(clock=FakeClock(), sink=ListSink())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        assert sink_events[0]["name"] == "boom"
        assert sink_events[0]["error"] == "RuntimeError"
        with tracer.span("fine"):
            pass
        assert "error" not in sink_events[1]

    def test_worker_spans_nest_under_home_thread_span(self):
        tracer = Tracer()
        seen = []

        def worker(i):
            with tracer.span(f"worker.{i}") as span:
                seen.append(span)

        with tracer.span("batch") as batch:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(seen) == 8
        assert all(span.parent is batch for span in seen)
        assert batch.ended is not None

    def test_explicit_parent_across_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            results = []

            def worker():
                with tracer.span("child", parent=root) as span:
                    with tracer.span("grandchild") as inner:
                        results.append((span, inner))

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        child, grandchild = results[0]
        assert child.parent is root
        assert grandchild.parent is child
        assert grandchild.depth == 2

    def test_concurrent_span_counter_is_exact(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            threads = [threading.Thread(
                target=lambda: [span.incr("n") for _ in range(500)])
                for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert span.counters["n"] == 4000

    def test_stopwatch_live_then_frozen(self):
        clock = FakeClock()
        watch = Stopwatch(clock=clock)
        clock.advance(5.0)
        assert watch.duration == 5.0
        watch.stop()
        clock.advance(3.0)
        assert watch.duration == 5.0


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.family("f") is registry.family("f")
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_histogram_buckets_strict_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h", ((1.0, "<1"), (2.0, "<2"), (float("inf"), ">=2")))
        for value in (0.0, 0.999, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        assert hist.snapshot() == {"<1": 2, "<2": 2, ">=2": 2}
        assert hist.total == 6

    def test_histogram_boundary_value_lands_in_next_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h", ((1.0, "<1"), (2.0, "<2"), (float("inf"), ">=2")))
        hist.observe(1.0)  # exactly on a bound: strictly-below rule
        assert hist.snapshot() == {"<2": 1}
        hist.observe(0.9999999999)
        assert hist.snapshot() == {"<1": 1, "<2": 1}

    def test_histogram_overflow_without_inf_catchall(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", ((1.0, "<1"), (2.0, "<2")))
        hist.observe(99.0)  # beyond every bound: last label absorbs it
        hist.observe(-5.0)  # below every bound: first bucket
        assert hist.snapshot() == {"<1": 1, "<2": 1}

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("h", ())

    def test_snapshot_sorted_and_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.gauge("g").set(1.5)
        registry.family("fam").inc("beta")
        registry.family("fam").inc("alpha", 3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["families"]["fam"] == {"alpha": 3, "beta": 1}
        assert json.loads(json.dumps(snap)) == snap

    def test_flatten_snapshot_rows(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.family("f").inc("k", 2)
        rows = flatten_snapshot(registry.snapshot())
        assert ("c", 7) in rows
        assert ("f{k}", 2) in rows

    def test_flatten_snapshot_nested_families_sorted(self):
        registry = MetricsRegistry()
        registry.family("z.family").inc("beta", 2)
        registry.family("z.family").inc("alpha")
        registry.family("a.family").inc("k", 5)
        registry.histogram(
            "m.hist", ((1.0, "<1"), (float("inf"), ">=1"))).observe(3.0)
        registry.counter("b.counter").inc(9)
        registry.gauge("g.gauge").set(4)
        rows = flatten_snapshot(registry.snapshot())
        assert rows == [
            ("a.family{k}", 5),
            ("b.counter", 9),
            ("g.gauge", 4),
            ("m.hist{>=1}", 1),
            ("z.family{alpha}", 1),
            ("z.family{beta}", 2),
        ]

    def test_concurrent_updates_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        family = registry.family("f")

        def work():
            for _ in range(300):
                counter.inc()
                family.inc("k")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 2400
        assert family.get("k") == 2400


class TestObsContext:
    def test_disabled_by_default_and_noop(self):
        assert obs.current().enabled is False
        assert obs.active_registry() is None
        assert obs.span("anything") is NULL_SPAN
        obs.incr("anything")  # must not raise
        obs.gauge("anything", 1.0)
        with obs.span("x") as span:
            assert span.incr("k") is span

    def test_enabled_scopes_and_restores(self):
        with obs.enabled() as ctx:
            assert obs.current() is ctx
            assert obs.active_registry() is ctx.metrics
            obs.incr("hits")
            obs.incr("taxonomy", key="a")
            obs.gauge("level", 3)
        assert obs.current().enabled is False
        snap = ctx.metrics.snapshot()
        assert snap["counters"]["hits"] == 1
        assert snap["families"]["taxonomy"] == {"a": 1}
        assert snap["gauges"]["level"] == 3

    def test_close_flushes_metrics_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.enabled(sink=JsonlSink(path)) as ctx:
            with obs.span("stage"):
                obs.incr("n")
        ctx.close()
        events = read_events(path)
        assert events[0]["type"] == "span"
        assert events[-1] == {"type": "metrics",
                              "snapshot": ctx.metrics.snapshot()}


class TestProbeStatsView:
    def test_view_is_backed_by_registry(self):
        registry = MetricsRegistry()
        stats = ProbeStats(registry=registry)
        stats.record_attempt(0.005)
        stats.record_attempt(0.2, fault=type(
            "F", (), {"category": "transient"})())
        assert stats.attempts == 2
        assert stats.retries == 1
        assert stats.faults == {"transient": 1}
        assert stats.latency_buckets == {"<10ms": 1, "<250ms": 1}
        snap = registry.snapshot()
        assert snap["counters"]["probe.attempts"] == 2
        assert snap["families"]["probe.faults"] == {"transient": 1}

    def test_wall_seconds_derives_from_attached_clock(self):
        clock = FakeClock()
        stats = ProbeStats()
        assert stats.wall_seconds == 0.0
        watch = Stopwatch(clock=clock)
        stats.attach_clock(watch)
        clock.advance(7.0)
        # A run that died halfway still reports elapsed time.
        assert stats.wall_seconds == 7.0
        watch.stop()
        clock.advance(2.0)
        assert stats.wall_seconds == 7.0
        stats.wall_seconds = 1.25  # explicit override wins
        assert stats.wall_seconds == 1.25
        assert stats.to_json()["wall_seconds"] == 1.25

    def test_engine_reports_elapsed_on_failed_run(self, network, study):
        class Exploding:
            """Network wrapper that dies after a few probes."""

            def __init__(self, inner):
                self.inner = inner
                self.seed = inner.seed
                self.calls = 0

            @property
            def endpoints(self):
                return self.inner.endpoints

            def connect(self, *args, **kwargs):
                self.calls += 1
                if self.calls > 5:
                    raise RuntimeError("mid-run crash")
                return self.inner.connect(*args, **kwargs)

        snis = [s.fqdn for s in study.world.servers][:10]
        stats = ProbeStats()
        engine = ProbeEngine(Exploding(network))
        with pytest.raises(RuntimeError):
            for fqdn in snis:
                engine.probe_one(fqdn, VANTAGE_POINTS[0], stats=stats)
        assert stats.probes > 0  # partial progress was recorded

    def test_engine_joins_active_registry(self, network, study):
        snis = [s.fqdn for s in study.world.servers][:20]
        with obs.enabled() as ctx:
            dataset = ProbeEngine(network, jobs=2).probe_all(snis)
        assert dataset.stats.registry is ctx.metrics
        snap = ctx.metrics.snapshot()
        assert snap["counters"]["probe.probes"] == len(snis) * 3
        probe_span = ctx.tracer.find("probe.all")[0]
        assert probe_span.counters["probes"] == len(snis) * 3
        assert dataset.stats.wall_seconds > 0


class TestSnapshotDeterminism:
    def test_jobs_do_not_change_metric_snapshot(self, network, study):
        snis = [s.fqdn for s in study.world.servers][:120]
        snapshots = [
            ProbeEngine(network, jobs=jobs).probe_all(snis)
            .stats.registry.snapshot()
            for jobs in (1, 4)]
        assert snapshots[0] == snapshots[1]
        assert json.dumps(snapshots[0], sort_keys=True) == \
            json.dumps(snapshots[1], sort_keys=True)
        assert snapshots[0]["counters"]["probe.probes"] == len(snis) * 3


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest(
            command="report", seed=7, config_digest="abc123",
            version="1.0.0", started_at=10.0, finished_at=12.5,
            stage_timings={"probe.all": 2.0}, metrics={"counters": {}},
            outputs=("study_report.md",))
        assert RunManifest.from_json(manifest.to_json()) == manifest
        path = tmp_path / "m.json"
        manifest.write(path)
        assert RunManifest.load(path) == manifest
        assert manifest.elapsed_seconds == 2.5

    def test_from_run_uses_config_digest_and_obs(self):
        config = StudyConfig(seed=5)
        with obs.enabled(clock=FakeClock()) as ctx:
            with obs.span("stage"):
                obs.incr("n")
            manifest = RunManifest.from_run("report", config, ctx)
        assert manifest.seed == 5
        assert manifest.config_digest == config.digest()
        assert "stage" in manifest.stage_timings
        assert manifest.metrics["counters"]["n"] == 1

    def test_config_digest_stable_and_sensitive(self):
        base = StudyConfig()
        assert base.digest() == StudyConfig(seed=2023).digest()
        assert base.digest() != base.with_seed(7).digest()
        assert base.digest() != StudyConfig(probe_jobs=4).digest()
        assert base.digest() != StudyConfig(
            retry=RetryPolicy(max_attempts=5)).digest()
        assert base.digest() != StudyConfig(
            trust_stores=("mozilla",)).digest()


class TestCLI:
    def test_report_trace_metrics_and_manifest(self, tmp_path, study,
                                               capsys):
        out = tmp_path / "report.md"
        trace = tmp_path / "trace.jsonl"
        assert main(["report", "-o", str(out), "--trace", str(trace),
                     "--metrics"]) == 0
        text = capsys.readouterr().out
        assert "metrics:" in text and "validate.status" in text

        events = read_events(trace)
        span_names = {e["name"] for e in events
                      if e.get("type") == "span"}
        # >= 1 span per pipeline analysis stage.
        for name in ("analysis.client.matching",
                     "analysis.client.semantics",
                     "analysis.server.issuers",
                     "analysis.server.geo",
                     "validate.chain",
                     "cli.report"):
            assert name in span_names
        assert sum(1 for n in span_names
                   if n.startswith("analysis.")) >= 20

        manifest = RunManifest.load(manifest_path_for(str(out)))
        assert manifest.command == "report"
        assert manifest.config_digest == \
            StudyConfig(seed=2023).digest()
        assert manifest.outputs == (str(out),)
        assert "validate.status" in manifest.metrics["families"]
        # The trace carries the same manifest as its final record.
        manifest_events = [e for e in events
                           if e.get("type") == "manifest"]
        assert manifest_events[-1]["manifest"]["config_digest"] == \
            manifest.config_digest

    def test_probe_manifest_matches_probe_config(self, tmp_path, study):
        out = tmp_path / "certs.jsonl"
        assert main(["probe", "-o", str(out), "--jobs", "2"]) == 0
        manifest = RunManifest.load(manifest_path_for(str(out)))
        expected = StudyConfig(seed=2023, probe_jobs=2,
                               retry=RetryPolicy(max_attempts=3))
        assert manifest.config_digest == expected.digest()

    def test_trace_summary_renders(self, tmp_path, study, capsys):
        out = tmp_path / "report.md"
        trace = tmp_path / "trace.jsonl"
        assert main(["report", "-o", str(out),
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace-summary", str(trace), "--top", "5"]) == 0
        text = capsys.readouterr().out
        assert "trace summary" in text
        assert "self-time" in text
        assert "manifest: command=report seed=2023" in text

    def test_trace_summary_missing_file(self, capsys):
        assert main(["trace-summary", "/nonexistent/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("trace-summary: ")
        assert len(err.strip().splitlines()) == 1

    def test_trace_summary_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace-summary", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty trace file" in err
        assert len(err.strip().splitlines()) == 1

    def test_trace_summary_corrupt_file(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"type": "span"}\nnot json at all\n',
                           encoding="utf-8")
        assert main(["trace-summary", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert "corrupt JSONL" in err
        assert f"{corrupt}:2" in err  # names the file and line

    def test_trace_summary_non_object_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('[1, 2, 3]\n', encoding="utf-8")
        assert main(["trace-summary", str(bad)]) == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_obs_deactivated_after_command(self, tmp_path, study):
        out = tmp_path / "capture.jsonl"
        assert main(["generate", "-o", str(out)]) == 0
        assert obs.current().enabled is False


class TestSummaryRendering:
    def test_span_rows_self_time(self):
        events = [
            {"type": "span", "id": 0, "parent": None, "name": "outer",
             "depth": 0, "duration": 5.0},
            {"type": "span", "id": 1, "parent": 0, "name": "inner",
             "depth": 1, "duration": 3.0},
        ]
        rows = span_rows(events)
        by_name = {row["name"]: row for row in rows}
        assert by_name["outer"]["self"] == 2.0
        assert by_name["inner"]["self"] == 3.0
        assert rows[0]["name"] == "inner"  # sorted by self-time

    def test_render_summary_empty_and_error_spans(self):
        assert "spans: 0" in render_summary([])
        text = render_summary([
            {"type": "span", "id": 0, "parent": None, "name": "bad",
             "depth": 0, "duration": 1.0, "error": "RuntimeError"}])
        assert "bad (RuntimeError)" in text

    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit({"type": "span"})
        sink.close()
