"""Tests for the Section 5 analyses (issuers, chains, CT, SLDs, geo, lab)."""

import pytest

from repro.core import chains, ct_validity, geo, labcompare, slds
from repro.core.issuers import issuer_report, leaf_issuer_org
from repro.inspector.timeline import CAPTURE_END, PROBE_TIME
from repro.x509.validation import ChainStatus


@pytest.fixture(scope="module")
def issuers_rep(study, dataset, certificates):
    return issuer_report(dataset, certificates, study.ecosystem)


@pytest.fixture(scope="module")
def ct_rep(study, dataset, certificates, survey):
    return ct_validity.ct_report(dataset, certificates, survey,
                                 study.ecosystem, study.network.ct_logs)


class TestIssuerAnalysis:
    def test_matrix_columns_normalized(self, issuers_rep):
        for vendor in ("Amazon", "Roku", "Tuya"):
            ratios = issuers_rep.vendor_issuer_ratios(vendor)
            assert sum(ratios.values()) == pytest.approx(1.0)

    def test_public_only_vendor_block(self, issuers_rep):
        public_only = issuers_rep.vendors_public_only()
        assert len(public_only) >= 20   # paper: 31 vendors
        assert "Wyze" in public_only

    def test_tuya_column_pure_private(self, issuers_rep):
        ratios = issuers_rep.vendor_issuer_ratios("Tuya")
        assert set(ratios) == {"Tuya"}

    def test_roku_mixed_column(self, issuers_rep):
        ratios = issuers_rep.vendor_issuer_ratios("Roku")
        assert "Roku" in ratios
        assert any(org != "Roku" for org in ratios)  # third-party visits


class TestChainValidation:
    def test_status_population(self, survey):
        counts = survey.status_counts()
        assert counts[ChainStatus.OK] > 900
        assert counts[ChainStatus.INCOMPLETE_CHAIN] >= 30
        assert counts[ChainStatus.UNTRUSTED_ROOT] >= 30
        assert counts.get(ChainStatus.SELF_SIGNED, 0) >= 3

    def test_table7_contains_paper_domains(self, study, dataset, survey):
        rows = chains.validation_failure_rows(survey, dataset,
                                              study.ecosystem)
        domains = {row.domain for row in rows}
        for expected in ("netflix.com", "roku.com",
                         "samsungcloudsolution.net", "nest.com",
                         "meethue.com", "obitalk.com", "tesla.services"):
            assert expected in domains

    def test_table7_roku_row_shape(self, study, dataset, survey):
        rows = chains.validation_failure_rows(survey, dataset,
                                              study.ecosystem)
        roku = next(row for row in rows if row.domain == "roku.com")
        assert roku.leaf_issuer == "Roku"
        assert not roku.issuer_is_public
        assert roku.fqdn_count == 14
        assert set(roku.vendors) <= {"Brother", "Cisco", "Insignia",
                                     "Roku", "Sharp", "TCL"}
        assert len(roku.vendors) >= 2

    def test_table7_includes_public_issuer_failure(self, study, dataset,
                                                   survey):
        rows = chains.validation_failure_rows(survey, dataset,
                                              study.ecosystem)
        # The amazonaws.com host with a broken DigiCert chain (Table 7's
        # one public-issuer row).
        assert any(row.issuer_is_public for row in rows)

    def test_table14_domains_and_statuses(self, study, dataset, survey):
        rows = chains.private_issuer_rows(survey, dataset, study.ecosystem)
        by_domain = {row.domain: row for row in rows}
        assert by_domain["canaryis.com"].status is ChainStatus.UNTRUSTED_ROOT
        assert by_domain["dishaccess.tv"].status is ChainStatus.SELF_SIGNED
        assert by_domain["ueiwsp.com"].status is ChainStatus.SELF_SIGNED
        # Canary presents the full 4-certificate chain.
        assert 4 in by_domain["canaryis.com"].chain_lengths

    def test_table8_expired(self, dataset, certificates):
        rows = chains.expired_rows(certificates, dataset,
                                   reference_time=CAPTURE_END)
        by_domain = {row.domain: row for row in rows}
        assert by_domain["skyegloup.com"].issuer == "Gandi"
        assert by_domain["skyegloup.com"].not_after_text() == "07/31/2018"
        assert by_domain["wink.com"].issuer == "COMODO"
        assert "wink" in by_domain["wink.com"].vendors

    def test_cn_mismatch_is_tuya(self, survey):
        assert survey.cn_mismatches() == ["a2.tuyaus.com"]

    def test_private_incomplete_share(self, study, survey):
        share = chains.private_leaf_incomplete_share(survey,
                                                     study.ecosystem)
        assert 0.2 <= share <= 0.8     # paper: 45.78%


class TestCTAndValidity:
    def test_tuple_count_scale(self, ct_rep):
        # Paper: 4,949 {server, leaf, vendor} tuples.
        assert 2500 <= ct_rep.tuple_count() <= 9000

    def test_private_cas_never_logged(self, ct_rep):
        for point in ct_rep.points:
            if point.category == ct_validity.CATEGORY_PRIVATE:
                assert not point.in_ct

    def test_chained_private_not_logged(self, ct_rep):
        assert ct_rep.private_chained_certs_in_ct() == 0
        chained = [p for p in ct_rep.points if p.category ==
                   ct_validity.CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT]
        assert chained, "expected Netflix-style chained certificates"

    def test_eight_public_certs_missing(self, ct_rep):
        missing = ct_rep.public_ca_certs_missing_from_ct()
        # Paper: Microsoft 4, Apple 2, Sectigo 1, DigiCert 1.
        assert missing.get("Microsoft Corporation") == 4
        assert missing.get("Apple") == 2
        assert missing.get("Sectigo") == 1
        assert 6 <= sum(missing.values()) <= 10

    def test_validity_periods_split(self, ct_rep):
        summary = ct_rep.validity_summary()
        public = summary[ct_validity.CATEGORY_PUBLIC]
        private = summary[ct_validity.CATEGORY_PRIVATE]
        assert public[2] <= 1000        # public max below ~1000 days
        assert private[2] >= 20000      # Tuya's 36,500-day certificate

    def test_netflix_table9(self, certificates, study):
        rows = ct_validity.netflix_rows(certificates,
                                        study.network.ct_logs)
        assert len(rows) == 2
        long_lived = rows[0]
        assert max(long_lived.validity_days) == 8150
        assert not long_lived.in_ct
        chained = rows[1]
        assert chained.leaf_issuer_cn == "Netflix Public SHA2 RSA CA 3"
        assert max(chained.validity_days) < 400
        assert not chained.in_ct
        assert "VeriSign" in chained.topmost_issuer_cn

    def test_figure13_private_dominates(self, study, survey):
        figure = ct_validity.private_chain_ct_figure(
            survey, study.ecosystem, study.network.ct_logs)
        assert figure.get(("private", "not in CT"), 0) > \
            figure.get(("private", "in CT"), 0)


class TestSLDs:
    def test_row_count(self, dataset, certificates):
        rows = slds.sld_rows(dataset, certificates)
        stats = slds.sld_statistics(rows)
        assert stats["sld_count"] == 357
        assert stats["max_devices"] <= 2014

    def test_top_slds_are_the_big_platforms(self, dataset, certificates):
        rows = slds.sld_rows(dataset, certificates)
        top10 = {row.sld for row in rows[:10]}
        assert {"amazon.com", "google.com"} & top10

    def test_empty_rows(self):
        assert slds.sld_statistics([])["sld_count"] == 0


class TestGeoAndLab:
    def test_table16_shape(self, certificates):
        comparison = geo.geo_comparison(certificates)
        assert comparison.extracted["new-york"] == 1151
        # The bulk of SNIs serve one certificate everywhere.
        assert comparison.shared_across_all >= 950
        for vantage, count in comparison.exclusive.items():
            assert count <= 200

    def test_lab_comparison(self, study, dataset, certificates):
        comparison = labcompare.lab_comparison(dataset, certificates,
                                               study.network)
        assert len(comparison.common_snis) == 362
        assert comparison.same_issuer == 356   # paper: 356 of 362
        assert len(comparison.different_issuer) == 6
        assert comparison.consistency > 0.97
