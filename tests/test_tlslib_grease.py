"""Unit tests for GREASE handling."""

from repro.tlslib.grease import (
    GREASE_VALUES,
    contains_grease,
    is_grease,
    strip_grease,
)


class TestGreaseValues:
    def test_sixteen_values(self):
        assert len(GREASE_VALUES) == 16

    def test_rfc_pattern(self):
        # Every GREASE value has the 0xRaRa pattern with equal bytes.
        for value in GREASE_VALUES:
            high, low = value >> 8, value & 0xFF
            assert high == low
            assert high & 0x0F == 0x0A

    def test_known_members(self):
        assert 0x0A0A in GREASE_VALUES
        assert 0xFAFA in GREASE_VALUES
        assert 0x5A5A in GREASE_VALUES

    def test_is_grease(self):
        assert is_grease(0x2A2A)
        assert not is_grease(0xC02F)
        assert not is_grease(0x0A0B)


class TestHelpers:
    def test_strip_preserves_order(self):
        codes = [0x0A0A, 0xC02F, 0x1A1A, 0x009C]
        assert strip_grease(codes) == [0xC02F, 0x009C]

    def test_strip_on_clean_list(self):
        codes = [0xC02F, 0x009C]
        assert strip_grease(codes) == codes

    def test_contains(self):
        assert contains_grease([0xC02F, 0xBABA])
        assert not contains_grease([0xC02F, 0x009C])
        assert not contains_grease([])
