"""Tests for the service telemetry plane (:mod:`repro.obs.telemetry`).

Covers the Prometheus renderer against a golden exposition-text fixture
(escaping, label ordering, canonical cumulative histograms), the strict
exposition parser, SLO objectives and sliding windows under a fake
clock, the flight recorder ring buffer, :class:`ServiceTelemetry`
middleware semantics, and the ``repro obs`` scrape/diff helpers.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, TeeSink
from repro.obs.scrape import (ScrapeError, diff_snapshots, load_export,
                              render_diff, render_top)
from repro.obs.sink import read_events
from repro.obs.slo import SloObjective, SloTracker, worst_state
from repro.obs.telemetry import (DEFAULT_OBJECTIVES, LATENCY_BUCKETS_MS,
                                 ServiceTelemetry, escape_label,
                                 format_value, metric_name,
                                 parse_prometheus, render_prometheus,
                                 route_key, status_class)

GOLDEN = Path(__file__).parent / "data" / "golden_exposition.prom"


class FakeClock:
    """A deterministic clock (same shape as the tracer tests use)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def golden_registry():
    """The registry whose rendering the golden fixture freezes."""
    registry = MetricsRegistry()
    registry.counter("probe.attempts").inc(42)
    registry.gauge("ingest.lag_windows").set(3)
    registry.gauge("serve.ratio").set(0.25)
    requests = registry.family("http.requests")
    requests.inc("4xx")  # inserted out of order: rendering must sort
    requests.inc("2xx", 5)
    registry.family("serve.errors").inc('quote"back\\slash\nline', 2)
    latency = registry.histogram("http.latency_ms.v1_doc",
                                 LATENCY_BUCKETS_MS)
    for ms in (0.5, 3.0, 3.5, 40.0, 2000.0):
        latency.observe(ms)
    registry.histogram(
        "probe.latency",
        ((0.01, "<10ms"), (float("inf"), ">=10ms"))).observe(0.002)
    return registry


class TestRenderPrometheus:
    def test_matches_golden_fixture(self):
        rendered = render_prometheus(golden_registry().snapshot())
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_renders_byte_identical_across_calls(self):
        snapshot = golden_registry().snapshot()
        assert render_prometheus(snapshot) == \
            render_prometheus(json.loads(json.dumps(snapshot)))

    def test_round_trips_through_parser(self):
        parsed = parse_prometheus(GOLDEN.read_text(encoding="utf-8"))
        assert parsed["types"]["repro_probe_attempts_total"] == "counter"
        assert parsed["types"]["repro_ingest_lag_windows"] == "gauge"
        assert parsed["types"]["repro_http_latency_ms_v1_doc"] == \
            "histogram"
        assert parsed["metrics"]["repro_probe_attempts_total"][()] == 42
        requests = parsed["metrics"]["repro_http_requests_total"]
        assert requests[(("key", "2xx"),)] == 5
        # The escaped label value decodes back to the original.
        errors = parsed["metrics"]["repro_serve_errors_total"]
        assert errors[(("key", 'quote"back\\slash\nline'),)] == 2

    def test_histogram_buckets_cumulative_with_count(self):
        parsed = parse_prometheus(GOLDEN.read_text(encoding="utf-8"))
        buckets = parsed["metrics"]["repro_http_latency_ms_v1_doc_bucket"]
        assert buckets[(("le", "1"),)] == 1
        assert buckets[(("le", "5"),)] == 3
        assert buckets[(("le", "+Inf"),)] == 5
        count = parsed["metrics"]["repro_http_latency_ms_v1_doc_count"]
        assert count[()] == 5
        # No _sum series: observation sums are not deterministic.
        assert "repro_http_latency_ms_v1_doc_sum" not in parsed["metrics"]

    def test_inf_bucket_added_when_snapshot_lacks_it(self):
        text = render_prometheus({"histograms": {"h": {"1": 2, "5": 1}}})
        parsed = parse_prometheus(text)
        assert parsed["metrics"]["repro_h_bucket"][(("le", "+Inf"),)] == 3
        assert parsed["metrics"]["repro_h_count"][()] == 3

    def test_non_le_histogram_falls_back_to_labeled_counter(self):
        text = render_prometheus(
            {"histograms": {"probe.latency": {"<10ms": 4, ">=10ms": 1}}})
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_probe_latency_total"] == "counter"
        members = parsed["metrics"]["repro_probe_latency_total"]
        assert members[(("bucket", "<10ms"),)] == 4

    def test_empty_snapshot_is_valid_exposition(self):
        text = render_prometheus({})
        assert text == "\n"
        assert parse_prometheus(text) == {"metrics": {}, "types": {}}

    def test_family_keys_render_sorted(self):
        text = render_prometheus(
            {"families": {"f": {"zeta": 1, "alpha": 2}}})
        lines = [line for line in text.splitlines()
                 if not line.startswith("#")]
        assert lines == ['repro_f_total{key="alpha"} 2',
                         'repro_f_total{key="zeta"} 1']

    def test_metric_name_sanitizes(self):
        assert metric_name("http.latency_ms.v1_doc") == \
            "repro_http_latency_ms_v1_doc"
        assert metric_name("probe.attempts", "_total") == \
            "repro_probe_attempts_total"
        assert metric_name("weird-name!") == "repro_weird_name_"

    def test_escape_label(self):
        assert escape_label('a"b') == 'a\\"b'
        assert escape_label("a\\b") == "a\\\\b"
        assert escape_label("a\nb") == "a\\nb"

    def test_format_value(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(7) == "7"


class TestParsePrometheus:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("not a sample at all !!\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus("repro_x abc\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_prometheus("# TYPE repro_x sparkline\n")

    def test_rejects_malformed_type_comment(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE repro_x\n")

    def test_rejects_retyping(self):
        with pytest.raises(ValueError, match="re-typed"):
            parse_prometheus("# TYPE repro_x counter\n"
                             "# TYPE repro_x gauge\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus('repro_x{key=unquoted} 1\n')

    def test_parses_inf_values(self):
        parsed = parse_prometheus("repro_x +Inf\nrepro_y -Inf\n")
        assert parsed["metrics"]["repro_x"][()] == float("inf")
        assert parsed["metrics"]["repro_y"][()] == float("-inf")

    def test_ignores_non_type_comments_and_blank_lines(self):
        parsed = parse_prometheus("# HELP repro_x whatever\n"
                                  "\nrepro_x 1\n")
        assert parsed["metrics"]["repro_x"][()] == 1.0

    def test_label_order_is_canonicalized(self):
        parsed = parse_prometheus('repro_x{b="2",a="1"} 5\n')
        assert parsed["metrics"]["repro_x"][
            (("a", "1"), ("b", "2"))] == 5.0


class TestSloObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloObjective(name="x", metric="m", kind="p42", target=1.0)
        with pytest.raises(ValueError, match="comparison"):
            SloObjective(name="x", metric="m", kind="p50", target=1.0,
                         comparison="<")
        with pytest.raises(ValueError, match="window_seconds"):
            SloObjective(name="x", metric="m", kind="p50", target=1.0,
                         window_seconds=0)

    def test_judge_three_states(self):
        objective = SloObjective(name="lat", metric="m", kind="max",
                                 target=10.0, degraded=100.0)
        assert objective.judge([5.0]) == ("ok", 5.0)
        assert objective.judge([50.0]) == ("degraded", 50.0)
        assert objective.judge([500.0]) == ("failing", 500.0)

    def test_no_degraded_band_fails_directly(self):
        objective = SloObjective(name="lat", metric="m", kind="max",
                                 target=10.0)
        assert objective.judge([11.0]) == ("failing", 11.0)

    def test_ge_comparison(self):
        objective = SloObjective(name="up", metric="m", kind="mean",
                                 target=0.99, comparison=">=",
                                 degraded=0.9)
        assert objective.judge([1.0, 1.0]) == ("ok", 1.0)
        assert objective.judge([1.0, 0.9]) == ("degraded", 0.95)
        assert objective.judge([0.0, 0.0]) == ("failing", 0.0)

    def test_empty_window_is_ok_with_no_value(self):
        objective = SloObjective(name="lat", metric="m", kind="p99",
                                 target=10.0)
        assert objective.judge([]) == ("ok", None)

    def test_rate_is_mean_of_zero_one_samples(self):
        objective = SloObjective(name="err", metric="m", kind="rate",
                                 target=0.01)
        state, value = objective.judge([0.0, 0.0, 0.0, 1.0])
        assert state == "failing"
        assert value == 0.25

    def test_percentiles_nearest_rank(self):
        objective = SloObjective(name="lat", metric="m", kind="p50",
                                 target=100.0)
        _, median = objective.judge(list(range(1, 102)))
        assert median == 51

    def test_worst_state(self):
        assert worst_state([]) == "ok"
        assert worst_state(["ok", "ok"]) == "ok"
        assert worst_state(["ok", "degraded"]) == "degraded"
        assert worst_state(["degraded", "failing", "ok"]) == "failing"


class TestSloTracker:
    def make(self, **overrides):
        objective = SloObjective(
            name="lat_p99", metric="http.latency_ms", kind="p99",
            target=250.0, degraded=1000.0, window_seconds=60.0,
            **overrides)
        clock = FakeClock()
        return SloTracker([objective], clock=clock), clock

    def test_window_slides_under_fake_clock(self):
        tracker, clock = self.make()
        tracker.record("http.latency_ms", 5000.0)  # t=0: breach
        verdict = tracker.evaluate()
        assert verdict["status"] == "failing"
        clock.advance(61.0)  # the breach ages out of the window
        verdict = tracker.evaluate()
        assert verdict["status"] == "ok"
        assert verdict["objectives"][0]["samples"] == 0
        assert verdict["objectives"][0]["value"] is None

    def test_unwatched_metrics_are_dropped(self):
        tracker, _ = self.make()
        tracker.record("nobody.watches.this", 1.0)
        assert "nobody.watches.this" not in tracker._samples

    def test_old_samples_pruned_on_record(self):
        tracker, clock = self.make()
        tracker.record("http.latency_ms", 1.0)
        clock.advance(120.0)
        tracker.record("http.latency_ms", 2.0)
        assert len(tracker._samples["http.latency_ms"]) == 1

    def test_duplicate_objective_names_raise(self):
        objective = SloObjective(name="x", metric="m", kind="max",
                                 target=1.0)
        with pytest.raises(ValueError, match="unique"):
            SloTracker([objective, objective])

    def test_evaluate_payload_shape(self):
        tracker = SloTracker(DEFAULT_OBJECTIVES, clock=FakeClock())
        tracker.record("http.latency_ms", 12.0)
        verdict = tracker.evaluate()
        assert verdict["status"] == "ok"
        assert [o["name"] for o in verdict["objectives"]] == \
            ["query_latency_p99", "error_rate", "ingest_lag"]
        latency = verdict["objectives"][0]
        assert latency["samples"] == 1
        assert latency["value"] == 12.0
        assert latency["target"] == 250.0
        assert latency["comparison"] == "<="
        assert json.loads(json.dumps(verdict)) == verdict

    def test_summary_is_compact(self):
        tracker = SloTracker(DEFAULT_OBJECTIVES, clock=FakeClock())
        tracker.record("ingest.lag_windows", 5.0)  # beyond degraded=2
        summary = tracker.summary()
        assert summary["status"] == "failing"
        assert summary["objectives"]["ingest_lag"] == "failing"
        assert summary["objectives"]["error_rate"] == "ok"

    def test_overall_status_is_worst_objective(self):
        tracker = SloTracker(DEFAULT_OBJECTIVES, clock=FakeClock())
        tracker.record("http.latency_ms", 1.0)       # ok
        tracker.record("ingest.lag_windows", 1.0)    # degraded (0<1<=2)
        assert tracker.evaluate()["status"] == "degraded"


class TestFlightRecorder:
    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record({"i": i})
        assert len(recorder) == 3
        assert recorder.events_seen == 5
        events = recorder.snapshot()
        assert [event["i"] for event in events] == [2, 3, 4]
        assert [event["seq"] for event in events] == [2, 3, 4]

    def test_record_does_not_mutate_caller_dict(self):
        recorder = FlightRecorder()
        original = {"type": "request"}
        stamped = recorder.record(original)
        assert "seq" not in original
        assert stamped["seq"] == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_dump_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record({"type": "request", "i": i})
        path = recorder.dump_jsonl(tmp_path / "recent.jsonl")
        events = read_events(path)
        assert [event["i"] for event in events] == [2, 3, 4, 5]

    def test_sink_protocol_and_tee(self):
        recorder = FlightRecorder(capacity=2)

        class ListSink:
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

            def close(self):
                self.closed = True

        other = ListSink()
        tee = TeeSink(recorder, other)
        tee.emit({"type": "span", "name": "s"})
        tee.close()
        assert len(recorder) == 1
        assert other.events[0]["name"] == "s"
        assert other.closed is True


class TestServiceTelemetry:
    def test_observe_request_updates_every_surface(self):
        clock = FakeClock()
        with obs.enabled() as ctx:
            telemetry = ServiceTelemetry(clock=clock)
            telemetry.observe_request("/v1/doc", 200, 0.003)
            telemetry.observe_request("/v1/doc", 404, 0.030)
        snap = ctx.metrics.snapshot()
        assert snap["histograms"]["http.latency_ms.v1_doc"] == \
            {"5": 1, "50": 1}
        assert snap["families"]["http.requests"] == {"2xx": 1, "4xx": 1}
        assert snap["families"]["http.requests_by_route"] == \
            {"/v1/doc": 2}
        events = telemetry.recorder.snapshot()
        assert [e["status"] for e in events] == [200, 404]
        assert events[0]["duration_ms"] == 3.0
        verdict = telemetry.slo.evaluate()
        by_name = {o["name"]: o for o in verdict["objectives"]}
        assert by_name["query_latency_p99"]["samples"] == 2
        assert by_name["error_rate"]["value"] == 0.0  # 4xx is not 5xx

    def test_5xx_feeds_the_error_rate(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.observe_request("/v1/doc", 500, 0.001)
        by_name = {o["name"]: o
                   for o in telemetry.slo.evaluate()["objectives"]}
        assert by_name["error_rate"]["value"] == 1.0
        assert by_name["error_rate"]["status"] == "failing"

    def test_request_lifecycle_tracks_in_flight(self):
        clock = FakeClock()
        with obs.enabled() as ctx:
            telemetry = ServiceTelemetry(clock=clock)
            started = telemetry.request_started()
            assert ctx.metrics.gauge("http.in_flight").value == 1
            clock.advance(0.004)
            telemetry.request_finished("/healthz", 200, started)
            assert ctx.metrics.gauge("http.in_flight").value == 0
        assert ctx.metrics.snapshot()["histograms"][
            "http.latency_ms.healthz"] == {"5": 1}

    def test_disabled_context_still_feeds_slo_and_recorder(self):
        assert obs.active_registry() is None
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.observe_request("/v1/doc", 200, 0.001)
        assert len(telemetry.recorder) == 1
        assert telemetry.slo.evaluate()["objectives"][0]["samples"] == 1

    def test_update_ingest_records_lag(self):
        class StubIngester:
            def status(self):
                return {"windows_ingested": 7, "windows_total": 10,
                        "records_ingested": 120}

        telemetry = ServiceTelemetry(clock=FakeClock())
        assert telemetry.update_ingest(StubIngester()) == 3
        event = telemetry.recorder.snapshot()[-1]
        assert event["type"] == "ingest"
        assert event["lag_windows"] == 3
        by_name = {o["name"]: o
                   for o in telemetry.slo.evaluate()["objectives"]}
        assert by_name["ingest_lag"]["value"] == 3.0
        assert by_name["ingest_lag"]["status"] == "failing"

    def test_route_key_and_status_class(self):
        assert route_key("/v1/doc") == "v1_doc"
        assert route_key("/") == "root"
        assert route_key("/v1/debug/recent") == "v1_debug_recent"
        assert status_class(200) == "2xx"
        assert status_class(404) == "4xx"
        assert status_class(503) == "5xx"


class TestEnsureEnabled:
    def test_activates_once_and_is_idempotent(self):
        assert obs.current().enabled is False
        try:
            ctx = obs.ensure_enabled()
            assert ctx.enabled is True
            assert obs.current() is ctx
            assert obs.ensure_enabled() is ctx  # second call: no-op
        finally:
            obs.deactivate()
        assert obs.current().enabled is False

    def test_leaves_an_active_context_alone(self):
        with obs.enabled() as ctx:
            assert obs.ensure_enabled() is ctx


class TestScrapeHelpers:
    def snapshot(self, errors=0, lag=0, slow=0):
        return {
            "counters": {"probe.attempts": 10},
            "gauges": {"ingest.lag_windows": lag},
            "families": {"serve.errors": {"500": errors}},
            "histograms": {"http.latency_ms.v1_doc":
                           {"50": 10, "+Inf": slow}},
        }

    def test_diff_flags_error_counter_growth(self):
        report = diff_snapshots(self.snapshot(errors=0),
                                self.snapshot(errors=3))
        assert not report["ok"]
        assert report["regressions"][0]["reason"] == "error counter grew"

    def test_diff_flags_lag_gauge_rise(self):
        report = diff_snapshots(self.snapshot(lag=0),
                                self.snapshot(lag=4))
        reasons = {r["reason"] for r in report["regressions"]}
        assert "lag gauge rose" in reasons

    def test_diff_flags_slow_latency_shift(self):
        report = diff_snapshots(self.snapshot(slow=0),
                                self.snapshot(slow=10))
        reasons = {r["reason"] for r in report["regressions"]}
        assert any("slow share" in reason for reason in reasons)

    def test_diff_ok_on_benign_growth(self):
        before = self.snapshot()
        after = json.loads(json.dumps(before))
        after["counters"]["probe.attempts"] = 99
        report = diff_snapshots(before, after)
        assert report["ok"]
        assert report["changed"]
        assert "no regressions" in render_diff(report)

    def test_diff_tracks_added_and_removed_series(self):
        before = self.snapshot()
        after = json.loads(json.dumps(before))
        after["counters"]["new.metric"] = 1
        del after["counters"]["probe.attempts"]
        report = diff_snapshots(before, after)
        assert report["added"] == ["new.metric"]
        assert report["removed"] == ["probe.attempts"]

    def test_render_diff_marks_regressions(self):
        report = diff_snapshots(self.snapshot(errors=0),
                                self.snapshot(errors=3))
        text = render_diff(report)
        assert "REGRESSION serve.errors{500}" in text
        assert "error counter grew" in text

    def test_load_export_accepts_envelope_and_data_half(self, tmp_path):
        snapshot = self.snapshot()
        envelope = {"data": {"enabled": True, "metrics": snapshot}}
        for payload in (envelope, envelope["data"]):
            path = tmp_path / "export.json"
            path.write_text(json.dumps(payload), encoding="utf-8")
            assert load_export(path) == snapshot

    def test_load_export_error_cases(self, tmp_path):
        with pytest.raises(ScrapeError):
            load_export(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScrapeError, match="not valid JSON"):
            load_export(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"something": "else"}),
                         encoding="utf-8")
        with pytest.raises(ScrapeError, match="not an obs export"):
            load_export(wrong)

    def test_render_top_frame(self):
        healthz = {"status": "ok", "seed": 2023, "windows_ingested": 8,
                   "windows_total": 8, "records_ingested": 1200}
        slo = {"status": "ok", "objectives": [
            {"name": "query_latency_p99", "kind": "p99", "value": 4.2,
             "status": "ok", "comparison": "<=", "target": 250.0,
             "samples": 17}]}
        metrics = {"metrics": {
            "gauges": {"http.in_flight": 1, "ingest.lag_windows": 0,
                       "ingest.records_behind": 0},
            "families": {"http.requests": {"2xx": 15, "4xx": 2},
                         "http.requests_by_route": {"/healthz": 9,
                                                    "/v1/doc": 8}}}}
        text = render_top(healthz, slo, metrics)
        assert "serve: ok" in text
        assert "requests: 17 total" in text
        assert "slo ok" in text and "query_latency_p99" in text
        assert "2xx=15" in text
        assert "/healthz" in text
        # A previous poll enables the req/s delta.
        previous = {"families": {"http.requests": {"2xx": 5}}}
        text = render_top(healthz, slo, metrics, previous=previous,
                          interval=2.0)
        assert "(6.0 req/s)" in text
