"""Tests for AIA chasing in path building and validation."""

import random

import pytest

from repro.x509.ca import CertificateAuthority
from repro.x509.chain import build_path
from repro.x509.truststore import TrustStore
from repro.x509.validation import ChainStatus, ChainValidator

NOW = 1_650_000_000
DAY = 86_400


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(
        "AiaCA", is_public_trust=True, rng=random.Random(81),
        now=NOW - 40 * DAY, intermediate_names=("AiaCA Issuing 1",))


@pytest.fixture(scope="module")
def store(ca):
    return TrustStore("aia-store", [ca.root])


@pytest.fixture(scope="module")
def resolver(ca):
    intermediate = ca.intermediates[0]

    def resolve(certificate):
        if str(certificate.issuer) == str(intermediate.subject):
            return intermediate
        return None

    return resolve


class TestAIAChasing:
    def test_bare_leaf_completes_with_resolver(self, ca, store, resolver):
        leaf, _ = ca.issue_leaf("aia.example", now=NOW)
        path = build_path([leaf], store, intermediate_resolver=resolver)
        assert path.complete
        assert path.anchor_in_store
        assert len(path) == 3

    def test_bare_leaf_fails_without_resolver(self, ca, store):
        leaf, _ = ca.issue_leaf("aia.example", now=NOW)
        path = build_path([leaf], store)
        assert not path.complete

    def test_resolver_result_must_verify(self, ca, store):
        # A resolver returning a name-matching but wrong-key certificate
        # must be ignored.
        other = CertificateAuthority(
            "AiaCA", is_public_trust=True, rng=random.Random(82),
            now=NOW - 40 * DAY, intermediate_names=("AiaCA Issuing 1",))
        impostor = other.intermediates[0]
        leaf, _ = ca.issue_leaf("sus.example", now=NOW)
        path = build_path([leaf], store,
                          intermediate_resolver=lambda _c: impostor)
        assert not path.complete

    def test_validator_with_resolver_flips_status(self, ca, store,
                                                  resolver):
        leaf, _ = ca.issue_leaf("flip.example", now=NOW)
        strict = ChainValidator(store)
        chasing = ChainValidator(store, intermediate_resolver=resolver)
        assert strict.validate([leaf], at=NOW + DAY).status is \
            ChainStatus.INCOMPLETE_CHAIN
        assert chasing.validate([leaf], at=NOW + DAY).status is \
            ChainStatus.OK

    def test_private_roots_stay_untrusted_with_aia(self, study):
        # AIA chasing completes chains but cannot mint trust: the paper's
        # private-root failures persist.
        resolver = study.ecosystem.aia_resolver()
        chasing = ChainValidator(study.ecosystem.union_store,
                                 intermediate_resolver=resolver)
        roku = study.ecosystem.private["Roku"]
        leaf, _ = roku.issue_leaf("aia.roku.com", now=NOW)
        report = chasing.validate([leaf], at=NOW + DAY)
        # The chain now completes to Roku's root, which is still untrusted
        # (or remains incomplete if the root isn't resolvable — both are
        # failures).
        assert report.status in (ChainStatus.UNTRUSTED_ROOT,
                                 ChainStatus.INCOMPLETE_CHAIN)
        assert report.status is not ChainStatus.OK

    def test_ecosystem_resolver_covers_netflix_chained(self, study):
        resolver = study.ecosystem.aia_resolver()
        chained = study.ecosystem.netflix_chained
        leaf, _ = chained.issue_leaf("aia.netflix.com", now=NOW)
        path = build_path([leaf], study.ecosystem.union_store,
                          intermediate_resolver=resolver)
        assert path.complete
        assert path.anchor_in_store
