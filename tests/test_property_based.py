"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.match import set_jaccard as jaccard
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.record import ContentType, decode_records, encode_records
from repro.tlslib.versions import TLSVersion
from repro.x509 import asn1

SLOW = settings(deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

wire_code = st.integers(min_value=0, max_value=0xFFFF)
ext_code = st.integers(min_value=1, max_value=0xFFFE).filter(lambda c: c != 0)
hostname = st.from_regex(r"[a-z]{1,10}(\.[a-z]{1,10}){1,3}", fullmatch=True)


class TestClientHelloRoundTrip:
    @SLOW
    @given(
        version=st.sampled_from(list(TLSVersion)),
        suites=st.lists(wire_code, min_size=1, max_size=80),
        extensions=st.lists(ext_code, max_size=20),
        sni=st.one_of(st.none(), hostname),
        random_bytes=st.binary(min_size=32, max_size=32),
        session_id=st.binary(max_size=16),
    )
    def test_roundtrip(self, version, suites, extensions, sni,
                       random_bytes, session_id):
        hello = ClientHello(version=version, ciphersuites=suites,
                            extensions=extensions, sni=sni,
                            random=random_bytes, session_id=session_id)
        parsed = ClientHello.from_bytes(hello.to_bytes())
        assert parsed.version == hello.version
        assert parsed.ciphersuites == list(hello.ciphersuites)
        assert parsed.extensions == list(hello.extensions)
        assert parsed.sni == hello.sni
        assert parsed.session_id == session_id

    @SLOW
    @given(payload=st.binary(max_size=40000),
           version=st.sampled_from(list(TLSVersion)))
    def test_record_layer_roundtrip(self, payload, version):
        wire = encode_records(ContentType.APPLICATION_DATA, version, payload)
        records = decode_records(wire)
        assert b"".join(r.payload for r in records) == payload


class TestDERProperties:
    @SLOW
    @given(value=st.integers(min_value=-(2 ** 256), max_value=2 ** 256))
    def test_integer_roundtrip(self, value):
        assert asn1.decode(asn1.encode_integer(value)).as_integer() == value

    @SLOW
    @given(data=st.binary(max_size=2000))
    def test_octet_string_roundtrip(self, data):
        node = asn1.decode(asn1.encode_octet_string(data))
        assert node.as_octet_string() == data

    @SLOW
    @given(arcs=st.lists(st.integers(min_value=0, max_value=2 ** 28),
                         min_size=1, max_size=8))
    def test_oid_roundtrip(self, arcs):
        dotted = ".".join(str(a) for a in [1, 3] + arcs)
        assert asn1.decode(asn1.encode_oid(dotted)).as_oid() == dotted

    @SLOW
    @given(values=st.lists(st.integers(min_value=0, max_value=255),
                           max_size=6))
    def test_sequence_roundtrip(self, values):
        blob = asn1.encode_sequence(*[asn1.encode_integer(v)
                                      for v in values])
        node = asn1.decode(blob)
        assert [child.as_integer() for child in node] == values

    @SLOW
    @given(junk=st.binary(min_size=1, max_size=64))
    def test_decode_never_crashes_unexpectedly(self, junk):
        # Arbitrary bytes either decode or raise DERDecodeError — nothing
        # else may escape.
        from repro.x509.errors import DERDecodeError
        try:
            asn1.decode(junk)
        except DERDecodeError:
            pass


class TestJaccardProperties:
    sets = st.sets(st.integers(min_value=0, max_value=50), max_size=20)

    @SLOW
    @given(a=sets, b=sets)
    def test_bounds(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0

    @SLOW
    @given(a=sets, b=sets)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @SLOW
    @given(a=sets)
    def test_identity(self, a):
        assert jaccard(a, a) == (1.0 if a else 0.0)

    @SLOW
    @given(a=sets, b=sets)
    def test_one_iff_equal(self, a, b):
        if jaccard(a, b) == 1.0:
            assert a == b

    @SLOW
    @given(a=sets, b=sets)
    def test_vector_jaccard_matches_set_reference(self, a, b):
        # Same contract, same floats: popcounts and set cardinalities
        # are the same integers, so the ratios are bit-identical.
        from repro.match import FeatureSpace, FingerprintVector
        space = FeatureSpace()
        vec_a = FingerprintVector.from_tokens(a, space)
        vec_b = FingerprintVector.from_tokens(b, space)
        value = vec_a.jaccard(vec_b)
        assert value == jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == vec_b.jaccard(vec_a)
        assert vec_a.jaccard(vec_a) == (1.0 if a else 0.0)


class TestStackDerivationProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           hygiene=st.floats(min_value=0.0, max_value=1.0),
           mutation=st.sampled_from(["extensions", "reorder", "component",
                                     "similar", "custom"]))
    def test_derived_stack_invariants(self, seed, hygiene, mutation):
        from repro.inspector.stacks import StackFactory
        from repro.libraries import openssl
        from repro.tlslib.versions import TLSVersion as V
        base = openssl.fingerprint_for("1.0.1u")
        stack = StackFactory(seed=seed).derive(
            base, "prop", mutation=mutation, hygiene=hygiene,
            scope=(seed,))
        assert stack.ciphersuites, "suite list never empty"
        assert len(set(stack.ciphersuites)) == len(stack.ciphersuites), \
            "no duplicate suites"
        assert stack.tls_version != V.TLS_1_3, "no TLS 1.3 in the study era"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_derivation_deterministic(self, seed):
        from repro.inspector.stacks import StackFactory
        from repro.libraries import mbedtls
        base = mbedtls.fingerprint_for("2.16.4")
        one = StackFactory(seed=seed).derive(base, "p", mutation="custom",
                                             scope=("s",))
        two = StackFactory(seed=seed).derive(base, "p", mutation="custom",
                                             scope=("s",))
        assert one.ciphersuites == two.ciphersuites
        assert one.extensions == two.extensions


class TestCTProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(count=st.integers(min_value=1, max_value=12),
           index=st.integers(min_value=0, max_value=11))
    def test_inclusion_proofs(self, count, index):
        from repro.x509.certificate import sign_certificate
        from repro.x509.ct import CTLog
        from repro.x509.keys import generate_keypair
        from repro.x509.names import DistinguishedName
        index = index % count
        key = generate_keypair(512, rng=random.Random(1))
        issuer = DistinguishedName(common_name="Prop CA")
        log = CTLog("prop")
        certs = []
        for i in range(count):
            cert = sign_certificate(
                serial=i + 1,
                subject=DistinguishedName(common_name=f"h{i}.example"),
                issuer=issuer, issuer_keypair=key, not_before=0,
                not_after=86400, public_key=key.public)
            log.submit(cert)
            certs.append(cert)
        proof = log.prove_inclusion(certs[index])
        assert log.verify_inclusion(certs[index], proof)
        # And the proof never verifies a different certificate.
        other = certs[(index + 1) % count]
        if other.fingerprint() != certs[index].fingerprint():
            assert not log.verify_inclusion(other, proof)


class TestDoCProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_doc_in_unit_interval(self, data):
        from repro.core.customization import doc_device, doc_vendor
        from repro.inspector.dataset import InspectorDataset
        from tests.conftest import make_record
        n = data.draw(st.integers(min_value=1, max_value=12))
        records = []
        for i in range(n):
            vendor = data.draw(st.sampled_from(["V1", "V2", "V3"]))
            device = f"{vendor}-d{data.draw(st.integers(0, 3))}"
            suites = tuple(sorted(data.draw(
                st.sets(st.sampled_from([0x2F, 0x35, 0x0A, 0xC02F]),
                        min_size=1, max_size=3))))
            records.append(make_record(device=device, vendor=vendor,
                                       suites=suites))
        ds = InspectorDataset(records)
        for vendor in ds.vendor_names():
            assert 0.0 <= doc_vendor(ds, vendor) <= 1.0
        for device in ds.device_ids():
            assert 0.0 <= doc_device(ds, device) <= 1.0


class TestFabricLeaseProperties:
    """The fabric scheduling invariant, under adversarial schedules.

    Random grids, worker counts, and interleavings of complete / fail /
    abandon (a lease left to expire, i.e. a dead worker) — followed by
    a coordinator restart from the persisted ledger — must always end
    with every expanded unit completed exactly once: no duplicates in
    the ledger, no lost units, no unit accepted twice.
    """

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_every_unit_completes_exactly_once_across_resume(self,
                                                             data):
        import tempfile
        from collections import Counter
        from pathlib import Path

        from repro.config import StudyConfig
        from repro.fabric import FabricCoordinator
        from repro.store.campaign import CampaignIndex
        from repro.sweep import expand_grid

        seeds = data.draw(st.integers(1, 3), label="seeds")
        grid = data.draw(st.sampled_from(
            (("seeds",), ("seeds", "stores"), ("seeds", "faults"))),
            label="grid")
        workers = data.draw(st.integers(1, 4), label="workers")
        units = expand_grid(StudyConfig(), seeds=seeds, grid=grid,
                            stage="probe")
        specs = [unit.to_json() for unit in units]
        all_keys = {spec["key"] for spec in specs}

        class Clock:
            now = 1000.0

            def __call__(self):
                return Clock.now

        accepted = Counter()

        def finish(coordinator, lease):
            reply = coordinator.complete(
                lease["lease"],
                {"name": lease["unit"]["name"],
                 "key": lease["unit"]["key"], "ok": True})
            if not reply["duplicate"]:
                accepted[lease["unit"]["key"]] += 1

        with tempfile.TemporaryDirectory() as root:
            path = Path(root) / "campaign.json"
            index = CampaignIndex.create(path, specs, "probe")
            first = FabricCoordinator(index, lease_seconds=10.0,
                                      max_attempts=100, clock=Clock())
            # Phase 1: an adversarial partial run, then a hard stop.
            steps = data.draw(st.integers(0, 2 * len(specs)),
                              label="phase1_steps")
            for _ in range(steps):
                who = f"w{data.draw(st.integers(0, workers - 1))}"
                lease = first.lease(who)
                if lease["unit"] is None:
                    if lease["done"]:
                        break
                    Clock.now += 11.0  # let abandoned leases lapse
                    continue
                outcome = data.draw(st.sampled_from(
                    ("complete", "abandon", "fail")), label="outcome")
                if outcome == "complete":
                    finish(first, lease)
                elif outcome == "fail":
                    first.fail(lease["lease"], "injected failure")
                else:
                    Clock.now += 10.5  # the worker dies mid-unit

            # Phase 2: restart from the persisted ledger and drain.
            resumed_index = CampaignIndex.load(path)
            resumed = FabricCoordinator(resumed_index,
                                        lease_seconds=10.0,
                                        max_attempts=100, clock=Clock())
            for _ in range(4 * len(specs) + 4):
                lease = resumed.lease("resumer")
                if lease["unit"] is None:
                    assert lease["done"]
                    break
                finish(resumed, lease)

            assert set(resumed_index.completed) == all_keys  # none lost
            assert not resumed_index.failed  # retries cleared them all
            assert accepted == Counter({key: 1 for key in all_keys})
            assert resumed.done()
