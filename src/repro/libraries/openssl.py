"""OpenSSL default-client fingerprints across versions.

Models the 19 OpenSSL versions compiled in the paper's Appendix B.1, plus
arbitrary patch letters inside each branch (needed for the curl×OpenSSL
grid).  Each branch has a base configuration; documented history events
(FREAK export-cipher removal, RC4 deprecation, TLS 1.3 in 1.1.1) change
the default ClientHello at specific patch levels, so consecutive versions
often share a fingerprint — the property the paper relies on when it
reports the *highest* matching version.
"""

from repro.libraries.base import LibraryFingerprint, version_sort_key
from repro.tlslib.ciphersuites import codes_by_names, EMPTY_RENEGOTIATION_INFO_SCSV
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.versions import TLSVersion

#: The 19 versions the paper compiled (Appendix B.1).
VERSIONS = (
    "1.0.0m", "1.0.0q", "1.0.0t",
    "1.0.1h", "1.0.1l", "1.0.1r", "1.0.1u",
    "1.0.2", "1.0.2f", "1.0.2-beta1", "1.0.2-beta2", "1.0.2m", "1.0.2u",
    "1.1.0l", "1.1.0-pre1", "1.1.0-pre2", "1.1.0-pre3",
    "1.1.1i", "1.1.1-pre2",
)

#: Branch metadata from the paper's Table 10: (release year, supported in 2020).
BRANCH_INFO = {
    "1.0.0": (2010, False),
    "1.0.1": (2012, False),
    "1.0.2": (2015, False),   # EOL 1.0.2u, December 2019
    "1.1.0": (2016, False),
    "1.1.1": (2018, True),    # LTS, supported through 2023
}

_EXPORT_SUITES = codes_by_names([
    "TLS_RSA_EXPORT_WITH_RC4_40_MD5",
    "TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5",
    "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA",
    "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA",
])

_DES_SUITES = codes_by_names([
    "TLS_RSA_WITH_DES_CBC_SHA",
    "TLS_DHE_RSA_WITH_DES_CBC_SHA",
])

_RC4_SUITES = codes_by_names([
    "TLS_ECDHE_RSA_WITH_RC4_128_SHA",
    "TLS_ECDHE_ECDSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_MD5",
])

_LEGACY_CBC_SHA = codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_DHE_DSS_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_DSS_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_SEED_CBC_SHA",
    "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA",
])

_3DES_SUITES = codes_by_names([
    "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
])

_TLS12_AEAD = codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_RSA_WITH_AES_128_GCM_SHA256",
])

_TLS12_CBC_SHA2 = codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_128_CBC_SHA256",
])

_CHACHA_SUITES = codes_by_names([
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
])

_TLS13_SUITES = codes_by_names([
    "TLS_AES_256_GCM_SHA384",
    "TLS_CHACHA20_POLY1305_SHA256",
    "TLS_AES_128_GCM_SHA256",
])

_BASE_EXTENSIONS = (
    int(Ext.SERVER_NAME),
    int(Ext.SUPPORTED_GROUPS),
    int(Ext.EC_POINT_FORMATS),
    int(Ext.SESSION_TICKET),
)


def _patch_rank(version):
    """Ordinal of the patch level within a branch, for comparing events.

    ``1.0.1`` -> 0, ``1.0.1a`` -> 1, ..., pre/beta releases rank below the
    plain release.
    """
    key = version_sort_key(version)
    # key looks like ((1,1,'')... ) — count the numeric triple, inspect rest.
    tail = key[3:] if len(key) > 3 else ()
    if not tail:
        return 0
    kind, _num, token = tail[0]
    if kind == 0:  # pre/beta/rc tag
        return -1
    if kind == 2:  # patch letter
        return ord(token[0]) - ord("a") + 1
    return 0


def branch_of(version):
    """Return the ``major.minor.fix`` branch of an OpenSSL version string."""
    head = version.split("-")[0]
    parts = head.split(".")
    branch = ".".join(parts[:3])[:5]
    return branch


def config_for_version(version):
    """Compute ``(tls_version, suites, extensions)`` for a version string."""
    branch = branch_of(version)
    rank = _patch_rank(version)
    if branch == "1.0.0":
        suites = _LEGACY_CBC_SHA + _RC4_SUITES + _3DES_SUITES + _DES_SUITES
        # FREAK response (early 2015, ~1.0.0p/q): drop export-grade suites.
        if rank < _patch_rank("1.0.0q"):
            suites = suites + _EXPORT_SUITES
        return TLSVersion.TLS_1_0, tuple(suites), _BASE_EXTENSIONS
    if branch == "1.0.1":
        suites = (_TLS12_AEAD + _TLS12_CBC_SHA2 + _LEGACY_CBC_SHA
                  + _RC4_SUITES + _3DES_SUITES)
        extensions = _BASE_EXTENSIONS + (int(Ext.SIGNATURE_ALGORITHMS),)
        if rank < _patch_rank("1.0.1l"):
            suites = suites + _DES_SUITES + _EXPORT_SUITES
            extensions = extensions + (int(Ext.HEARTBEAT),)
        elif rank < _patch_rank("1.0.1r"):
            suites = suites + _DES_SUITES
        return TLSVersion.TLS_1_2, tuple(suites), extensions
    if branch == "1.0.2":
        suites = (_TLS12_AEAD + _TLS12_CBC_SHA2 + _LEGACY_CBC_SHA
                  + _3DES_SUITES)
        extensions = _BASE_EXTENSIONS + (int(Ext.SIGNATURE_ALGORITHMS),)
        # 1.0.2 GA and betas still shipped RC4 in the default list; the
        # RC4 deprecation (RFC 7465 response) landed by 1.0.2f, after which
        # the branch fingerprint is stable through 1.0.2u (the paper's Wyze
        # case: 1.0.2f/1.0.2o/1.0.2u share one fingerprint).
        if rank < _patch_rank("1.0.2f"):
            suites = _TLS12_AEAD + _TLS12_CBC_SHA2 + _LEGACY_CBC_SHA \
                + _RC4_SUITES + _3DES_SUITES
        return TLSVersion.TLS_1_2, tuple(suites), extensions
    if branch == "1.1.0":
        suites = _CHACHA_SUITES + _TLS12_AEAD + _TLS12_CBC_SHA2 \
            + _LEGACY_CBC_SHA
        # The development snapshots predate the ChaCha20 merge.
        if rank < 0 and version.endswith(("pre1", "pre2")):
            suites = _TLS12_AEAD + _TLS12_CBC_SHA2 + _LEGACY_CBC_SHA
        extensions = _BASE_EXTENSIONS + (
            int(Ext.SIGNATURE_ALGORITHMS),
            int(Ext.ENCRYPT_THEN_MAC),
            int(Ext.EXTENDED_MASTER_SECRET),
        )
        return TLSVersion.TLS_1_2, tuple(suites), extensions
    if branch == "1.1.1":
        suites = _TLS13_SUITES + _CHACHA_SUITES + _TLS12_AEAD \
            + _TLS12_CBC_SHA2 + _LEGACY_CBC_SHA
        extensions = _BASE_EXTENSIONS + (
            int(Ext.SIGNATURE_ALGORITHMS),
            int(Ext.ENCRYPT_THEN_MAC),
            int(Ext.EXTENDED_MASTER_SECRET),
            int(Ext.SUPPORTED_VERSIONS),
            int(Ext.PSK_KEY_EXCHANGE_MODES),
            int(Ext.KEY_SHARE),
        )
        if rank < 0:  # 1.1.1-pre2: TLS 1.3 draft without the CCM removal
            suites = suites + codes_by_names(["TLS_AES_128_CCM_SHA256"])
        return TLSVersion.TLS_1_3, tuple(suites), extensions
    raise ValueError(f"unmodelled OpenSSL branch: {branch!r}")


def fingerprint_for(version):
    """Build the :class:`LibraryFingerprint` for one OpenSSL version."""
    tls_version, suites, extensions = config_for_version(version)
    release_year, supported = BRANCH_INFO[branch_of(version)]
    return LibraryFingerprint(
        library="OpenSSL", version=version, tls_version=tls_version,
        ciphersuites=suites + (EMPTY_RENEGOTIATION_INFO_SCSV,),
        extensions=extensions, release_year=release_year,
        supported_in_2020=supported)


def fingerprints():
    """Fingerprints for the 19 versions compiled in the paper."""
    return [fingerprint_for(version) for version in VERSIONS]
