"""The aggregate known-library fingerprint corpus and its matcher.

Reproduces the paper's Section 4.1 corpus: 6,891 library fingerprints (19
OpenSSL + 38 wolfSSL + 113 Mbed TLS + 5,591 curl×OpenSSL + 1,130
curl×wolfSSL).  Consecutive versions frequently share a fingerprint; the
matcher therefore reports the *highest* matching version, mirroring the
paper's convention ("if a device's fingerprint is identical to F, we use
the highest version j").
"""

from repro.libraries import curl, mbedtls, openssl, wolfssl
from repro.libraries.base import fingerprint_key, version_sort_key


class LibraryCorpus:
    """Indexed collection of library fingerprints with exact matching."""

    def __init__(self, fingerprints):
        self._fingerprints = list(fingerprints)
        self._by_key = {}
        for fingerprint in self._fingerprints:
            self._by_key.setdefault(fingerprint.key(), []).append(fingerprint)

    def __len__(self):
        return len(self._fingerprints)

    def __iter__(self):
        return iter(self._fingerprints)

    @property
    def distinct_fingerprint_count(self):
        """Number of distinct {version, suites, extensions} keys."""
        return len(self._by_key)

    def libraries(self):
        """Family names present in the corpus."""
        return sorted({fp.library for fp in self._fingerprints})

    def match(self, tls_version, ciphersuites, extensions):
        """Exact-match a device fingerprint against the corpus.

        Returns the :class:`~repro.libraries.base.LibraryFingerprint` of
        the highest matching version, or None when nothing matches.
        """
        key = fingerprint_key(tls_version, ciphersuites, extensions)
        candidates = self._by_key.get(key)
        if not candidates:
            return None
        return max(candidates,
                   key=lambda fp: (fp.library, version_sort_key(fp.version)))

    def match_all(self, tls_version, ciphersuites, extensions):
        """All corpus entries sharing a device fingerprint (may span versions)."""
        key = fingerprint_key(tls_version, ciphersuites, extensions)
        return list(self._by_key.get(key, ()))

    def ciphersuite_lists(self):
        """Distinct default ciphersuite lists with a representative entry.

        Feeds the semantics-aware matcher (Appendix B.2), which compares
        device suite lists against library suite lists independent of
        extensions and version.
        """
        seen = {}
        for fingerprint in self._fingerprints:
            current = seen.get(fingerprint.ciphersuites)
            if current is None or (
                    (fingerprint.library, version_sort_key(fingerprint.version))
                    > (current.library, version_sort_key(current.version))):
                seen[fingerprint.ciphersuites] = fingerprint
        return seen


def build_default_corpus():
    """Build the full 6,891-entry corpus from all modelled libraries."""
    fingerprints = []
    fingerprints.extend(openssl.fingerprints())
    fingerprints.extend(wolfssl.fingerprints())
    fingerprints.extend(mbedtls.fingerprints())
    fingerprints.extend(curl.openssl_build_fingerprints())
    fingerprints.extend(curl.wolfssl_build_fingerprints())
    return LibraryCorpus(fingerprints)
