"""curl default fingerprints, compiled against OpenSSL or wolfSSL.

The paper's corpus contains 5,591 curl×OpenSSL builds (curl 7.19.0 through
7.71.0) and 1,130 curl×wolfSSL builds (curl 7.25.0 through 7.68.0).  A
curl build inherits the ClientHello of its TLS backend and perturbs the
extension list with curl-driven features — ALPN from 7.33.0 and NPN during
the SPDY era (7.29.0 – 7.60.x with OpenSSL) — so many builds collapse onto
a handful of distinct fingerprints, exactly why the paper's 23 device
matches resolve to only 16 libraries.
"""

import itertools

from repro.libraries import openssl, wolfssl
from repro.libraries.base import LibraryFingerprint, version_sort_key
from repro.tlslib.extensions import ExtensionType as Ext

#: Corpus sizes reported in the paper (Appendix B.1).
CURL_OPENSSL_BUILD_COUNT = 5591
CURL_WOLFSSL_BUILD_COUNT = 1130


def curl_versions(first_minor, last_minor):
    """Generate the curl release list between two minor series.

    Patch counts per minor follow a fixed small cycle (real curl minors
    carried 0–3 patch releases); the exact populations only need to cover
    the version *range* the paper names and reach its corpus sizes.
    """
    versions = []
    for minor in range(first_minor, last_minor + 1):
        for patch in range((minor % 3) + 1):
            versions.append(f"7.{minor}.{patch}")
    return versions


def _openssl_grid_versions():
    """A finer-grained OpenSSL version list for the curl build grid."""
    versions = []
    for letter in "aeimqt":
        versions.append(f"1.0.0{letter}")
    versions.append("1.0.1")
    for letter in "abcdefghijklmnopqrstu":
        versions.append(f"1.0.1{letter}")
    versions.extend(["1.0.2-beta1", "1.0.2-beta2", "1.0.2"])
    for letter in "abcdefghijklmnopqrstu":
        versions.append(f"1.0.2{letter}")
    versions.extend(["1.1.0-pre1", "1.1.0-pre2", "1.1.0-pre3", "1.1.0"])
    for letter in "abcdefghijkl":
        versions.append(f"1.1.0{letter}")
    versions.extend(["1.1.1-pre2", "1.1.1"])
    for letter in "abcdefghi":
        versions.append(f"1.1.1{letter}")
    return versions


def _wolfssl_grid_versions():
    """wolfSSL versions paired with curl in the paper's grid."""
    return ["2.9.0", "3.0.0", "3.1.0", "3.4.0", "3.6.0", "3.7.0", "3.8.0",
            "3.9.0", "3.10.3", "3.12.0-stable", "3.14.2", "3.15.3-stable",
            "4.0.0-stable"]


def _curl_extensions(base_extensions, curl_version, backend):
    """Apply curl's extension perturbations on top of the backend's."""
    extensions = list(base_extensions)
    key = version_sort_key(curl_version)
    if key >= version_sort_key("7.33.0"):
        extensions.append(int(Ext.APPLICATION_LAYER_PROTOCOL_NEGOTIATION))
    if backend == "OpenSSL" and (
            version_sort_key("7.29.0") <= key < version_sort_key("7.61.0")):
        extensions.append(int(Ext.NEXT_PROTOCOL_NEGOTIATION))
    return tuple(extensions)


def _build(curl_version, backend_name, backend_module, backend_version):
    base = backend_module.fingerprint_for(backend_version)
    return LibraryFingerprint(
        library=f"curl+{backend_name}",
        version=f"{curl_version}+{backend_version}",
        tls_version=base.tls_version,
        ciphersuites=base.ciphersuites,
        extensions=_curl_extensions(base.extensions, curl_version,
                                    backend_name),
        release_year=base.release_year,
        supported_in_2020=base.supported_in_2020,
    )


def openssl_build_fingerprints(limit=CURL_OPENSSL_BUILD_COUNT):
    """The curl×OpenSSL build grid, truncated to the paper's corpus size."""
    grid = itertools.product(curl_versions(19, 71), _openssl_grid_versions())
    return [
        _build(curl_version, "OpenSSL", openssl, backend_version)
        for curl_version, backend_version in itertools.islice(grid, limit)
    ]


def wolfssl_build_fingerprints(limit=CURL_WOLFSSL_BUILD_COUNT):
    """The curl×wolfSSL build grid, truncated to the paper's corpus size."""
    grid = itertools.product(curl_versions(25, 68), _wolfssl_grid_versions())
    return [
        _build(curl_version, "wolfSSL", wolfssl, backend_version)
        for curl_version, backend_version in itertools.islice(grid, limit)
    ]


def fingerprints():
    """All curl build fingerprints (both backends)."""
    return openssl_build_fingerprints() + wolfssl_build_fingerprints()
