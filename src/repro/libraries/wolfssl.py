"""wolfSSL (née CyaSSL) default-client fingerprints across versions.

Models the 38 versions from the paper's Appendix B.1.  wolfSSL targets
embedded systems, so its default suite lists are much shorter than
OpenSSL's, extensions arrive late, and ECC/AEAD support lands with the
3.x line — matching the documented change log eras.
"""

from repro.libraries.base import LibraryFingerprint, version_sort_key
from repro.tlslib.ciphersuites import codes_by_names
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.versions import TLSVersion

#: The 38 versions the paper compiled (Appendix B.1).
VERSIONS = (
    "1.8.0",
    "2.1.1", "2.2.1", "2.2.2", "2.3.0", "2.4.6", "2.4.7", "2.5.0", "2.5.2",
    "2.5.2b", "2.6.0", "2.8.0", "2.9.0",
    "3.0.0", "3.0.2", "3.1.0", "3.4.0", "3.4.2", "3.4.8", "3.6.0", "3.7.0",
    "3.8.0", "3.9.0", "3.9.10-stable", "3.10.2-stable", "3.10.3",
    "3.11.0-stable", "3.12.0-stable", "3.13.0-stable", "3.14.2", "3.14.5",
    "3.15.0-stable", "3.15.3-stable", "3.15.6", "3.15.7-stable",
    "4.0.0-stable",
    "WCv4.0-RC4", "WCv4.0-RC5",
)

#: Era metadata: (release year, supported in 2020) keyed by major era.
_ERA_INFO = {
    "1": (2010, False),
    "2": (2012, False),
    "3.0": (2014, False),
    "3.4": (2015, False),
    "3.6": (2015, False),
    "3.10": (2016, False),
    "3.13": (2018, False),
    "3.15": (2018, False),
    "4": (2019, True),
}

_CYASSL_SUITES = codes_by_names([
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_MD5",
])

_V2_SUITES = codes_by_names([
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_PSK_WITH_AES_256_CBC_SHA",
    "TLS_PSK_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
])

_V3_ECC_SUITES = codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
])

_V3_CHACHA = codes_by_names([
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
])

_V3_CCM = codes_by_names([
    "TLS_ECDHE_ECDSA_WITH_AES_128_CCM_8",
    "TLS_RSA_WITH_AES_128_CCM_8",
])

_TLS13_SUITES = codes_by_names([
    "TLS_AES_128_GCM_SHA256",
    "TLS_AES_256_GCM_SHA384",
    "TLS_CHACHA20_POLY1305_SHA256",
])

_ECC_EXTENSIONS = (int(Ext.SUPPORTED_GROUPS), int(Ext.EC_POINT_FORMATS))
_SIGALG_EXTENSIONS = _ECC_EXTENSIONS + (int(Ext.SIGNATURE_ALGORITHMS),)
_TLS13_EXTENSIONS = (
    int(Ext.SUPPORTED_GROUPS),
    int(Ext.EC_POINT_FORMATS),
    int(Ext.SIGNATURE_ALGORITHMS),
    int(Ext.SUPPORTED_VERSIONS),
    int(Ext.KEY_SHARE),
)


def _era_of(version):
    if version.startswith("WCv4") or version.startswith("4"):
        return "4"
    key = version_sort_key(version)
    numeric = tuple(part[1] for part in key if part[0] == 1)[:2]
    if numeric and numeric[0] == 1:
        return "1"
    if numeric and numeric[0] == 2:
        return "2"
    minor = numeric[1] if len(numeric) > 1 else 0
    if minor < 4:
        return "3.0"
    if minor < 6:
        return "3.4"
    if minor < 10:
        return "3.6"
    if minor < 13:
        return "3.10"
    if minor < 15:
        return "3.13"
    return "3.15"


def config_for_version(version):
    """Compute ``(tls_version, suites, extensions)`` for a version string."""
    era = _era_of(version)
    if era == "1":
        return TLSVersion.TLS_1_0, _CYASSL_SUITES, ()
    if era == "2":
        # ECC suites and the first extensions land mid-2.x (2.6.0).
        if version_sort_key(version) >= version_sort_key("2.6.0"):
            suites = codes_by_names([
                "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
                "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
            ]) + _V2_SUITES
            return TLSVersion.TLS_1_2, tuple(suites), _ECC_EXTENSIONS
        return TLSVersion.TLS_1_2, tuple(_V2_SUITES), ()
    if era in ("3.0", "3.4", "3.6", "3.10", "3.13", "3.15"):
        suites = list(_V3_ECC_SUITES)
        if era != "3.0":
            suites = _V3_CCM + suites
        if era in ("3.6", "3.10", "3.13", "3.15"):
            suites = _V3_CHACHA + suites
        extensions = _SIGALG_EXTENSIONS
        if era in ("3.13", "3.15"):
            extensions = extensions + (int(Ext.EXTENDED_MASTER_SECRET),)
        if era == "3.15":
            # 3.15 drops static RSA 3DES from the default list.
            suites = [s for s in suites
                      if s not in codes_by_names(["TLS_RSA_WITH_3DES_EDE_CBC_SHA"])]
        return TLSVersion.TLS_1_2, tuple(suites), extensions
    # era == "4": TLS 1.3 capable
    suites = tuple(_TLS13_SUITES) + tuple(_V3_CHACHA) + tuple(_V3_ECC_SUITES[:8])
    return TLSVersion.TLS_1_3, suites, _TLS13_EXTENSIONS


def fingerprint_for(version):
    tls_version, suites, extensions = config_for_version(version)
    release_year, supported = _ERA_INFO[_era_of(version)]
    return LibraryFingerprint(
        library="wolfSSL", version=version, tls_version=tls_version,
        ciphersuites=tuple(suites), extensions=tuple(extensions),
        release_year=release_year, supported_in_2020=supported)


def fingerprints():
    """Fingerprints for the 38 versions compiled in the paper."""
    return [fingerprint_for(version) for version in VERSIONS]
