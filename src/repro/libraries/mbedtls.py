"""Mbed TLS / PolarSSL default-client fingerprints across versions.

Models the 113 versions from the paper's Appendix B.1 (PolarSSL 0.13.1
through Mbed TLS 2.16.6).  Note the paper's appendix lists "2.16.2" twice;
we keep one instance and include 2.16.1 so the corpus still counts 113
distinct versions.
"""

from repro.libraries.base import LibraryFingerprint, version_sort_key
from repro.tlslib.ciphersuites import codes_by_names
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.versions import TLSVersion


def _expand(prefix, items):
    return tuple(f"{prefix}{item}" for item in items)


#: The 113 versions the paper compiled (Appendix B.1), normalized.
VERSIONS = (
    ("0.13.1", "0.14.0", "0.14.2", "0.14.3")
    + ("1.0.0",)
    + _expand("1.1.", range(9))
    + _expand("1.2.", range(20))
    + _expand("1.3.", range(23))
    + ("1.4-dtls-preview",)
    + _expand("2.1.", range(19))
    + ("2.2.0", "2.2.1")
    + ("2.3.0",)
    + ("2.4.0", "2.4.2")
    + ("2.5.1",)
    + ("2.6.0",)
    + ("2.7.0",) + _expand("2.7.", range(2, 16))
    + ("2.8.0", "2.9.0", "2.11.0", "2.12.0", "2.13.0")
    + ("2.14.0", "2.14.1")
    + ("2.16.0", "2.16.1", "2.16.2", "2.16.3", "2.16.4", "2.16.5", "2.16.6")
)

#: Era metadata from the paper's Table 10.
_ERA_INFO = {
    "0": (2009, False),
    "1.0": (2011, False),
    "1.2": (2012, False),
    "1.3": (2013, False),
    "2.1": (2015, False),
    "2.2": (2015, False),
    "2.6": (2017, False),
    "2.7": (2018, False),
    "2.12": (2018, False),
    "2.16": (2018, True),   # LTS branch, 2.16.4 released January 2020
}

_POLARSSL_0X = codes_by_names([
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_MD5",
    "TLS_RSA_WITH_DES_CBC_SHA",
])

_POLARSSL_1X = codes_by_names([
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_MD5",
    "TLS_RSA_WITH_DES_CBC_SHA",
])

_POLARSSL_12 = codes_by_names([
    "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_RSA_WITH_AES_128_CBC_SHA256",
]) + _POLARSSL_1X

_MBED_13 = codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_ECDHE_ECDSA_WITH_AES_128_CCM",
]) + _POLARSSL_12

#: Mbed TLS 2.x trims RC4/DES and (from 2.7) 3DES from the defaults.
_RC4_DES = set(codes_by_names([
    "TLS_RSA_WITH_RC4_128_SHA",
    "TLS_RSA_WITH_RC4_128_MD5",
    "TLS_RSA_WITH_DES_CBC_SHA",
]))
_3DES = set(codes_by_names(["TLS_RSA_WITH_3DES_EDE_CBC_SHA"]))

_CHACHA = codes_by_names([
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
])

_EXT_13 = (int(Ext.SERVER_NAME), int(Ext.SUPPORTED_GROUPS),
           int(Ext.EC_POINT_FORMATS), int(Ext.SIGNATURE_ALGORITHMS))
_EXT_2X = _EXT_13 + (int(Ext.ENCRYPT_THEN_MAC), int(Ext.EXTENDED_MASTER_SECRET))
_EXT_26 = _EXT_2X + (int(Ext.SESSION_TICKET),)


def _era_of(version):
    key = version_sort_key(version)
    numeric = tuple(part[1] for part in key if part[0] == 1)
    major = numeric[0] if numeric else 0
    minor = numeric[1] if len(numeric) > 1 else 0
    if major == 0:
        return "0"
    if major == 1:
        if minor <= 1:
            return "1.0"
        if minor == 2:
            return "1.2"
        if minor == 3:
            return "1.3"
        return "1.3"  # the 1.4 dtls preview shares the 1.3 client defaults
    # major == 2
    if minor < 2:
        return "2.1"
    if minor < 6:
        return "2.2"
    if minor < 7:
        return "2.6"
    if minor < 12:
        return "2.7"
    if minor < 16:
        return "2.12"
    return "2.16"


def config_for_version(version):
    """Compute ``(tls_version, suites, extensions)`` for a version string."""
    era = _era_of(version)
    if era == "0":
        return TLSVersion.TLS_1_1, tuple(_POLARSSL_0X), ()
    if era == "1.0":
        return TLSVersion.TLS_1_1, tuple(_POLARSSL_1X), ()
    if era == "1.2":
        return TLSVersion.TLS_1_2, tuple(_POLARSSL_12), (_EXT_13[0],
                                                         _EXT_13[3])
    if era == "1.3":
        suites = _MBED_13
        # SSL3-era suites leave the default list late in the 1.3 branch
        # (1.3.10+, the "Mbed TLS" renaming point).
        if version_sort_key(version) >= version_sort_key("1.3.10"):
            suites = tuple(s for s in suites if s not in _RC4_DES)
        return TLSVersion.TLS_1_2, tuple(suites), _EXT_13
    suites = tuple(s for s in _MBED_13 if s not in _RC4_DES)
    extensions = _EXT_2X
    if era in ("2.6", "2.7", "2.12", "2.16"):
        extensions = _EXT_26
    if era in ("2.7", "2.12", "2.16"):
        suites = tuple(s for s in suites if s not in _3DES)
    if era in ("2.12", "2.16"):
        suites = tuple(_CHACHA) + suites
    return TLSVersion.TLS_1_2, suites, extensions


def fingerprint_for(version):
    tls_version, suites, extensions = config_for_version(version)
    release_year, supported = _ERA_INFO[_era_of(version)]
    library = "PolarSSL" if version_sort_key(version) < version_sort_key("1.3.10") \
        else "Mbed TLS"
    return LibraryFingerprint(
        library=library, version=version, tls_version=tls_version,
        ciphersuites=tuple(suites), extensions=tuple(extensions),
        release_year=release_year, supported_in_2020=supported)


def fingerprints():
    """Fingerprints for the 113 versions compiled in the paper."""
    return [fingerprint_for(version) for version in VERSIONS]
