"""Common machinery for library fingerprint models."""

import re
from dataclasses import dataclass

from repro.tlslib.versions import TLSVersion


@dataclass(frozen=True)
class LibraryFingerprint:
    """The default-client fingerprint of one library version.

    Attributes:
        library: family name (``OpenSSL``, ``wolfSSL``, ``Mbed TLS``,
            ``curl+OpenSSL``, ``curl+wolfSSL``).
        version: version string (e.g. ``1.0.2u``, ``7.52.1+1.0.2m``).
        tls_version: highest version the default client proposes.
        ciphersuites: ordered default suite codes.
        extensions: ordered default extension type codes.
        release_year: year of release (drives the "no longer supported as
            of 2020" finding).
        supported_in_2020: whether the branch still received updates in the
            capture year.
    """

    library: str
    version: str
    tls_version: TLSVersion
    ciphersuites: tuple
    extensions: tuple
    release_year: int = 0
    supported_in_2020: bool = False

    @property
    def full_name(self):
        return f"{self.library} {self.version}"

    def key(self):
        return fingerprint_key(self.tls_version, self.ciphersuites,
                               self.extensions)


def fingerprint_key(tls_version, ciphersuites, extensions):
    """The canonical 3-tuple fingerprint used throughout the study."""
    return (int(tls_version), tuple(ciphersuites), tuple(extensions))


_VERSION_TOKEN = re.compile(r"(\d+|[a-z]+)")


def version_sort_key(version):
    """Sort key handling mixed numeric/letter versions like ``1.0.2u``.

    Numeric tokens compare numerically; letter tokens (patch letters,
    ``beta``/``pre``/``stable`` tags) compare lexically after numbers of
    the same position, with pre-release tags ordered before the release.
    """
    key = []
    for token in _VERSION_TOKEN.findall(version.lower()):
        if token.isdigit():
            key.append((1, int(token), ""))
        elif token in ("beta", "pre", "rc", "dev"):
            key.append((0, 0, token))
        else:
            key.append((2, 0, token))
    return tuple(key)
