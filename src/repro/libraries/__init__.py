"""Known TLS library fingerprint corpus.

The paper compiles 6,891 fingerprints from default clients of known TLS
libraries (Appendix B.1): 19 OpenSSL versions, 38 wolfSSL versions, 113
Mbed TLS/PolarSSL versions, 5,591 curl×OpenSSL builds and 1,130
curl×wolfSSL builds.  This subpackage models those libraries: each version
maps deterministically to a default ClientHello configuration
``{TLS version, ciphersuites, extensions}`` whose evolution across releases
mirrors the documented history of each library (suite additions/removals,
extension introductions), so consecutive versions frequently share a
fingerprint exactly as the paper observes.
"""

from repro.libraries.base import LibraryFingerprint, fingerprint_key
from repro.libraries.corpus import LibraryCorpus, build_default_corpus

__all__ = [
    "LibraryFingerprint",
    "fingerprint_key",
    "LibraryCorpus",
    "build_default_corpus",
]
