"""Deterministic ClientHello feature extraction for learned attribution.

Every fingerprint — the study's ``(version, ciphersuites, extensions)``
3-tuple — is tokenized into a bag of string features and hashed into a
fixed-width numpy vector:

- cipher-suite and extension *n-grams* (n=1, 2) over the
  GREASE-normalized code lists, so a reordered or GREASE-decorated
  variant of a library default shares most of its mass with the
  original;
- the proposed TLS version;
- ordering features (first/last suite and extension, the leading
  suite prefix) — the preference order is exactly what vendors tweak
  least (Appendix B.2), so it carries most of the provenance signal;
- bucketed suite/extension counts;
- GREASE-adoption flags (the only place the raw, un-normalized lists
  are consulted).

Hashing uses SHA-256 over ``"{seed}|{token}"`` — never Python's
``hash()`` — so the column a token lands in is a pure function of the
token and the extractor seed: stable across processes, platforms, and
``PYTHONHASHSEED``.  The seed itself derives from
:meth:`repro.config.StudyConfig.digest` via :func:`feature_seed`, which
is what makes the whole train/eval pipeline conformance-checkable.
"""

import hashlib

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy is a CI dep
    raise ImportError(
        "repro.ml requires numpy (listed in requirements-ci.txt); "
        "the rest of the package stays stdlib-only") from exc

from repro.tlslib.grease import contains_grease, strip_grease

#: Default hashed feature-space width (columns in the design matrix).
DEFAULT_WIDTH = 1024

#: Length of the leading cipher-suite prefix used as one ordering token.
SUITE_PREFIX = 4


def feature_seed(config):
    """The extractor/split seed derived from a config's digest.

    Taking the first 16 hex digits of :meth:`StudyConfig.digest` ties
    every hashed feature index (and the stratified split) to the exact
    study configuration, which is what makes two runs of the same
    config produce byte-identical eval reports.
    """
    return int(config.digest()[:16], 16)


def fingerprint_tokens(fp):
    """The token bag of one 3-tuple fingerprint (deterministic order)."""
    version, suites, extensions = fp
    clean_suites = strip_grease(suites)
    clean_exts = strip_grease(extensions)
    tokens = [f"v:{int(version)}"]
    tokens += [f"s1:{code:04x}" for code in clean_suites]
    tokens += [f"s2:{a:04x}>{b:04x}"
               for a, b in zip(clean_suites, clean_suites[1:])]
    tokens += [f"e1:{int(code)}" for code in clean_exts]
    tokens += [f"e2:{int(a)}>{int(b)}"
               for a, b in zip(clean_exts, clean_exts[1:])]
    if clean_suites:
        tokens.append(f"s_first:{clean_suites[0]:04x}")
        tokens.append(f"s_last:{clean_suites[-1]:04x}")
        tokens.append("s_head:" + ",".join(
            f"{code:04x}" for code in clean_suites[:SUITE_PREFIX]))
    if clean_exts:
        tokens.append(f"e_first:{int(clean_exts[0])}")
        tokens.append(f"e_last:{int(clean_exts[-1])}")
    tokens.append(f"ns:{min(len(clean_suites) // 4, 15)}")
    tokens.append(f"ne:{min(len(clean_exts) // 2, 15)}")
    tokens.append(f"gs:{int(contains_grease(suites))}")
    tokens.append(f"ge:{int(contains_grease(extensions))}")
    return tokens


class FeatureExtractor:
    """Seeded stable-hash vectorizer: fingerprints → numpy matrix."""

    def __init__(self, width=DEFAULT_WIDTH, seed=0):
        width = int(width)
        if width < 16:
            raise ValueError(f"feature width must be >= 16, got {width}")
        self.width = width
        self.seed = int(seed)
        self._index_memo = {}

    def index(self, token):
        """The column ``token`` hashes to (seeded, process-independent)."""
        cached = self._index_memo.get(token)
        if cached is not None:
            return cached
        data = f"{self.seed}|{token}".encode("utf-8")
        column = int.from_bytes(hashlib.sha256(data).digest()[:8],
                                "big") % self.width
        self._index_memo[token] = column
        return column

    def vector(self, fp):
        """One fingerprint's hashed token-count vector."""
        row = np.zeros(self.width, dtype=np.float64)
        for token in fingerprint_tokens(fp):
            row[self.index(token)] += 1.0
        return row

    def matrix(self, fps):
        """The ``(len(fps), width)`` float64 design matrix."""
        X = np.zeros((len(fps), self.width), dtype=np.float64)
        for i, fp in enumerate(fps):
            for token in fingerprint_tokens(fp):
                X[i, self.index(token)] += 1.0
        return X

    def to_json(self):
        return {"width": self.width, "seed": self.seed}

    @classmethod
    def from_json(cls, payload):
        return cls(width=payload["width"], seed=payload["seed"])
