"""Committed conformance baseline for the ML eval report.

Exactly the pipeline-baseline idea (:mod:`repro.verify.baseline`)
applied to the attribution stage: because training is a pure function
of ``(world, config, MLParams)``, the canonical digest of the eval
payload is a *conformance artifact* — ``repro verify ml`` re-trains
and asserts the digest against ``conformance/ml_baseline.json``; any
drift (a feature-extraction change, an iteration-count bump, a numpy
behaviour change) shows up as a first-divergence path, not a silent
metrics shift.
"""

import json

from repro.ml.pipeline import eval_digest
from repro.schema import versioned
from repro.verify.canonical import canonicalize, first_divergence

#: where the committed eval-report baseline lives.
DEFAULT_ML_BASELINE = "conformance/ml_baseline.json"


def record_ml_baseline(payload, path=DEFAULT_ML_BASELINE):
    """Write the committed baseline for one eval payload."""
    document = versioned({
        "artifact_digest": payload["artifact_digest"],
        "digest": eval_digest(payload),
        "payload": canonicalize(payload),
    })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_ml_baseline(path=DEFAULT_ML_BASELINE):
    """The committed baseline document (``FileNotFoundError`` if absent)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "digest" not in document:
        raise ValueError(f"{path} is not an ml baseline file")
    return document


def check_ml_baseline(payload, path=DEFAULT_ML_BASELINE):
    """Compare a fresh eval payload against the committed baseline.

    Returns a JSON-safe report: ``ok``, both digests, and (on
    mismatch) the first divergent path between the two payloads.
    """
    document = load_ml_baseline(path)
    fresh_digest = eval_digest(payload)
    report = {
        "ok": document["digest"] == fresh_digest,
        "baseline": path,
        "expected_digest": document["digest"],
        "actual_digest": fresh_digest,
        "expected_artifact_digest": document["artifact_digest"],
        "actual_artifact_digest": payload["artifact_digest"],
    }
    if document["artifact_digest"] != payload["artifact_digest"]:
        report["note"] = ("baseline was recorded for a different "
                          "study config; re-record with "
                          "`repro verify ml --record` or pass the "
                          "matching --seed")
    if not report["ok"]:
        divergence = first_divergence(document["payload"],
                                      canonicalize(payload))
        if divergence is not None:
            report["first_divergence"] = list(divergence)
    return report
