"""Ground-truth labels and deterministic splits for attribution.

The generator records provenance the paper's authors never had: every
:class:`~repro.inspector.model.TLSStack` carries the full name of the
known library it was derived from (``origin_library``) and every capture
record carries its vendor.  That turns the unmatched 97.45% into a
*labeled* population:

- the ``"family"`` target maps each fingerprint to the library family
  (OpenSSL, wolfSSL, Mbed TLS, ...) of its origin stack, resolved
  through the corpus's ``{full_name: library}`` map;
- the ``"vendor"`` target maps each fingerprint to the vendor whose
  devices propose it.

A fingerprint can be reached from several stacks (cross-vendor pool and
SDK sharing is the point of Section 4.3), so labels are majority votes
weighted by backing device-stack count, with lexicographic tie-breaks —
fully deterministic for a given world.

:func:`stratified_split` never uses ``random``: within each class,
examples are ordered by a seeded SHA-256 over the fingerprint id and the
prefix becomes the held-out set, so the split is a pure function of
``(world, seed, test_fraction)``.
"""

import hashlib
from dataclasses import dataclass

from repro.ingest.incremental import fingerprint_id

#: Prediction targets the pipeline understands.
TARGETS = ("family", "vendor")


@dataclass(frozen=True)
class LabeledExample:
    """One fingerprint with its majority ground-truth label."""

    fingerprint: tuple
    label: str
    #: device-stack occurrences backing the winning label.
    weight: int
    #: True when the fingerprint exactly matches a corpus entry.
    matched: bool


def family_map(corpus):
    """``{library full name: family}`` over the reference corpus."""
    return {entry.full_name: entry.library for entry in corpus}


def _majority(votes):
    """The heaviest label; ties break to the lexicographically least."""
    best = max(votes.values())
    return min(label for label, weight in votes.items()
               if weight == best), best


def _family_votes(world, corpus):
    families = family_map(corpus)
    votes = {}
    for device in world.devices:
        for name in sorted(device.stacks):
            stack = device.stacks[name]
            label = families.get(stack.origin_library)
            if label is None:
                continue
            tally = votes.setdefault(stack.fingerprint(), {})
            tally[label] = tally.get(label, 0) + 1
    return votes


def _vendor_votes(dataset):
    votes = {}
    for fp in dataset.fingerprints():
        tally = {}
        for device_id in dataset.fingerprint_devices(fp):
            vendor = dataset.device_vendor(device_id)
            tally[vendor] = tally.get(vendor, 0) + 1
        votes[fp] = tally
    return votes


def labeled_examples(dataset, corpus, world, target="family"):
    """``(examples, unmatched)`` for one study's capture.

    ``examples`` holds one :class:`LabeledExample` per observed
    fingerprint with recoverable provenance, in sorted-fingerprint
    order; ``unmatched`` lists every observed fingerprint with no exact
    corpus match (the paper's 97.45%), sorted.
    """
    if target not in TARGETS:
        raise ValueError(f"unknown attribution target {target!r}; "
                         f"expected one of {TARGETS}")
    corpus_keys = {entry.key() for entry in corpus}
    votes = (_family_votes(world, corpus) if target == "family"
             else _vendor_votes(dataset))
    observed = sorted(dataset.fingerprints())
    examples = []
    for fp in observed:
        tally = votes.get(fp)
        if not tally:
            continue
        label, weight = _majority(tally)
        examples.append(LabeledExample(
            fingerprint=fp, label=label, weight=weight,
            matched=fp in corpus_keys))
    unmatched = tuple(fp for fp in observed if fp not in corpus_keys)
    return tuple(examples), unmatched


def split_key(seed, fp):
    """The seeded sort key deciding which side of the split ``fp`` lands."""
    data = f"{int(seed)}|split|{fingerprint_id(fp)}".encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def stratified_split(examples, test_fraction=0.3, seed=0):
    """Deterministic per-class ``(train, test)`` split.

    Within each class, examples sort by :func:`split_key` and the first
    ``round(n * test_fraction)`` become the held-out set — capped so
    every class keeps at least one training example.  Classes with a
    single example stay train-only (their test support is 0).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be within (0.0, 1.0), "
                         f"got {test_fraction}")
    by_label = {}
    for example in examples:
        by_label.setdefault(example.label, []).append(example)
    train, test = [], []
    for label in sorted(by_label):
        rows = sorted(by_label[label],
                      key=lambda ex: split_key(seed, ex.fingerprint))
        n_test = min(int(round(len(rows) * test_fraction)),
                     len(rows) - 1)
        test.extend(rows[:n_test])
        train.extend(rows[n_test:])
    return tuple(train), tuple(test)
