"""Train/eval orchestration for learned fingerprint attribution.

The flow is deliberately a pure function of ``(dataset, corpus, world,
config, MLParams)``:

1. :func:`repro.ml.data.labeled_examples` extracts the ground-truth
   labels the generator knows;
2. :func:`repro.ml.data.stratified_split` carves a deterministic
   held-out set (seeded by the config digest);
3. the :class:`~repro.ml.features.FeatureExtractor` hashes both sides
   into numpy matrices;
4. :class:`~repro.ml.models.MultinomialNB` (baseline) and
   :class:`~repro.ml.models.LogisticOVR` (headline) train on the train
   matrix;
5. :func:`evaluate_model` scores the held-out set (per-class
   precision/recall/F1, confusion table) and sweeps the trained model
   over every exact-match-*unmatched* fingerprint to produce the
   headline **attribution coverage** — the share of the paper's 97.45%
   the model attributes above a confidence threshold.

Every float in the eval payload is rounded to 9 decimals before the
canonical digest, so ``repro verify ml`` can assert the digest against
``conformance/ml_baseline.json`` the same way the pipeline baseline
works.  Results are memoized per ``(artifact_digest, params)`` — the
analysis node, the figure exporter, and the CLI share one training run
per process.
"""

import json
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ingest.incremental import fingerprint_id
from repro.ml.data import (TARGETS, labeled_examples, stratified_split)
from repro.ml.features import (DEFAULT_WIDTH, FeatureExtractor,
                               feature_seed)
from repro.ml.models import LogisticOVR, MultinomialNB
from repro.schema import versioned
from repro.verify.canonical import canonicalize
from repro.verify.canonical import digest as canonical_digest

#: default confidence floor for counting a prediction as *attributed*.
DEFAULT_THRESHOLD = 0.6

#: default gradient-descent iteration count (fixed, part of the
#: determinism contract).
DEFAULT_ITERS = 2000

#: default held-out fraction per class.
DEFAULT_TEST_FRACTION = 0.3


@dataclass(frozen=True)
class MLParams:
    """Every knob that selects an attribution training run."""

    target: str = "family"
    width: int = DEFAULT_WIDTH
    iters: int = DEFAULT_ITERS
    learning_rate: float = 30.0
    l2: float = 1e-5
    alpha: float = 1.0
    test_fraction: float = DEFAULT_TEST_FRACTION
    threshold: float = DEFAULT_THRESHOLD

    def __post_init__(self):
        if self.target not in TARGETS:
            raise ValueError(f"unknown attribution target "
                             f"{self.target!r}; expected one of "
                             f"{TARGETS}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be within [0.0, 1.0], "
                             f"got {self.threshold}")

    def to_json(self):
        return {
            "target": self.target, "width": self.width,
            "iters": self.iters,
            "learning_rate": self.learning_rate, "l2": self.l2,
            "alpha": self.alpha,
            "test_fraction": self.test_fraction,
            "threshold": self.threshold,
        }

    @classmethod
    def from_json(cls, payload):
        return cls(**{key: payload[key]
                      for key in cls.__dataclass_fields__
                      if key in payload})


class AttributionModel:
    """A trained extractor + NB + LR bundle with exact JSON round-trip."""

    def __init__(self, params, extractor, classes, nb, lr,
                 artifact_digest, counts):
        self.params = params
        self.extractor = extractor
        self.classes = tuple(classes)
        self.nb = nb
        self.lr = lr
        self.artifact_digest = artifact_digest
        self.counts = dict(counts)

    def predict_rows(self, fps, threshold=None):
        """Per-fingerprint prediction rows, sorted by confidence desc."""
        if threshold is None:
            threshold = self.params.threshold
        if not fps:
            return []
        X = self.extractor.matrix(fps)
        lr_proba = self.lr.proba(X)
        nb_pred = self.nb.predict(X)
        rows = []
        for i, fp in enumerate(fps):
            best = int(np.argmax(lr_proba[i]))
            confidence = round(float(lr_proba[i][best]), 9)
            rows.append({
                "fingerprint": fingerprint_id(fp),
                "label": self.classes[best],
                "confidence": confidence,
                "attributed": confidence >= threshold,
                "nb_label": self.classes[int(nb_pred[i])],
            })
        rows.sort(key=lambda row: (-row["confidence"],
                                   row["fingerprint"]))
        return rows

    def to_json(self):
        return versioned({
            "kind": "ml_model",
            "target": self.params.target,
            "artifact_digest": self.artifact_digest,
            "params": self.params.to_json(),
            "feature": self.extractor.to_json(),
            "classes": list(self.classes),
            "counts": dict(self.counts),
            "nb": self.nb.to_json(),
            "lr": self.lr.to_json(),
        })

    @classmethod
    def from_json(cls, payload):
        if payload.get("kind") != "ml_model":
            raise ValueError("not an attribution model payload "
                             f"(kind={payload.get('kind')!r})")
        return cls(
            params=MLParams.from_json(payload["params"]),
            extractor=FeatureExtractor.from_json(payload["feature"]),
            classes=tuple(payload["classes"]),
            nb=MultinomialNB.from_json(payload["nb"]),
            lr=LogisticOVR.from_json(payload["lr"]),
            artifact_digest=payload["artifact_digest"],
            counts=dict(payload["counts"]))

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path} is not a JSON model file "
                                 f"({exc})") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not an attribution model file")
        return cls.from_json(payload)


def train_attribution(dataset, corpus, world, config, params=None):
    """Train the NB + LR bundle; returns the :class:`AttributionModel`."""
    params = params or MLParams()
    seed = feature_seed(config)
    with obs.span("ml.train") as span:
        examples, _ = labeled_examples(dataset, corpus, world,
                                       target=params.target)
        train, test = stratified_split(
            examples, test_fraction=params.test_fraction, seed=seed)
        classes = tuple(sorted({example.label
                                for example in examples}))
        index = {label: i for i, label in enumerate(classes)}
        extractor = FeatureExtractor(width=params.width, seed=seed)
        with obs.span("ml.features"):
            X = extractor.matrix([ex.fingerprint for ex in train])
        y = np.array([index[ex.label] for ex in train],
                     dtype=np.int64)
        nb = MultinomialNB(alpha=params.alpha).fit(X, y, len(classes))
        lr = LogisticOVR(iters=params.iters,
                         learning_rate=params.learning_rate,
                         l2=params.l2).fit(X, y, len(classes))
        span.incr("examples", len(examples))
        span.incr("classes", len(classes))
        span.incr("iters", params.iters)
    return AttributionModel(
        params=params, extractor=extractor, classes=classes, nb=nb,
        lr=lr, artifact_digest=config.artifact_digest(),
        counts={"labeled": len(examples), "train": len(train),
                "test": len(test)})


def _per_class_metrics(y_true, y_pred, classes):
    """(per_class dict, macro dict, confusion dict) over test labels."""
    per_class = {}
    confusion = {}
    macro = {"precision": [], "recall": [], "f1": []}
    for i, label in enumerate(classes):
        tp = int(np.sum((y_true == i) & (y_pred == i)))
        fp = int(np.sum((y_true != i) & (y_pred == i)))
        fn = int(np.sum((y_true == i) & (y_pred != i)))
        support = int(np.sum(y_true == i))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        per_class[label] = {
            "precision": round(precision, 9),
            "recall": round(recall, 9),
            "f1": round(f1, 9),
            "support": support,
        }
        if support:
            macro["precision"].append(precision)
            macro["recall"].append(recall)
            macro["f1"].append(f1)
    for i, label in enumerate(classes):
        row = {}
        for j, predicted in enumerate(classes):
            count = int(np.sum((y_true == i) & (y_pred == j)))
            if count:
                row[predicted] = count
        if row:
            confusion[label] = row
    macro = {name: round(sum(values) / len(values), 9)
             if values else 0.0
             for name, values in macro.items()}
    return per_class, macro, confusion


def evaluate_model(model, dataset, corpus, world, config,
                   threshold=None):
    """The canonical eval payload for a trained model on one study."""
    params = model.params
    if threshold is None:
        threshold = params.threshold
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be within [0.0, 1.0], "
                         f"got {threshold}")
    seed = feature_seed(config)
    with obs.span("ml.eval") as span:
        examples, unmatched = labeled_examples(
            dataset, corpus, world, target=params.target)
        _, test = stratified_split(
            examples, test_fraction=params.test_fraction, seed=seed)
        index = {label: i for i, label in enumerate(model.classes)}
        test = [ex for ex in test if ex.label in index]
        X_test = model.extractor.matrix(
            [ex.fingerprint for ex in test])
        y_true = np.array([index[ex.label] for ex in test],
                          dtype=np.int64)
        lr_proba = model.lr.proba(X_test)
        y_pred = np.argmax(lr_proba, axis=1)
        nb_pred = model.nb.predict(X_test)
        per_class, macro, confusion = _per_class_metrics(
            y_true, y_pred, model.classes)
        _, nb_macro, _ = _per_class_metrics(y_true, nb_pred,
                                            model.classes)
        accuracy = (float(np.mean(y_pred == y_true))
                    if len(test) else 0.0)
        nb_accuracy = (float(np.mean(nb_pred == y_true))
                       if len(test) else 0.0)

        total_fps = dataset.fingerprint_count
        matched = total_fps - len(unmatched)
        exact_match_rate = matched / total_fps if total_fps else 0.0

        # headline: sweep the unmatched 97.45% and count confident calls
        X_un = model.extractor.matrix(list(unmatched))
        un_proba = model.lr.proba(X_un) if len(unmatched) else \
            np.zeros((0, len(model.classes)))
        un_conf = (un_proba.max(axis=1) if len(unmatched)
                   else np.zeros(0))
        attributed = int(np.sum(un_conf >= threshold))
        coverage = (attributed / len(unmatched) if unmatched else 0.0)

        # accuracy of confident calls on held-out unmatched examples
        unmatched_set = set(unmatched)
        held_idx = [i for i, ex in enumerate(test)
                    if ex.fingerprint in unmatched_set]
        held_conf_ok = [i for i in held_idx
                        if float(lr_proba[i].max()) >= threshold]
        heldout_unmatched_accuracy = (
            float(np.mean(y_pred[held_conf_ok]
                          == y_true[held_conf_ok]))
            if held_conf_ok else 0.0)
        span.incr("test_examples", len(test))
        span.incr("unmatched", len(unmatched))
        span.incr("attributed", attributed)
    return versioned({
        "kind": "ml_eval",
        "target": params.target,
        "artifact_digest": config.artifact_digest(),
        "model_artifact_digest": model.artifact_digest,
        "feature_seed": f"{seed:016x}",
        "params": params.to_json(),
        "classes": list(model.classes),
        "examples": {
            "fingerprints": total_fps,
            "labeled": len(examples),
            "train": model.counts.get("train"),
            "test": len(test),
            "matched": matched,
            "unmatched": len(unmatched),
        },
        "exact_match_rate": round(exact_match_rate, 9),
        "accuracy": round(accuracy, 9),
        "macro": macro,
        "baseline_nb": {
            "accuracy": round(nb_accuracy, 9),
            "macro_f1": nb_macro["f1"],
        },
        "per_class": per_class,
        "confusion": confusion,
        "coverage": {
            "threshold": round(float(threshold), 9),
            "attributed": attributed,
            "unmatched": len(unmatched),
            "attribution_coverage": round(coverage, 9),
            "heldout_unmatched_accuracy": round(
                heldout_unmatched_accuracy, 9),
            "coverage_gain": round(
                coverage / exact_match_rate, 9)
            if exact_match_rate else 0.0,
        },
    })


def evaluate_capture(model, rows, threshold=None):
    """Evaluate a vendor-target model on an external labeled capture.

    ``rows`` are anonymized-capture JSONL dicts (the
    :meth:`ClientHelloRecord.to_json` shape).  Only the ``"vendor"``
    target is supported — a capture carries vendor labels, not library
    provenance — and every row must be labeled; an unlabeled or
    malformed row raises ``ValueError`` naming its index.
    """
    if model.params.target != "vendor":
        raise ValueError("--input captures carry vendor labels only; "
                         f"this model predicts "
                         f"{model.params.target!r} (retrain with "
                         f"--target vendor)")
    if threshold is None:
        threshold = model.params.threshold
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be within [0.0, 1.0], "
                         f"got {threshold}")
    votes = {}
    for i, row in enumerate(rows):
        vendor = row.get("vendor")
        if not vendor:
            raise ValueError(f"input row {i} has no vendor label")
        try:
            fp = (int(row["tls_version"]),
                  tuple(int(code) for code in row["ciphersuites"]),
                  tuple(int(code) for code in row["extensions"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"input row {i} is not a capture row "
                             f"({exc})") from exc
        tally = votes.setdefault(fp, {})
        tally[vendor] = tally.get(vendor, 0) + 1
    fps = sorted(votes)
    index = {label: i for i, label in enumerate(model.classes)}
    labels = []
    for fp in fps:
        tally = votes[fp]
        best = max(tally.values())
        labels.append(min(label for label, weight in tally.items()
                          if weight == best))
    with obs.span("ml.eval_capture") as span:
        X = model.extractor.matrix(fps)
        proba = model.lr.proba(X) if fps else \
            np.zeros((0, len(model.classes)))
        pred = (np.argmax(proba, axis=1) if fps
                else np.zeros(0, dtype=np.int64))
        conf = proba.max(axis=1) if fps else np.zeros(0)
        known = [i for i, label in enumerate(labels) if label in index]
        correct = sum(1 for i in known
                      if int(pred[i]) == index[labels[i]])
        attributed = int(np.sum(conf >= threshold))
        span.incr("rows", len(rows))
        span.incr("fingerprints", len(fps))
    return versioned({
        "kind": "ml_eval_capture",
        "target": model.params.target,
        "model_artifact_digest": model.artifact_digest,
        "records": len(rows),
        "fingerprints": len(fps),
        "known": len(known),
        "accuracy": round(correct / len(known), 9) if known else 0.0,
        "attributed": attributed,
        "attributed_fraction": round(attributed / len(fps), 9)
        if fps else 0.0,
        "threshold": round(float(threshold), 9),
    })


#: per-process memo: one training run per (artifact digest, params).
_EVAL_MEMO = {}


def evaluate_components(dataset, corpus, world, config, params=None):
    """Train + eval in one call, memoized per config artifact digest."""
    params = params or MLParams()
    key = (config.artifact_digest(), params)
    cached = _EVAL_MEMO.get(key)
    if cached is not None:
        return cached
    model = train_attribution(dataset, corpus, world, config,
                              params=params)
    payload = evaluate_model(model, dataset, corpus, world, config)
    _EVAL_MEMO[key] = payload
    return payload


def train_study(study, params=None):
    """Convenience wrapper: train on a :class:`~repro.study.Study`."""
    return train_attribution(study.dataset, study.corpus, study.world,
                             study.config, params=params)


def evaluate_study(study, params=None):
    """Convenience wrapper: memoized train + eval on a study."""
    return evaluate_components(study.dataset, study.corpus,
                               study.world, study.config,
                               params=params)


def eval_digest(payload):
    """The canonical digest ``repro verify ml`` asserts."""
    return canonical_digest(payload)


def canonical_report_text(payload):
    """The canonical JSON text written to eval report files.

    ``canonicalize`` first (stable key order, volatile keys dropped),
    then a pretty-printed sorted dump — byte-identical across runs for
    identical payloads.
    """
    return json.dumps(canonicalize(payload), indent=2,
                      sort_keys=True) + "\n"


def render_eval(payload):
    """Human-readable eval summary for the CLI."""
    lines = [
        f"learned attribution ({payload['target']}): "
        f"{payload['examples']['labeled']} labeled fingerprints, "
        f"{len(payload['classes'])} classes",
        f"  held-out accuracy {payload['accuracy']:.4f} "
        f"(nb baseline {payload['baseline_nb']['accuracy']:.4f}), "
        f"macro-F1 {payload['macro']['f1']:.4f}",
    ]
    for label in payload["classes"]:
        stats = payload["per_class"][label]
        lines.append(
            f"  {label:<16s} p={stats['precision']:.3f} "
            f"r={stats['recall']:.3f} f1={stats['f1']:.3f} "
            f"support={stats['support']}")
    cov = payload["coverage"]
    lines.append(
        f"  coverage: {cov['attributed']}/{cov['unmatched']} unmatched "
        f"attributed at confidence >= {cov['threshold']} "
        f"({cov['attribution_coverage']:.4f}, "
        f"{cov['coverage_gain']:.1f}x the exact-match rate "
        f"{payload['exact_match_rate']:.4f})")
    lines.append(f"  eval digest: {eval_digest(payload)}")
    return "\n".join(lines)
