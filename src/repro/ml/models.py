"""Pure-numpy seeded classifiers (no sklearn).

Two models, both bit-reproducible for a given design matrix:

- :class:`MultinomialNB` — the closed-form Laplace-smoothed baseline;
  no iteration, no initialization, nothing to drift.
- :class:`LogisticOVR` — one-vs-rest logistic regression trained by
  *full-batch* gradient descent from an all-zeros initialization for a
  *fixed* iteration count.  No shuffling, no early stopping, no random
  init: the trained weights are a pure function of ``(X, y,
  hyperparameters)``.

Determinism hygiene shared by both: fitted parameters are rounded to
:data:`ROUND_DECIMALS` decimals (well above float64 noise, well below
any decision margin), and predictions argmax over *rounded* scores, so
a last-ulp BLAS difference between platforms cannot flip a label.
Serialized models are plain JSON and round-trip exactly.
"""

import numpy as np

#: fitted parameters and scores are rounded to this many decimals
#: before use — the cross-platform determinism guard.
ROUND_DECIMALS = 12

#: sigmoid argument clamp (exp overflow guard; gradients saturate
#: identically on every platform).
_CLIP = 30.0


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -_CLIP, _CLIP)))


def _rounded(array):
    return np.round(np.asarray(array, dtype=np.float64), ROUND_DECIMALS)


class MultinomialNB:
    """Laplace-smoothed multinomial naive Bayes over token counts."""

    def __init__(self, alpha=1.0):
        if alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)
        self.class_log_prior = None
        self.feature_log_prob = None

    def fit(self, X, y, n_classes):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        counts = np.zeros((n_classes, X.shape[1]), dtype=np.float64)
        class_counts = np.zeros(n_classes, dtype=np.float64)
        for cls in range(n_classes):
            members = X[y == cls]
            counts[cls] = members.sum(axis=0)
            class_counts[cls] = members.shape[0]
        smoothed = counts + self.alpha
        self.feature_log_prob = _rounded(
            np.log(smoothed)
            - np.log(smoothed.sum(axis=1, keepdims=True)))
        priors = np.maximum(class_counts, 1e-12)
        self.class_log_prior = _rounded(np.log(priors)
                                        - np.log(priors.sum()))
        return self

    def scores(self, X):
        """Per-class log-joint scores, rounded."""
        X = np.asarray(X, dtype=np.float64)
        return _rounded(X @ self.feature_log_prob.T
                        + self.class_log_prior)

    def predict(self, X):
        return np.argmax(self.scores(X), axis=1)

    def proba(self, X):
        """Softmax of the log-joint scores, rounded (rows sum to ~1)."""
        scores = self.scores(X)
        scores -= scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return _rounded(exp / exp.sum(axis=1, keepdims=True))

    def to_json(self):
        return {
            "alpha": self.alpha,
            "class_log_prior": self.class_log_prior.tolist(),
            "feature_log_prob": [row.tolist()
                                 for row in self.feature_log_prob],
        }

    @classmethod
    def from_json(cls, payload):
        model = cls(alpha=payload["alpha"])
        model.class_log_prior = _rounded(payload["class_log_prior"])
        model.feature_log_prob = _rounded(payload["feature_log_prob"])
        return model


class LogisticOVR:
    """One-vs-rest logistic regression, fixed-step full-batch GD.

    Rows are L2-normalized internally (token-count magnitudes vary with
    list length), a bias column is appended, and weights start at zero
    — identical inputs always produce identical weights.
    """

    def __init__(self, iters=2000, learning_rate=30.0, l2=1e-5):
        if iters < 1:
            raise ValueError(f"iters must be >= 1, got {iters}")
        self.iters = int(iters)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.weights = None

    @staticmethod
    def _design(X):
        X = np.asarray(X, dtype=np.float64)
        norms = np.sqrt((X * X).sum(axis=1, keepdims=True))
        X = X / np.maximum(norms, 1e-12)
        return np.hstack([X, np.ones((X.shape[0], 1))])

    def fit(self, X, y, n_classes):
        Xb = self._design(X)
        y = np.asarray(y, dtype=np.int64)
        n, d = Xb.shape
        targets = np.zeros((n, n_classes), dtype=np.float64)
        targets[np.arange(n), y] = 1.0
        weights = np.zeros((n_classes, d), dtype=np.float64)
        penalty = np.ones((n_classes, d), dtype=np.float64) * self.l2
        penalty[:, -1] = 0.0  # never regularize the bias column
        for _ in range(self.iters):
            probs = _sigmoid(Xb @ weights.T)
            grad = (probs - targets).T @ Xb / n + penalty * weights
            weights -= self.learning_rate * grad
        self.weights = _rounded(weights)
        return self

    def scores(self, X):
        """Per-class sigmoid scores in [0, 1], rounded."""
        return _rounded(_sigmoid(self._design(X) @ self.weights.T))

    def predict(self, X):
        return np.argmax(self.scores(X), axis=1)

    def proba(self, X):
        """Sigmoid scores normalized per row (comparable confidences)."""
        scores = self.scores(X)
        return _rounded(scores
                        / np.maximum(scores.sum(axis=1, keepdims=True),
                                     1e-12))

    def to_json(self):
        return {
            "iters": self.iters,
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "weights": [row.tolist() for row in self.weights],
        }

    @classmethod
    def from_json(cls, payload):
        model = cls(iters=payload["iters"],
                    learning_rate=payload["learning_rate"],
                    l2=payload["l2"])
        model.weights = _rounded(payload["weights"])
        return model
