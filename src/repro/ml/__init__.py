"""Learned fingerprint attribution for the unmatched 97.45%.

The paper's central negative result is that only ~2.55% of device
ClientHello fingerprints exactly match a known TLS library (Section
4.1).  Because this reproduction *generates* its world, it knows the
ground truth the original authors could not observe: every stack
records which library it was derived from and every record its vendor.
``repro.ml`` exploits that to run the study the paper could not —
train a supervised model on labeled fingerprints and measure how far
past exact matching attribution can reach (echoing the
classifier-over-handshake-features approach of *Active TLS Stack
Fingerprinting* and the labeled-traffic methodology of *IoT
Inspector*).

Everything is deterministic end-to-end — seeded SHA-256 feature
hashing, zero-init fixed-iteration full-batch training, rounded
parameters and metrics — so eval reports are canonical-JSON artifacts
whose digest ``repro verify ml`` checks against a committed baseline,
exactly like the pipeline's golden baseline.  numpy is the only
dependency (already a CI dependency for tests); sklearn is
deliberately not used.

Import surface note: ``repro.ml`` imports numpy at module load, so the
pipeline registry, CLI, and figures all import it *lazily* — ``import
repro`` stays stdlib-only.
"""

from repro.ml.baseline import (DEFAULT_ML_BASELINE, check_ml_baseline,
                               load_ml_baseline, record_ml_baseline)
from repro.ml.data import (LabeledExample, TARGETS, labeled_examples,
                           stratified_split)
from repro.ml.features import (DEFAULT_WIDTH, FeatureExtractor,
                               feature_seed, fingerprint_tokens)
from repro.ml.models import LogisticOVR, MultinomialNB
from repro.ml.pipeline import (AttributionModel, DEFAULT_ITERS,
                               DEFAULT_TEST_FRACTION,
                               DEFAULT_THRESHOLD, MLParams,
                               canonical_report_text, eval_digest,
                               evaluate_capture, evaluate_components,
                               evaluate_model, evaluate_study,
                               render_eval, train_attribution,
                               train_study)

__all__ = [
    "AttributionModel", "DEFAULT_ITERS", "DEFAULT_ML_BASELINE",
    "DEFAULT_TEST_FRACTION", "DEFAULT_THRESHOLD", "DEFAULT_WIDTH",
    "FeatureExtractor", "LabeledExample", "LogisticOVR", "MLParams",
    "MultinomialNB", "TARGETS", "canonical_report_text",
    "check_ml_baseline", "eval_digest", "evaluate_capture",
    "evaluate_components", "evaluate_model", "evaluate_study",
    "feature_seed",
    "fingerprint_tokens", "labeled_examples", "load_ml_baseline",
    "record_ml_baseline", "render_eval", "stratified_split",
    "train_attribution", "train_study",
]
