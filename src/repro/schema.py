"""The shared schema version of every externally visible JSON payload.

Anything the package writes for an outside consumer — the anonymized
capture rows (:meth:`ClientHelloRecord.to_json`), the per-server probe
summary rows (:meth:`ProbeResult.to_json`), run manifests, sweep
reports, and the ``repro serve`` HTTP response envelopes — carries one
``schema_version`` field so consumers can detect incompatible changes
without guessing from key shapes.  There is exactly one constant for the
whole package: bumping it declares that *some* external payload changed
shape, and the version-fenced artifact store plus the golden baselines
catch any accidental drift within a version.
"""

#: Version of every externally visible JSON payload schema.  Bump when
#: any ``to_json`` row, manifest, report, or HTTP envelope changes shape
#: incompatibly.
SCHEMA_VERSION = 1

#: The key carrying :data:`SCHEMA_VERSION` in every payload.
SCHEMA_KEY = "schema_version"


def versioned(payload):
    """Stamp ``payload`` (a dict) with the package schema version."""
    payload[SCHEMA_KEY] = SCHEMA_VERSION
    return payload


def strip_version(payload):
    """A copy of ``payload`` without the schema-version stamp.

    ``from_json`` constructors use this so round-tripping a stamped row
    through a dataclass constructor never trips over the extra key.
    """
    return {key: value for key, value in payload.items()
            if key != SCHEMA_KEY}
