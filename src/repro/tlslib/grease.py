"""GREASE (RFC 8701) reserved values.

GREASE reserves a set of ciphersuite and extension code points of the form
``0xRaRa`` (where ``R`` is a nibble ``0..F`` and ``a`` is ``0xA``) that
clients may advertise to keep peers honest about ignoring unknown values.
The paper analyses GREASE usage in Appendix B.10: 501 devices GREASE their
ciphersuite lists and 503 GREASE their extensions.
"""

#: The sixteen reserved GREASE code points, shared by the ciphersuite and
#: extension registries.
GREASE_VALUES = frozenset(0x0A0A + 0x1010 * i for i in range(16))


def is_grease(code):
    """Return True when ``code`` is one of the sixteen GREASE code points."""
    return code in GREASE_VALUES


def strip_grease(codes):
    """Return ``codes`` with GREASE values removed, preserving order."""
    return [code for code in codes if code not in GREASE_VALUES]


def contains_grease(codes):
    """Return True when any value in ``codes`` is a GREASE code point."""
    return any(code in GREASE_VALUES for code in codes)
