"""Minimal TLS record layer (RFC 5246 section 6.2.1).

Handshake messages travel inside records of content type 22.  The simulated
Internet frames every handshake flight this way, so that parsing mirrors a
real capture: ``record bytes -> handshake bytes -> message model``.
"""

import enum
import struct

from repro.tlslib.errors import TLSParseError
from repro.tlslib.versions import TLSVersion

#: Maximum plaintext fragment length allowed by the RFC.
MAX_FRAGMENT_LENGTH = 2 ** 14


class ContentType(enum.IntEnum):
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class Record:
    """A single TLS record: content type, legacy version, payload."""

    __slots__ = ("content_type", "version", "payload")

    def __init__(self, content_type, version, payload):
        if len(payload) > MAX_FRAGMENT_LENGTH:
            raise ValueError("record payload exceeds maximum fragment length")
        self.content_type = ContentType(content_type)
        self.version = TLSVersion(version)
        self.payload = bytes(payload)

    def to_bytes(self):
        header = struct.pack(">BHH", self.content_type, int(self.version),
                             len(self.payload))
        return header + self.payload

    def __eq__(self, other):
        if not isinstance(other, Record):
            return NotImplemented
        return (self.content_type == other.content_type
                and self.version == other.version
                and self.payload == other.payload)

    def __repr__(self):
        return (f"Record(type={self.content_type.name}, "
                f"version={self.version.pretty}, len={len(self.payload)})")


def encode_records(content_type, version, payload):
    """Fragment ``payload`` into records and return the full wire bytes."""
    out = bytearray()
    for offset in range(0, len(payload) or 1, MAX_FRAGMENT_LENGTH):
        fragment = payload[offset:offset + MAX_FRAGMENT_LENGTH]
        out += Record(content_type, version, fragment).to_bytes()
    return bytes(out)


def decode_records(data):
    """Parse concatenated records, returning a list of :class:`Record`."""
    records, offset = [], 0
    while offset < len(data):
        if len(data) - offset < 5:
            raise TLSParseError("truncated record header")
        content_type, version, length = struct.unpack_from(">BHH", data, offset)
        offset += 5
        if len(data) - offset < length:
            raise TLSParseError("truncated record payload")
        try:
            records.append(Record(content_type, version, data[offset:offset + length]))
        except ValueError as exc:
            raise TLSParseError(str(exc)) from exc
        offset += length
    return records


def reassemble_handshake(records):
    """Concatenate the payloads of handshake records, in order."""
    chunks = [r.payload for r in records if r.content_type == ContentType.HANDSHAKE]
    return b"".join(chunks)


def iter_handshake_messages(data):
    """Yield ``(msg_type, body_bytes, full_message_bytes)`` from a handshake stream."""
    offset = 0
    while offset < len(data):
        if len(data) - offset < 4:
            raise TLSParseError("truncated handshake header")
        msg_type = data[offset]
        length = int.from_bytes(data[offset + 1:offset + 4], "big")
        end = offset + 4 + length
        if end > len(data):
            raise TLSParseError("truncated handshake body")
        yield msg_type, data[offset + 4:end], data[offset:end]
        offset = end
