"""JA3-style TLS client fingerprint hashing.

The paper fingerprints clients with the raw 3-tuple
``{ciphersuites, extensions, TLS version}`` because IoT Inspector does
not keep full ClientHello payloads.  The wider ecosystem standardizes on
JA3: an MD5 over ``version,ciphers,extensions,curves,point-formats``
with GREASE stripped.  This module implements both:

- :func:`ja3_string` / :func:`ja3_hash` — the canonical JA3 computed from
  a parsed :class:`~repro.tlslib.clienthello.ClientHello` (curves and
  point formats are empty when only extension *types* are known, exactly
  how JA3 degrades on truncated captures);
- :func:`ja3_from_record` — the reduced JA3 of an IoT Inspector-style
  record;
- :func:`compare_corpora` — utility showing how many of the study's
  3-tuple fingerprints collide once reduced to JA3 (an ablation the
  benchmarks report).

JA3 deliberately hashes *sorted-less* (order-preserving) lists, so it
distinguishes reordered preference lists just like the paper's tuples.
"""

import hashlib

from repro.tlslib.grease import strip_grease


def _dash_join(values):
    return "-".join(str(value) for value in values)


def ja3_string(version, ciphersuites, extensions, curves=(),
               point_formats=()):
    """The canonical JA3 input string (GREASE values stripped)."""
    return ",".join([
        str(int(version)),
        _dash_join(strip_grease(ciphersuites)),
        _dash_join(strip_grease(extensions)),
        _dash_join(curves),
        _dash_join(point_formats),
    ])


def ja3_hash(version, ciphersuites, extensions, curves=(),
             point_formats=()):
    """MD5 hex digest of the JA3 string."""
    text = ja3_string(version, ciphersuites, extensions, curves,
                      point_formats)
    return hashlib.md5(text.encode("ascii")).hexdigest()


def ja3_from_hello(hello):
    """JA3 of a parsed ClientHello (no curve bodies → empty fields)."""
    return ja3_hash(hello.version, hello.ciphersuites, hello.extensions)


def ja3_from_record(record):
    """JA3 of an IoT Inspector-style ClientHello record."""
    return ja3_hash(record.tls_version, record.ciphersuites,
                    record.extensions)


def dataset_ja3_index(dataset):
    """JA3 hash → set of 3-tuple fingerprints that reduce to it.

    Because JA3 strips GREASE, distinct 3-tuple fingerprints that differ
    only in GREASE values collapse onto one JA3 — quantifying how much
    randomized GREASE inflates the raw fingerprint count.
    """
    index = {}
    for fp in dataset.fingerprints():
        version, suites, extensions = fp
        digest = ja3_hash(version, suites, extensions)
        index.setdefault(digest, set()).add(fp)
    return index


def compare_corpora(dataset):
    """Summary of the 3-tuple → JA3 reduction over a dataset."""
    index = dataset_ja3_index(dataset)
    collapsed = sum(1 for fps in index.values() if len(fps) > 1)
    return {
        "tuple_fingerprints": dataset.fingerprint_count,
        "ja3_fingerprints": len(index),
        "ja3_with_multiple_tuples": collapsed,
        "reduction": 1 - len(index) / max(1, dataset.fingerprint_count),
    }
