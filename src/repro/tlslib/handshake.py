"""Client and server handshake state machines.

These drive the simulated Internet in :mod:`repro.probing`: the client
encodes a real ClientHello into records, the server parses it, negotiates a
version and ciphersuite, and answers with ServerHello + Certificate records
carrying DER certificate blobs.  Failures surface as
:class:`~repro.tlslib.errors.TLSHandshakeError` with TLS-alert-style
descriptions, which the prober records the way a scanner records refused
handshakes.
"""

from dataclasses import dataclass, field

from repro.tlslib.ciphersuites import suite_by_code
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.errors import TLSHandshakeError, TLSParseError
from repro.tlslib.grease import is_grease
from repro.tlslib.record import (
    ContentType,
    decode_records,
    encode_records,
    iter_handshake_messages,
    reassemble_handshake,
)
from repro.tlslib.serverhello import CertificateMessage, ServerHello
from repro.tlslib.versions import TLSVersion


@dataclass
class ServerConfig:
    """Configuration of a simulated TLS endpoint.

    Attributes:
        supported_versions: versions the server accepts.
        supported_suites: suite codes the server can negotiate.
        chain_provider: callable ``sni -> list[bytes]`` returning the DER
            chain (leaf first) to present for a given SNI; servers with a
            single certificate may ignore the argument.
        prefer_client_order: when True (the common default the paper's
            Appendix B.7 leans on) the server picks the first *client*
            suite it supports; otherwise the first *server* suite the
            client offers.
        staple_provider: optional callable ``sni -> bytes or None``
            returning a serialized OCSP response to staple when the
            client's ClientHello carries ``status_request`` (RFC 6066;
            Appendix B.9's server side).
    """

    supported_versions: frozenset
    supported_suites: tuple
    chain_provider: object
    prefer_client_order: bool = True
    staple_provider: object = None

    def negotiate_version(self, client_version):
        """Pick the highest mutually supported version ≤ the client's offer."""
        candidates = [v for v in self.supported_versions if v <= client_version]
        if not candidates:
            raise TLSHandshakeError(
                f"no common protocol version for client offer "
                f"{TLSVersion(client_version).pretty}",
                alert="protocol_version",
            )
        return max(candidates)

    def negotiate_suite(self, client_suites):
        """Pick a mutually supported, non-signaling ciphersuite."""
        usable = [
            code for code in client_suites
            if not is_grease(code) and not suite_by_code(code).is_signaling
        ]
        supported = set(self.supported_suites)
        if self.prefer_client_order:
            for code in usable:
                if code in supported:
                    return code
        else:
            offered = set(usable)
            for code in self.supported_suites:
                if code in offered:
                    return code
        raise TLSHandshakeError("no common ciphersuite", alert="handshake_failure")


#: Handshake message type of CertificateStatus (RFC 6066).
_HANDSHAKE_CERTIFICATE_STATUS = 0x16


@dataclass
class HandshakeResult:
    """Outcome of a successful client handshake."""

    client_hello: ClientHello
    server_hello: ServerHello
    chain_der: list = field(default_factory=list)
    ocsp_staple: bytes = None

    @property
    def negotiated_version(self):
        return self.server_hello.version

    @property
    def negotiated_suite(self):
        return suite_by_code(self.server_hello.ciphersuite)


class TLSServer:
    """Parses ClientHello records and produces the server's first flight."""

    def __init__(self, config):
        self.config = config

    def handle(self, wire_bytes):
        """Process a client flight; return ServerHello+Certificate records.

        Raises :class:`TLSHandshakeError` on negotiation failure and
        :class:`TLSParseError` on malformed input.
        """
        records = decode_records(wire_bytes)
        handshake = reassemble_handshake(records)
        hello = None
        for msg_type, _body, full in iter_handshake_messages(handshake):
            if msg_type == 0x01:
                hello = ClientHello.from_bytes(full)
                break
        if hello is None:
            raise TLSParseError("client flight contains no ClientHello")
        version = self.config.negotiate_version(hello.version)
        suite = self.config.negotiate_suite(hello.ciphersuites)
        chain = list(self.config.chain_provider(hello.sni))
        server_hello = ServerHello(version=version, ciphersuite=suite)
        payload = server_hello.to_bytes() + CertificateMessage(chain).to_bytes()
        from repro.tlslib.extensions import ExtensionType
        if (self.config.staple_provider is not None
                and int(ExtensionType.STATUS_REQUEST) in hello.extensions):
            staple = self.config.staple_provider(hello.sni)
            if staple:
                payload += bytes([_HANDSHAKE_CERTIFICATE_STATUS]) \
                    + len(staple).to_bytes(3, "big") + staple
        return encode_records(ContentType.HANDSHAKE, version, payload)


class TLSClient:
    """Builds client flights and interprets server flights."""

    def first_flight(self, client_hello):
        """Encode ``client_hello`` into record-layer bytes."""
        # The record-layer version of an initial flight is pinned to TLS 1.0
        # by many stacks for middlebox tolerance; SSL 3.0 clients use 3.0.
        record_version = min(client_hello.version, TLSVersion.TLS_1_0)
        return encode_records(ContentType.HANDSHAKE, record_version,
                              client_hello.to_bytes())

    def handshake(self, client_hello, server):
        """Run a full first round-trip against ``server``.

        Returns a :class:`HandshakeResult`; negotiation failures propagate
        as :class:`TLSHandshakeError`.
        """
        response = server.handle(self.first_flight(client_hello))
        return self.read_server_flight(client_hello, response)

    def read_server_flight(self, client_hello, wire_bytes):
        """Parse a ServerHello(+Certificate) flight into a result.

        A fatal alert record raises :class:`TLSHandshakeError` carrying
        the alert description, mirroring what a real client library
        reports.
        """
        from repro.tlslib.alerts import extract_alert
        records = decode_records(wire_bytes)
        alert = extract_alert(records)
        if alert is not None:
            raise TLSHandshakeError(
                f"server sent alert: {alert.description.snake_name}",
                alert=alert.description.snake_name)
        handshake = reassemble_handshake(records)
        server_hello, chain, staple = None, [], None
        for msg_type, body, full in iter_handshake_messages(handshake):
            if msg_type == 0x02:
                server_hello = ServerHello.from_bytes(full)
            elif msg_type == 0x0B:
                chain = CertificateMessage.from_bytes(full).chain_der
            elif msg_type == _HANDSHAKE_CERTIFICATE_STATUS:
                staple = body
        if server_hello is None:
            raise TLSHandshakeError("server flight missing ServerHello")
        if server_hello.ciphersuite not in client_hello.ciphersuites:
            raise TLSHandshakeError(
                "server selected a suite the client did not offer",
                alert="illegal_parameter",
            )
        return HandshakeResult(client_hello=client_hello,
                               server_hello=server_hello, chain_der=chain,
                               ocsp_staple=staple)
