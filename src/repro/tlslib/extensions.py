"""TLS extension-type registry.

IoT Inspector records only the extension *types* present in a ClientHello
(not their bodies), so the fingerprint uses the ordered list of extension
type codes.  The paper's Appendix B.3.3/B.9/B.10 analyses specific
extensions: ``server_name`` (SNI), ``status_request`` (OCSP),
``session_ticket``, ``renegotiation_info``, ``padding``, ALPN/NPN, and
GREASE.
"""

import enum

from repro.tlslib.grease import is_grease


class ExtensionType(enum.IntEnum):
    """IANA TLS extension type codes used by the modelled libraries."""

    SERVER_NAME = 0
    MAX_FRAGMENT_LENGTH = 1
    STATUS_REQUEST = 5
    SUPPORTED_GROUPS = 10          # formerly elliptic_curves
    EC_POINT_FORMATS = 11
    SIGNATURE_ALGORITHMS = 13
    USE_SRTP = 14
    HEARTBEAT = 15
    APPLICATION_LAYER_PROTOCOL_NEGOTIATION = 16
    SIGNED_CERTIFICATE_TIMESTAMP = 18
    PADDING = 21
    ENCRYPT_THEN_MAC = 22
    EXTENDED_MASTER_SECRET = 23
    SESSION_TICKET = 35
    PRE_SHARED_KEY = 41
    EARLY_DATA = 42
    SUPPORTED_VERSIONS = 43
    COOKIE = 44
    PSK_KEY_EXCHANGE_MODES = 45
    KEY_SHARE = 51
    NEXT_PROTOCOL_NEGOTIATION = 13172
    RENEGOTIATION_INFO = 65281


#: code → canonical lowercase name, as printed by the analysis tables.
EXTENSION_REGISTRY = {ext.value: ext.name.lower() for ext in ExtensionType}

#: Extensions the paper calls "application-specific" (Appendix B.3.3).
APPLICATION_SPECIFIC_EXTENSIONS = frozenset({
    ExtensionType.APPLICATION_LAYER_PROTOCOL_NEGOTIATION.value,
    ExtensionType.NEXT_PROTOCOL_NEGOTIATION.value,
})


def extension_name(code):
    """Return the canonical name for an extension code.

    GREASE and unknown code points get synthetic names so that analyses and
    rendered tables never fail on values outside the registry.
    """
    name = EXTENSION_REGISTRY.get(code)
    if name is not None:
        return name
    if is_grease(code):
        return f"grease_{code:04x}"
    return f"unknown_{code:04x}"
