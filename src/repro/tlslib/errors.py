"""Exception hierarchy for the TLS substrate."""


class TLSError(Exception):
    """Base class for all TLS substrate errors."""


class TLSParseError(TLSError):
    """Raised when wire bytes cannot be parsed into a TLS structure."""


class TLSHandshakeError(TLSError):
    """Raised when a handshake cannot be completed.

    Carries an ``alert`` description string mirroring TLS alert semantics
    (e.g. ``"handshake_failure"``, ``"protocol_version"``).
    """

    def __init__(self, message, alert="handshake_failure"):
        super().__init__(message)
        self.alert = alert
