"""ServerHello and Certificate handshake messages.

The probing substrate needs the server's side of the handshake: the chosen
version and ciphersuite, and the certificate chain delivered as a list of
DER blobs (RFC 5246 section 7.4.2 framing).
"""

import os
import struct
from dataclasses import dataclass, field

from repro.tlslib.errors import TLSParseError
from repro.tlslib.versions import TLSVersion

_HANDSHAKE_SERVER_HELLO = 0x02
_HANDSHAKE_CERTIFICATE = 0x0B


def _encode_vector(payload, length_bytes):
    return len(payload).to_bytes(length_bytes, "big") + payload


@dataclass
class ServerHello:
    """A TLS ServerHello: negotiated version, chosen suite, server random."""

    version: TLSVersion
    ciphersuite: int
    random: bytes = None
    session_id: bytes = b""

    def __post_init__(self):
        if self.random is None:
            self.random = os.urandom(32)
        if len(self.random) != 32:
            raise ValueError("server random must be exactly 32 bytes")

    def to_bytes(self):
        body = struct.pack(">H", int(self.version))
        body += self.random
        body += _encode_vector(self.session_id, 1)
        body += struct.pack(">H", self.ciphersuite)
        body += b"\x00"  # null compression
        return bytes([_HANDSHAKE_SERVER_HELLO]) + len(body).to_bytes(3, "big") + body

    @classmethod
    def from_bytes(cls, data):
        if not data or data[0] != _HANDSHAKE_SERVER_HELLO:
            raise TLSParseError("not a ServerHello handshake message")
        length = int.from_bytes(data[1:4], "big")
        body = data[4:4 + length]
        if len(body) < length:
            raise TLSParseError("truncated ServerHello body")
        offset = 0
        try:
            version = TLSVersion(int.from_bytes(body[offset:offset + 2], "big"))
        except ValueError as exc:
            raise TLSParseError(f"unknown server version: {exc}") from exc
        offset += 2
        random = body[offset:offset + 32]
        if len(random) != 32:
            raise TLSParseError("truncated server random")
        offset += 32
        sid_len = body[offset]
        offset += 1
        session_id = body[offset:offset + sid_len]
        offset += sid_len
        if len(body) < offset + 2:
            raise TLSParseError("truncated ciphersuite")
        suite = int.from_bytes(body[offset:offset + 2], "big")
        return cls(version=version, ciphersuite=suite, random=random,
                   session_id=session_id)


@dataclass
class CertificateMessage:
    """A TLS Certificate message carrying the server chain, leaf first."""

    chain_der: list = field(default_factory=list)

    def to_bytes(self):
        entries = b"".join(_encode_vector(der, 3) for der in self.chain_der)
        body = _encode_vector(entries, 3)
        return bytes([_HANDSHAKE_CERTIFICATE]) + len(body).to_bytes(3, "big") + body

    @classmethod
    def from_bytes(cls, data):
        if not data or data[0] != _HANDSHAKE_CERTIFICATE:
            raise TLSParseError("not a Certificate handshake message")
        length = int.from_bytes(data[1:4], "big")
        body = data[4:4 + length]
        if len(body) < length or length < 3:
            raise TLSParseError("truncated Certificate body")
        total = int.from_bytes(body[0:3], "big")
        blob = body[3:3 + total]
        if len(blob) < total:
            raise TLSParseError("truncated certificate list")
        chain, offset = [], 0
        while offset < len(blob):
            if len(blob) - offset < 3:
                raise TLSParseError("truncated certificate entry header")
            entry_len = int.from_bytes(blob[offset:offset + 3], "big")
            offset += 3
            if len(blob) - offset < entry_len:
                raise TLSParseError("truncated certificate entry")
            chain.append(blob[offset:offset + entry_len])
            offset += entry_len
        return cls(chain_der=chain)
