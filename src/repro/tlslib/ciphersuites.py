"""IANA ciphersuite registry with algorithm decomposition and security levels.

The paper decomposes each ciphersuite into three components (Appendix B.8):
the key-exchange-and-authentication algorithm, the cipher algorithm, and the
MAC algorithm, and classifies every suite into one of three security levels
(Section 4.2):

- *Optimal*: equivalent to a modern web browser — forward-secret key
  exchange with an AEAD cipher (Chromium's ``IsSecureTLSCipherSuite``).
- *Suboptimal*: non-ideal (e.g. non-PFS key exchange, CBC modes) but not
  vulnerable to known attacks.
- *Vulnerable*: anonymous key exchange, export-grade suites, NULL
  encryption, RC2/RC4, and DES/3DES.  Following the paper, MD5 or SHA-1 as
  a ciphersuite MAC is *not* treated as vulnerable.

We parse the components out of the IANA names rather than hand-labelling
each suite, so every registered suite is decomposed consistently.
"""

import enum
from dataclasses import dataclass

from repro.tlslib.grease import is_grease

#: Hash tokens that may terminate an IANA suite name.
_HASH_TOKENS = ("MD5", "SHA", "SHA256", "SHA384", "SHA512")

#: Cipher substrings that imply an AEAD construction.
_AEAD_MARKERS = ("GCM", "CCM", "POLY1305")


class SecurityLevel(enum.IntEnum):
    """Security level of a ciphersuite, ordered from best to worst."""

    OPTIMAL = 0
    SUBOPTIMAL = 1
    VULNERABLE = 2

    @property
    def pretty(self):
        return self.name.capitalize()


@dataclass(frozen=True)
class CipherSuite:
    """A single IANA-registered ciphersuite.

    Attributes:
        code: two-byte wire value.
        name: IANA name (e.g. ``TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256``).
        kx: key exchange + authentication component (``ECDHE_RSA``,
            ``RSA``, ``DH_ANON``, ``KRB5_EXPORT``, ``TLS13``, ...).
        cipher: cipher component (``AES_128_GCM``, ``3DES_EDE_CBC``, ...).
        mac: MAC component (``SHA256``, ``MD5``, or ``AEAD``).
        prf_hash: trailing hash of AEAD suites (PRF hash) when present.
        is_signaling: True for SCSV pseudo-suites that carry no algorithms.
    """

    code: int
    name: str
    kx: str = None
    cipher: str = None
    mac: str = None
    prf_hash: str = None
    is_signaling: bool = False

    # --- derived algorithm properties -------------------------------------

    @property
    def is_aead(self):
        return self.mac == "AEAD"

    @property
    def is_pfs(self):
        """Forward-secret key exchange (ephemeral DH/ECDH, or TLS 1.3)."""
        if self.kx is None:
            return False
        return self.kx.startswith(("DHE", "ECDHE")) or self.kx == "TLS13"

    @property
    def is_anon(self):
        return self.kx is not None and "ANON" in self.kx

    @property
    def is_export(self):
        return "EXPORT" in self.name or (
            self.cipher is not None and ("_40" in self.cipher or "40_" in self.cipher)
        )

    @property
    def is_null_cipher(self):
        return self.cipher is not None and self.cipher.startswith("NULL")

    # --- security classification -------------------------------------------

    def vulnerable_components(self):
        """Return sorted vulnerability tags present in this suite.

        Tags follow the paper's taxonomy: ``ANON``, ``EXPORT``, ``NULL``,
        ``RC2``, ``RC4``, ``DES``, ``3DES``.  Signaling suites and GREASE
        values carry no algorithms and therefore no vulnerabilities.
        """
        if self.is_signaling or self.cipher is None:
            return []
        tags = set()
        if self.is_anon:
            tags.add("ANON")
        if self.is_export:
            tags.add("EXPORT")
        if self.is_null_cipher:
            tags.add("NULL")
        if self.cipher.startswith("RC2"):
            tags.add("RC2")
        if self.cipher.startswith("RC4"):
            tags.add("RC4")
        if self.cipher.startswith("3DES"):
            tags.add("3DES")
        elif self.cipher.startswith(("DES", "DES40")):
            tags.add("DES")
        return sorted(tags)

    @property
    def security_level(self):
        """The paper's three-way security level for this suite."""
        if self.vulnerable_components():
            return SecurityLevel.VULNERABLE
        if self.is_pfs and self.is_aead:
            return SecurityLevel.OPTIMAL
        return SecurityLevel.SUBOPTIMAL

    def components(self):
        """Return the ``(kx, cipher, mac)`` triple used in Appendix B.8."""
        return (self.kx, self.cipher, self.mac)

    def __str__(self):
        return self.name


def _parse_name(name):
    """Derive ``(kx, cipher, mac, prf_hash)`` from an IANA suite name."""
    if not name.startswith("TLS_"):
        raise ValueError(f"not an IANA suite name: {name!r}")
    body = name[len("TLS_"):]
    if "_WITH_" in body:
        kx, rest = body.split("_WITH_", 1)
    else:
        # TLS 1.3 suites name only the AEAD + PRF hash; key exchange is
        # negotiated via extensions.
        kx, rest = "TLS13", body
    kx = kx.replace("anon", "ANON")
    tokens = rest.split("_")
    if tokens[-1] in _HASH_TOKENS:
        hash_token = tokens[-1]
        cipher = "_".join(tokens[:-1])
    else:
        hash_token = None
        cipher = rest
    if any(marker in cipher for marker in _AEAD_MARKERS):
        mac, prf_hash = "AEAD", hash_token
    else:
        mac, prf_hash = hash_token, None
    return kx, cipher, mac, prf_hash


def _suite(code, name):
    kx, cipher, mac, prf_hash = _parse_name(name)
    return CipherSuite(code=code, name=name, kx=kx, cipher=cipher, mac=mac,
                       prf_hash=prf_hash)


def _scsv(code, name):
    return CipherSuite(code=code, name=name, is_signaling=True)


#: Wire-code → name table for the registry.  Covers the suite populations of
#: OpenSSL 0.9.8–1.1.1, wolfSSL, and Mbed TLS/PolarSSL across the versions
#: modelled in :mod:`repro.libraries`.
_IANA_NAMES = {
    0x0000: "TLS_NULL_WITH_NULL_NULL",
    0x0001: "TLS_RSA_WITH_NULL_MD5",
    0x0002: "TLS_RSA_WITH_NULL_SHA",
    0x0003: "TLS_RSA_EXPORT_WITH_RC4_40_MD5",
    0x0004: "TLS_RSA_WITH_RC4_128_MD5",
    0x0005: "TLS_RSA_WITH_RC4_128_SHA",
    0x0006: "TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5",
    0x0007: "TLS_RSA_WITH_IDEA_CBC_SHA",
    0x0008: "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA",
    0x0009: "TLS_RSA_WITH_DES_CBC_SHA",
    0x000A: "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    0x000B: "TLS_DH_DSS_EXPORT_WITH_DES40_CBC_SHA",
    0x000C: "TLS_DH_DSS_WITH_DES_CBC_SHA",
    0x000D: "TLS_DH_DSS_WITH_3DES_EDE_CBC_SHA",
    0x000E: "TLS_DH_RSA_EXPORT_WITH_DES40_CBC_SHA",
    0x000F: "TLS_DH_RSA_WITH_DES_CBC_SHA",
    0x0010: "TLS_DH_RSA_WITH_3DES_EDE_CBC_SHA",
    0x0011: "TLS_DHE_DSS_EXPORT_WITH_DES40_CBC_SHA",
    0x0012: "TLS_DHE_DSS_WITH_DES_CBC_SHA",
    0x0013: "TLS_DHE_DSS_WITH_3DES_EDE_CBC_SHA",
    0x0014: "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA",
    0x0015: "TLS_DHE_RSA_WITH_DES_CBC_SHA",
    0x0016: "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA",
    0x0017: "TLS_DH_anon_EXPORT_WITH_RC4_40_MD5",
    0x0018: "TLS_DH_anon_WITH_RC4_128_MD5",
    0x0019: "TLS_DH_anon_EXPORT_WITH_DES40_CBC_SHA",
    0x001A: "TLS_DH_anon_WITH_DES_CBC_SHA",
    0x001B: "TLS_DH_anon_WITH_3DES_EDE_CBC_SHA",
    0x001E: "TLS_KRB5_WITH_DES_CBC_SHA",
    0x001F: "TLS_KRB5_WITH_3DES_EDE_CBC_SHA",
    0x0020: "TLS_KRB5_WITH_RC4_128_SHA",
    0x0022: "TLS_KRB5_WITH_DES_CBC_MD5",
    0x0023: "TLS_KRB5_WITH_3DES_EDE_CBC_MD5",
    0x0024: "TLS_KRB5_WITH_RC4_128_MD5",
    0x0026: "TLS_KRB5_EXPORT_WITH_DES_CBC_40_SHA",
    0x0028: "TLS_KRB5_EXPORT_WITH_RC4_40_SHA",
    0x0029: "TLS_KRB5_EXPORT_WITH_DES_CBC_40_MD5",
    0x002B: "TLS_KRB5_EXPORT_WITH_RC4_40_MD5",
    0x002F: "TLS_RSA_WITH_AES_128_CBC_SHA",
    0x0030: "TLS_DH_DSS_WITH_AES_128_CBC_SHA",
    0x0031: "TLS_DH_RSA_WITH_AES_128_CBC_SHA",
    0x0032: "TLS_DHE_DSS_WITH_AES_128_CBC_SHA",
    0x0033: "TLS_DHE_RSA_WITH_AES_128_CBC_SHA",
    0x0034: "TLS_DH_anon_WITH_AES_128_CBC_SHA",
    0x0035: "TLS_RSA_WITH_AES_256_CBC_SHA",
    0x0036: "TLS_DH_DSS_WITH_AES_256_CBC_SHA",
    0x0037: "TLS_DH_RSA_WITH_AES_256_CBC_SHA",
    0x0038: "TLS_DHE_DSS_WITH_AES_256_CBC_SHA",
    0x0039: "TLS_DHE_RSA_WITH_AES_256_CBC_SHA",
    0x003A: "TLS_DH_anon_WITH_AES_256_CBC_SHA",
    0x003B: "TLS_RSA_WITH_NULL_SHA256",
    0x003C: "TLS_RSA_WITH_AES_128_CBC_SHA256",
    0x003D: "TLS_RSA_WITH_AES_256_CBC_SHA256",
    0x0040: "TLS_DHE_DSS_WITH_AES_128_CBC_SHA256",
    0x0041: "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA",
    0x0044: "TLS_DHE_DSS_WITH_CAMELLIA_128_CBC_SHA",
    0x0045: "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA",
    0x0067: "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256",
    0x006A: "TLS_DHE_DSS_WITH_AES_256_CBC_SHA256",
    0x006B: "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256",
    0x006C: "TLS_DH_anon_WITH_AES_128_CBC_SHA256",
    0x006D: "TLS_DH_anon_WITH_AES_256_CBC_SHA256",
    0x0084: "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA",
    0x0087: "TLS_DHE_DSS_WITH_CAMELLIA_256_CBC_SHA",
    0x0088: "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA",
    0x008C: "TLS_PSK_WITH_AES_128_CBC_SHA",
    0x008D: "TLS_PSK_WITH_AES_256_CBC_SHA",
    0x0096: "TLS_RSA_WITH_SEED_CBC_SHA",
    0x0099: "TLS_DHE_DSS_WITH_SEED_CBC_SHA",
    0x009A: "TLS_DHE_RSA_WITH_SEED_CBC_SHA",
    0x009C: "TLS_RSA_WITH_AES_128_GCM_SHA256",
    0x009D: "TLS_RSA_WITH_AES_256_GCM_SHA384",
    0x009E: "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256",
    0x009F: "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384",
    0x00A2: "TLS_DHE_DSS_WITH_AES_128_GCM_SHA256",
    0x00A3: "TLS_DHE_DSS_WITH_AES_256_GCM_SHA384",
    0x00A6: "TLS_DH_anon_WITH_AES_128_GCM_SHA256",
    0x00A7: "TLS_DH_anon_WITH_AES_256_GCM_SHA384",
    0x00A8: "TLS_PSK_WITH_AES_128_GCM_SHA256",
    0x00A9: "TLS_PSK_WITH_AES_256_GCM_SHA384",
    0x00AE: "TLS_PSK_WITH_AES_128_CBC_SHA256",
    0x00AF: "TLS_PSK_WITH_AES_256_CBC_SHA384",
    0x1301: "TLS_AES_128_GCM_SHA256",
    0x1302: "TLS_AES_256_GCM_SHA384",
    0x1303: "TLS_CHACHA20_POLY1305_SHA256",
    0x1304: "TLS_AES_128_CCM_SHA256",
    0x1305: "TLS_AES_128_CCM_8_SHA256",
    0xC002: "TLS_ECDH_ECDSA_WITH_RC4_128_SHA",
    0xC003: "TLS_ECDH_ECDSA_WITH_3DES_EDE_CBC_SHA",
    0xC004: "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA",
    0xC005: "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA",
    0xC007: "TLS_ECDHE_ECDSA_WITH_RC4_128_SHA",
    0xC008: "TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA",
    0xC009: "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA",
    0xC00A: "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA",
    0xC00C: "TLS_ECDH_RSA_WITH_RC4_128_SHA",
    0xC00D: "TLS_ECDH_RSA_WITH_3DES_EDE_CBC_SHA",
    0xC00E: "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA",
    0xC00F: "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA",
    0xC011: "TLS_ECDHE_RSA_WITH_RC4_128_SHA",
    0xC012: "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA",
    0xC013: "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    0xC014: "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    0xC016: "TLS_ECDH_anon_WITH_RC4_128_SHA",
    0xC017: "TLS_ECDH_anon_WITH_3DES_EDE_CBC_SHA",
    0xC018: "TLS_ECDH_anon_WITH_AES_128_CBC_SHA",
    0xC019: "TLS_ECDH_anon_WITH_AES_256_CBC_SHA",
    0xC023: "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256",
    0xC024: "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384",
    0xC025: "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA256",
    0xC026: "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA384",
    0xC027: "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256",
    0xC028: "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384",
    0xC029: "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA256",
    0xC02A: "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA384",
    0xC02B: "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
    0xC02C: "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    0xC02D: "TLS_ECDH_ECDSA_WITH_AES_128_GCM_SHA256",
    0xC02E: "TLS_ECDH_ECDSA_WITH_AES_256_GCM_SHA384",
    0xC02F: "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    0xC030: "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    0xC031: "TLS_ECDH_RSA_WITH_AES_128_GCM_SHA256",
    0xC032: "TLS_ECDH_RSA_WITH_AES_256_GCM_SHA384",
    0xC035: "TLS_ECDHE_PSK_WITH_AES_128_CBC_SHA",
    0xC036: "TLS_ECDHE_PSK_WITH_AES_256_CBC_SHA",
    0xC076: "TLS_ECDHE_RSA_WITH_CAMELLIA_128_CBC_SHA256",
    0xC077: "TLS_ECDHE_RSA_WITH_CAMELLIA_256_CBC_SHA384",
    0xC09C: "TLS_RSA_WITH_AES_128_CCM",
    0xC09D: "TLS_RSA_WITH_AES_256_CCM",
    0xC09E: "TLS_DHE_RSA_WITH_AES_128_CCM",
    0xC09F: "TLS_DHE_RSA_WITH_AES_256_CCM",
    0xC0A0: "TLS_RSA_WITH_AES_128_CCM_8",
    0xC0A1: "TLS_RSA_WITH_AES_256_CCM_8",
    0xC0A2: "TLS_DHE_RSA_WITH_AES_128_CCM_8",
    0xC0A3: "TLS_DHE_RSA_WITH_AES_256_CCM_8",
    0xC0AC: "TLS_ECDHE_ECDSA_WITH_AES_128_CCM",
    0xC0AD: "TLS_ECDHE_ECDSA_WITH_AES_256_CCM",
    0xC0AE: "TLS_ECDHE_ECDSA_WITH_AES_128_CCM_8",
    0xC0AF: "TLS_ECDHE_ECDSA_WITH_AES_256_CCM_8",
    0xCCA8: "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    0xCCA9: "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256",
    0xCCAA: "TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
}

#: Signaling (SCSV) pseudo-suites; analysed in Appendix B.3.1 and B.8.
EMPTY_RENEGOTIATION_INFO_SCSV = 0x00FF
FALLBACK_SCSV = 0x5600

_SCSV_NAMES = {
    EMPTY_RENEGOTIATION_INFO_SCSV: "TLS_EMPTY_RENEGOTIATION_INFO_SCSV",
    FALLBACK_SCSV: "TLS_FALLBACK_SCSV",
}

#: Full registry: code → :class:`CipherSuite`.
REGISTRY = {code: _suite(code, name) for code, name in _IANA_NAMES.items()}
REGISTRY.update({code: _scsv(code, name) for code, name in _SCSV_NAMES.items()})

_BY_NAME = {suite.name: suite for suite in REGISTRY.values()}


def suite_by_code(code):
    """Look up a suite by wire code.

    GREASE values and unknown code points return an anonymous placeholder
    suite (unknown suites occur in the wild; the analysis must not choke on
    them).  The placeholder is marked signaling so it never contributes
    algorithm components.
    """
    suite = REGISTRY.get(code)
    if suite is not None:
        return suite
    if is_grease(code):
        return CipherSuite(code=code, name=f"GREASE_{code:04X}", is_signaling=True)
    return CipherSuite(code=code, name=f"UNKNOWN_{code:04X}", is_signaling=True)


def suite_by_name(name):
    """Look up a suite by its IANA name; raises ``KeyError`` when unknown."""
    return _BY_NAME[name]


def classify_suite(code):
    """Return the :class:`SecurityLevel` of the suite with wire code ``code``.

    Signaling suites, GREASE, and unknown code points classify as
    ``SUBOPTIMAL`` (they carry no algorithms, so they are neither browser
    grade nor vulnerable).
    """
    return suite_by_code(code).security_level


def codes_by_names(names):
    """Convenience: map IANA names to wire codes, preserving order."""
    return [suite_by_name(name).code for name in names]
