"""TLS protocol substrate.

This subpackage implements the slice of TLS needed by the paper's
measurement pipeline:

- an IANA-style ciphersuite registry with algorithm decomposition and the
  paper's optimal/suboptimal/vulnerable security classification
  (:mod:`repro.tlslib.ciphersuites`),
- an extension-type registry (:mod:`repro.tlslib.extensions`),
- protocol version constants (:mod:`repro.tlslib.versions`),
- GREASE value handling per RFC 8701 (:mod:`repro.tlslib.grease`),
- a ClientHello model with real wire encoding and parsing
  (:mod:`repro.tlslib.clienthello`),
- a minimal TLS record layer (:mod:`repro.tlslib.record`),
- ServerHello / Certificate handshake messages
  (:mod:`repro.tlslib.serverhello`),
- client and server handshake state machines used by the simulated
  Internet in :mod:`repro.probing` (:mod:`repro.tlslib.handshake`).
"""

from repro.tlslib.versions import TLSVersion
from repro.tlslib.ciphersuites import (
    CipherSuite,
    SecurityLevel,
    REGISTRY,
    suite_by_code,
    suite_by_name,
    classify_suite,
)
from repro.tlslib.extensions import ExtensionType, EXTENSION_REGISTRY
from repro.tlslib.grease import is_grease, GREASE_VALUES
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.serverhello import ServerHello, CertificateMessage
from repro.tlslib.errors import TLSError, TLSParseError, TLSHandshakeError

__all__ = [
    "TLSVersion",
    "CipherSuite",
    "SecurityLevel",
    "REGISTRY",
    "suite_by_code",
    "suite_by_name",
    "classify_suite",
    "ExtensionType",
    "EXTENSION_REGISTRY",
    "is_grease",
    "GREASE_VALUES",
    "ClientHello",
    "ServerHello",
    "CertificateMessage",
    "TLSError",
    "TLSParseError",
    "TLSHandshakeError",
]
