"""ClientHello model with real wire encoding and parsing.

The model carries exactly the fields the paper's pipeline consumes — the
protocol version, ordered ciphersuite codes, ordered extension type codes,
and the SNI host name — and can round-trip itself through the RFC 5246
handshake wire format.  The simulated Internet in :mod:`repro.probing`
exchanges these bytes so the measurement pipeline is fed by the same
parse path a live capture would use.
"""

import os
import struct
from dataclasses import dataclass, field

from repro.tlslib.errors import TLSParseError
from repro.tlslib.extensions import ExtensionType
from repro.tlslib.grease import contains_grease, strip_grease
from repro.tlslib.versions import TLSVersion

_HANDSHAKE_CLIENT_HELLO = 0x01


def _encode_vector(payload, length_bytes):
    """Encode an opaque vector with an N-byte length prefix."""
    if len(payload) >= 1 << (8 * length_bytes):
        raise ValueError("vector payload too long")
    return len(payload).to_bytes(length_bytes, "big") + payload


class _Reader:
    """Bounded cursor over immutable bytes; raises TLSParseError on underrun."""

    def __init__(self, data):
        self._data = data
        self._pos = 0

    @property
    def remaining(self):
        return len(self._data) - self._pos

    def take(self, count):
        if count > self.remaining:
            raise TLSParseError(
                f"truncated message: wanted {count} bytes, have {self.remaining}")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def uint(self, width):
        return int.from_bytes(self.take(width), "big")

    def vector(self, length_bytes):
        return self.take(self.uint(length_bytes))


@dataclass
class ClientHello:
    """A TLS ClientHello handshake message.

    Attributes:
        version: the client's proposed protocol version.
        ciphersuites: ordered wire codes, possibly including SCSVs/GREASE.
        extensions: ordered extension type codes (bodies are synthesized on
            encode; only the type list is semantically meaningful here,
            matching what IoT Inspector collects).
        sni: host name carried in the ``server_name`` extension, if any.
        random: 32-byte client random (generated when omitted).
        session_id: legacy session id (usually empty).
    """

    version: TLSVersion
    ciphersuites: list
    extensions: list = field(default_factory=list)
    sni: str = None
    random: bytes = None
    session_id: bytes = b""

    def __post_init__(self):
        if self.random is None:
            self.random = os.urandom(32)
        if len(self.random) != 32:
            raise ValueError("client random must be exactly 32 bytes")
        if self.sni is not None and ExtensionType.SERVER_NAME not in self.extensions:
            self.extensions = [int(ExtensionType.SERVER_NAME)] + list(self.extensions)

    # --- fingerprint-facing accessors ---------------------------------------

    @property
    def uses_grease_suites(self):
        return contains_grease(self.ciphersuites)

    @property
    def uses_grease_extensions(self):
        return contains_grease(self.extensions)

    def suites_without_grease(self):
        return strip_grease(self.ciphersuites)

    def extensions_without_grease(self):
        return strip_grease(self.extensions)

    # --- wire format --------------------------------------------------------

    def _extension_body(self, ext_type):
        """Produce a plausible body for an extension type.

        Only ``server_name`` carries analysis-relevant content; other bodies
        are minimal valid placeholders so that encoded hellos parse cleanly.
        """
        if ext_type == ExtensionType.SERVER_NAME and self.sni is not None:
            host = self.sni.encode("idna") if any(ord(c) > 127 for c in self.sni) \
                else self.sni.encode("ascii")
            entry = b"\x00" + _encode_vector(host, 2)
            return _encode_vector(entry, 2)
        if ext_type == ExtensionType.SUPPORTED_VERSIONS:
            return _encode_vector(struct.pack(">H", int(self.version)), 1)
        return b""

    def to_bytes(self):
        """Encode as a handshake message (type + 3-byte length + body)."""
        body = struct.pack(">H", int(self.version))
        body += self.random
        body += _encode_vector(self.session_id, 1)
        suites = b"".join(struct.pack(">H", code) for code in self.ciphersuites)
        body += _encode_vector(suites, 2)
        body += _encode_vector(b"\x00", 1)  # compression: null only
        if self.extensions:
            blob = b"".join(
                struct.pack(">H", ext) + _encode_vector(self._extension_body(ext), 2)
                for ext in self.extensions
            )
            body += _encode_vector(blob, 2)
        return bytes([_HANDSHAKE_CLIENT_HELLO]) + len(body).to_bytes(3, "big") + body

    @classmethod
    def from_bytes(cls, data):
        """Parse a handshake message produced by :meth:`to_bytes`."""
        reader = _Reader(data)
        if reader.uint(1) != _HANDSHAKE_CLIENT_HELLO:
            raise TLSParseError("not a ClientHello handshake message")
        body = _Reader(reader.vector(3))
        try:
            version = TLSVersion(body.uint(2))
        except ValueError as exc:
            raise TLSParseError(f"unsupported protocol version: {exc}") from exc
        random = body.take(32)
        session_id = body.vector(1)
        suite_blob = body.vector(2)
        if len(suite_blob) % 2:
            raise TLSParseError("odd ciphersuite vector length")
        suites = [
            int.from_bytes(suite_blob[i:i + 2], "big")
            for i in range(0, len(suite_blob), 2)
        ]
        compression = body.vector(1)
        if b"\x00" not in compression:
            raise TLSParseError("client offers no null compression")
        extensions, sni = [], None
        if body.remaining:
            ext_blob = _Reader(body.vector(2))
            while ext_blob.remaining:
                ext_type = ext_blob.uint(2)
                ext_body = ext_blob.vector(2)
                extensions.append(ext_type)
                if ext_type == ExtensionType.SERVER_NAME and ext_body:
                    sni = cls._parse_sni(ext_body)
        return cls(version=version, ciphersuites=suites, extensions=extensions,
                   sni=sni, random=random, session_id=session_id)

    @staticmethod
    def _parse_sni(body):
        reader = _Reader(body)
        entries = _Reader(reader.vector(2))
        while entries.remaining:
            name_type = entries.uint(1)
            name = entries.vector(2)
            if name_type == 0:  # host_name
                try:
                    return name.decode("ascii")
                except UnicodeDecodeError as exc:
                    raise TLSParseError("non-ASCII SNI host name") from exc
        return None
