"""TLS alert protocol (RFC 5246 section 7.2).

Failed negotiations on the real Internet come back as alert records, not
exceptions; the simulated network answers the same way so the prober
exercises a real alert-parsing path (e.g. an SSL 3.0-only client hitting
a modern server receives ``protocol_version``).
"""

import enum

from repro.tlslib.errors import TLSParseError
from repro.tlslib.record import ContentType, encode_records


class AlertLevel(enum.IntEnum):
    WARNING = 1
    FATAL = 2


class AlertDescription(enum.IntEnum):
    """The alert codes the substrate emits or expects."""

    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    CERTIFICATE_EXPIRED = 45
    UNKNOWN_CA = 48
    ILLEGAL_PARAMETER = 47
    DECODE_ERROR = 50
    PROTOCOL_VERSION = 70
    INTERNAL_ERROR = 80
    UNRECOGNIZED_NAME = 112

    @property
    def snake_name(self):
        return self.name.lower()

    @classmethod
    def from_snake_name(cls, name):
        try:
            return cls[name.upper()]
        except KeyError:
            return cls.HANDSHAKE_FAILURE


class Alert:
    """A two-byte alert message."""

    __slots__ = ("level", "description")

    def __init__(self, level, description):
        self.level = AlertLevel(level)
        self.description = AlertDescription(description)

    def to_bytes(self):
        return bytes([self.level, self.description])

    @classmethod
    def from_bytes(cls, data):
        if len(data) != 2:
            raise TLSParseError("alert message must be exactly two bytes")
        try:
            return cls(data[0], data[1])
        except ValueError as exc:
            raise TLSParseError(f"unknown alert field: {exc}") from exc

    def to_record_bytes(self, version):
        """Encode as a full alert record."""
        return encode_records(ContentType.ALERT, version, self.to_bytes())

    @classmethod
    def fatal(cls, description):
        return cls(AlertLevel.FATAL, description)

    def __eq__(self, other):
        if not isinstance(other, Alert):
            return NotImplemented
        return (self.level, self.description) == \
            (other.level, other.description)

    def __repr__(self):
        return f"Alert({self.level.name}, {self.description.snake_name})"


def extract_alert(records):
    """Return the first Alert among decoded records, or None."""
    for record in records:
        if record.content_type == ContentType.ALERT:
            return Alert.from_bytes(record.payload)
    return None
