"""TLS protocol version constants.

Versions are identified on the wire by a two-byte ``(major, minor)`` pair.
The paper reports client-proposed versions in Table 12 (SSL 3.0 through
TLS 1.2; no TLS 1.3 observed in the capture window).
"""

import enum


class TLSVersion(enum.IntEnum):
    """Protocol versions, valued by their wire encoding ``major << 8 | minor``."""

    SSL_3_0 = 0x0300
    TLS_1_0 = 0x0301
    TLS_1_1 = 0x0302
    TLS_1_2 = 0x0303
    TLS_1_3 = 0x0304

    @property
    def major(self):
        return self >> 8

    @property
    def minor(self):
        return self & 0xFF

    @property
    def pretty(self):
        """Human-readable name, as used in the paper's tables."""
        return _PRETTY[self]

    @classmethod
    def from_wire(cls, value):
        """Return the version for a wire value, raising ``ValueError`` if unknown."""
        return cls(value)

    @classmethod
    def from_pretty(cls, text):
        """Parse names like ``"TLS 1.2"`` or ``"SSL 3.0"``."""
        for version, name in _PRETTY.items():
            if name == text:
                return version
        raise ValueError(f"unknown TLS version name: {text!r}")


_PRETTY = {
    TLSVersion.SSL_3_0: "SSL 3.0",
    TLSVersion.TLS_1_0: "TLS 1.0",
    TLSVersion.TLS_1_1: "TLS 1.1",
    TLSVersion.TLS_1_2: "TLS 1.2",
    TLSVersion.TLS_1_3: "TLS 1.3",
}

#: Versions deprecated by the IETF as of the paper's capture window.
DEPRECATED_VERSIONS = frozenset({TLSVersion.SSL_3_0, TLSVersion.TLS_1_0, TLSVersion.TLS_1_1})
