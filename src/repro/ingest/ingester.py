"""The ingester: drive the stream through the incremental analyses.

An :class:`Ingester` owns a :class:`~repro.ingest.stream.TimelineStream`
and the four incremental analyses, and advances them window by window.
Every ``compact_every`` windows (and at end-of-stream) it *compacts*:
the analyses' mutable states are checkpointed into the study's
:class:`~repro.store.artifact.ArtifactStore` under the
``ingest.checkpoint`` stage, keyed — like every artifact — by the
config's artifact digest and the package version.  A restarted ingester
finds the checkpoint, restores the states, and re-enters the stream
*after* the last compacted window; records already absorbed are never
replayed, which is exactly what makes the final state reproducible
across kills (proven by ``repro verify streaming``).

Observability: ``ingest.records`` / ``ingest.windows`` /
``ingest.compactions`` counters, an ``ingest.window`` span per window,
and three live lag gauges — ``ingest.lag_windows`` (windows not yet
absorbed), ``ingest.last_checkpoint_age`` (windows absorbed since the
last compaction, i.e. the work a kill right now would lose), and
``ingest.records_behind`` (records not yet absorbed) — all through
:mod:`repro.obs` (no-ops unless a context is active).  The gauges are
refreshed at construction, on every window, on every compaction, and on
resume, so a scrape of ``/metrics`` always sees the current lag.
"""

from repro import obs
from repro.ingest.incremental import default_analyses
from repro.ingest.stream import DEFAULT_WINDOW_SECONDS, TimelineStream
from repro.store.artifact import MISS

#: artifact-store stage name of the compacted ingest state.
CHECKPOINT_STAGE = "ingest.checkpoint"


class Ingester:
    """Stream a study's capture through the incremental analyses.

    Args:
        study: the :class:`~repro.study.Study` whose capture to ingest
            (also supplies the corpus / certificates the analyses need).
        window_seconds: stream window width.
        store: optional :class:`~repro.store.artifact.ArtifactStore`
            for checkpoint/compaction; defaults to the study's attached
            store.  With no store the ingester still runs, it just
            cannot resume.
        compact_every: windows between compactions.
    """

    def __init__(self, study, window_seconds=DEFAULT_WINDOW_SECONDS,
                 store=None, compact_every=4):
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.study = study
        self.config = study.config
        self.store = store if store is not None \
            else getattr(study, "store", None)
        self.compact_every = compact_every
        self.stream = TimelineStream.from_study(
            study, window_seconds=window_seconds)
        self.analyses = default_analyses(study)
        #: index of the last window absorbed (-1: nothing yet).
        self.last_window = -1
        #: index of the last window covered by a store checkpoint.
        self.last_compacted = -1
        self.records_ingested = 0
        self.resumed = False
        self._update_lag_gauges()

    def _update_lag_gauges(self):
        """Refresh the ingest lag gauges from the stream cursor."""
        obs.gauge("ingest.lag_windows",
                  self.stream.window_count - (self.last_window + 1))
        obs.gauge("ingest.last_checkpoint_age",
                  self.last_window - self.last_compacted)
        obs.gauge("ingest.records_behind",
                  len(self.stream.records) - self.records_ingested)

    # -- checkpointing --------------------------------------------------------

    def _load_checkpoint(self):
        if self.store is None:
            return None
        state = self.store.get(self.config, CHECKPOINT_STAGE)
        return None if state is MISS else state

    def try_resume(self):
        """Restore the last compacted state, if the store has one.

        Returns the resumed window cursor (-1 when starting cold).
        """
        state = self._load_checkpoint()
        if state is None:
            return -1
        for analysis in self.analyses:
            analysis.restore(state["states"][analysis.name])
        self.last_window = state["window_index"]
        self.last_compacted = state["window_index"]
        self.records_ingested = state["records_ingested"]
        self.resumed = True
        obs.incr("ingest.resumes")
        self._update_lag_gauges()
        return self.last_window

    def compact(self):
        """Checkpoint every analysis's state into the artifact store."""
        if self.store is None:
            return None
        state = {
            "window_index": self.last_window,
            "records_ingested": self.records_ingested,
            "states": {analysis.name: analysis.checkpoint()
                       for analysis in self.analyses},
        }
        path = self.store.put(self.config, CHECKPOINT_STAGE, state)
        self.last_compacted = self.last_window
        obs.incr("ingest.compactions")
        self._update_lag_gauges()
        return path

    # -- ingestion ------------------------------------------------------------

    def ingest_window(self, window):
        """Absorb one stream window into every analysis."""
        with obs.span("ingest.window") as span:
            for analysis in self.analyses:
                analysis.observe_window(window)
            self.last_window = window.index
            self.records_ingested += len(window)
            span.incr("records", len(window))
        obs.incr("ingest.windows")
        obs.incr("ingest.records", n=len(window))
        self._update_lag_gauges()

    def run(self, resume=True, stop_after_windows=None):
        """Ingest the stream (from the last checkpoint when resuming).

        ``stop_after_windows`` bounds how many windows this call
        absorbs — the seam the kill/resume tests (and a long-running
        service's incremental ticks) use.  Compaction happens on its
        cadence and at end-of-stream, *not* on an early stop: a killed
        ingester loses at most ``compact_every`` windows of work, and
        the resume path replays exactly those.  Returns ``self``.
        """
        with obs.span("ingest.run"):
            if resume and not self.resumed and self.last_window < 0:
                self.try_resume()
            absorbed = 0
            for window in self.stream.windows(after=self.last_window):
                self.ingest_window(window)
                absorbed += 1
                if self.last_window - self.last_compacted >= \
                        self.compact_every:
                    self.compact()
                if stop_after_windows is not None \
                        and absorbed >= stop_after_windows:
                    break
            if self.finished and self.last_window > self.last_compacted:
                self.compact()
        return self

    @property
    def finished(self):
        return self.last_window >= self.stream.window_count - 1

    def snapshots(self):
        """name → current snapshot, for every analysis."""
        return {analysis.name: analysis.snapshot()
                for analysis in self.analyses}

    def status(self):
        """The ingester's progress summary (the ``/healthz`` payload)."""
        return {
            "seed": self.config.seed,
            "windows_total": self.stream.window_count,
            "windows_ingested": self.last_window + 1,
            "last_compacted_window": self.last_compacted,
            "records_ingested": self.records_ingested,
            "resumed": self.resumed,
            "finished": self.finished,
        }
