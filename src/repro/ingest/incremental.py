"""Incremental analyses: the hot paper queries, updated per record.

The batch pipeline recomputes every analysis from the full capture; an
always-on ingest path cannot afford that.  Each class here implements
the :class:`IncrementalAnalysis` protocol —

- ``update(record)`` absorbs one ClientHello record in O(1)-ish set and
  counter operations;
- ``observe_window(window)`` absorbs a whole
  :class:`~repro.ingest.stream.Window` (the default just loops);
- ``snapshot()`` folds the running state into the analysis's final
  JSON-able answer;
- ``merge(other)`` absorbs another instance's state (shard fan-in);
- ``checkpoint()`` / ``restore(state)`` round-trip the *mutable* state
  through the artifact store, so a restarted ingester resumes from the
  last compacted window instead of replaying the whole capture.

The contract every implementation is held to (and
:mod:`repro.verify.streaming` proves): after absorbing every record,
``snapshot()`` is byte-identical — canonical-JSON digest equal — to the
``batch_snapshot(study)`` computed by the classic batch code path.  The
ratios are computed from the same integers in the same expressions, so
even float results match exactly.
"""

from collections import Counter

from repro.core import customization, matching
from repro.core.issuers import issuer_report, leaf_issuer_org
from repro.inspector.generator import PRIVATE_CA_ORGS
from repro.match import SimilarityIndex, fingerprint_tokens, shared_engine
from repro.verify.canonical import digest


def fingerprint_id(fp):
    """A stable hex identifier for a 3-tuple fingerprint key.

    The raw key — ``(version, ciphersuites, extensions)`` — is unwieldy
    as a URL parameter; the canonical digest of the key is what the
    query API and the fingerprint index use as the lookup handle.
    """
    version, suites, extensions = fp
    return digest([int(version), list(suites), list(extensions)])[:16]


class IncrementalAnalysis:
    """Protocol base: one continuously-updatable paper query."""

    #: stable name; keys checkpoints, snapshots, and verify nodes.
    name = None

    def update(self, record):
        """Absorb one ClientHello record."""
        raise NotImplementedError

    def observe_window(self, window):
        """Absorb one stream window (default: record by record)."""
        for record in window:
            self.update(record)

    def snapshot(self):
        """The analysis's current JSON-able answer."""
        raise NotImplementedError

    def merge(self, other):
        """Absorb another instance's state in place (shard fan-in)."""
        raise NotImplementedError

    def checkpoint(self):
        """Picklable mutable state for the artifact store."""
        raise NotImplementedError

    def restore(self, state):
        """Load a :meth:`checkpoint` payload back into this instance."""
        raise NotImplementedError


class FingerprintIndex(IncrementalAnalysis):
    """The live fingerprint index: fp → vendors, devices, record count.

    Backs the ``/v1/fingerprints`` query endpoint and the paper's
    *degree* statistic (number of vendors per fingerprint, Table 2).
    Each first-seen fingerprint is also added to a live
    :class:`~repro.match.SimilarityIndex`, so :meth:`similar` answers
    "which known fingerprints look like this one" with exact
    feature-set Jaccard over sketch-pruned candidates.  The similarity
    index is derived state: snapshots and checkpoints are unchanged,
    and :meth:`restore` rebuilds it from the restored index.
    """

    name = "fingerprint_index"

    def __init__(self):
        #: fp key → {"vendors": set, "devices": set, "records": int}
        self._index = {}
        #: fingerprint id → fp key (the O(1) query-service handle).
        self._by_id = {}
        #: fp key → similarity over ClientHello feature sets.
        self._similarity = SimilarityIndex()

    def update(self, record):
        fp = record.fingerprint()
        entry = self._index.get(fp)
        if entry is None:
            entry = self._index[fp] = {"vendors": set(),
                                       "devices": set(), "records": 0}
            self._by_id[fingerprint_id(fp)] = fp
            self._similarity.add(fp, fingerprint_tokens(fp))
        entry["vendors"].add(record.vendor)
        entry["devices"].add(record.device_id)
        entry["records"] += 1

    def lookup(self, fp_id):
        """The snapshot entry for one fingerprint id, or ``None``."""
        fp = self._by_id.get(fp_id)
        if fp is None:
            return None
        return self._entry_json(fp, self._index[fp])

    def similar(self, fp_id, threshold=0.5, limit=10):
        """Indexed fingerprints feature-similar to one fingerprint id.

        Returns ``[{"similarity": ..., **entry_json}, ...]`` (the probe
        fingerprint itself excluded), best first, or ``None`` for an
        unknown id.  Exact Jaccard over ciphersuite/extension/version
        feature sets; the similarity index only prunes candidates.
        """
        fp = self._by_id.get(fp_id)
        if fp is None:
            return None
        hits = self._similarity.query(fingerprint_tokens(fp), threshold)
        results = []
        for similarity, other in hits:
            if other == fp:
                continue
            entry = dict(self._entry_json(other, self._index[other]))
            entry["similarity"] = similarity
            results.append(entry)
            if limit is not None and len(results) >= limit:
                break
        return results

    @staticmethod
    def _entry_json(fp, entry):
        version, suites, extensions = fp
        return {
            "id": fingerprint_id(fp),
            "tls_version": int(version),
            "ciphersuites": list(suites),
            "extensions": list(extensions),
            "vendors": sorted(entry["vendors"]),
            "degree": len(entry["vendors"]),
            "device_count": len(entry["devices"]),
            "record_count": entry["records"],
        }

    def snapshot(self):
        entries = [self._entry_json(fp, entry)
                   for fp, entry in self._index.items()]
        entries.sort(key=lambda e: e["id"])
        return {"fingerprint_count": len(entries),
                "fingerprints": {e["id"]: e for e in entries}}

    def merge(self, other):
        for fp, entry in other._index.items():
            mine = self._index.get(fp)
            if mine is None:
                self._index[fp] = {"vendors": set(entry["vendors"]),
                                   "devices": set(entry["devices"]),
                                   "records": entry["records"]}
                self._by_id[fingerprint_id(fp)] = fp
                self._similarity.add(fp, fingerprint_tokens(fp))
            else:
                mine["vendors"] |= entry["vendors"]
                mine["devices"] |= entry["devices"]
                mine["records"] += entry["records"]

    def checkpoint(self):
        return {"index": self._index}

    def restore(self, state):
        self._index = state["index"]
        self._by_id = {fingerprint_id(fp): fp for fp in self._index}
        self._similarity = SimilarityIndex()
        for fp in self._index:
            self._similarity.add(fp, fingerprint_tokens(fp))

    @staticmethod
    def batch_snapshot(study):
        """The same payload, computed the batch way from the dataset."""
        dataset = study.dataset
        index = FingerprintIndex()
        counts = Counter(r.fingerprint() for r in dataset.records)
        entries = [index._entry_json(fp, {
            "vendors": dataset.fingerprint_vendors(fp),
            "devices": dataset.fingerprint_devices(fp),
            "records": counts[fp]}) for fp in dataset.fingerprints()]
        entries.sort(key=lambda e: e["id"])
        return {"fingerprint_count": len(entries),
                "fingerprints": {e["id"]: e for e in entries}}


class DocCounters(IncrementalAnalysis):
    """Per-vendor degree-of-customization counters (Sections 4.2-4.3).

    Maintains the fingerprint incidence maps incrementally; the DoC
    ratios themselves are divisions done at snapshot time from the same
    integers the batch :mod:`repro.core.customization` path uses.
    """

    name = "doc"

    def __init__(self):
        self._vendors_by_fp = {}
        self._fps_by_vendor = {}
        self._fps_by_device = {}
        self._devices_by_fp = {}
        self._vendor_by_device = {}

    def update(self, record):
        fp = record.fingerprint()
        self._vendors_by_fp.setdefault(fp, set()).add(record.vendor)
        self._fps_by_vendor.setdefault(record.vendor, set()).add(fp)
        self._fps_by_device.setdefault(record.device_id, set()).add(fp)
        self._devices_by_fp.setdefault(fp, set()).add(record.device_id)
        self._vendor_by_device[record.device_id] = record.vendor

    def _doc_vendor(self, vendor):
        fingerprints = self._fps_by_vendor[vendor]
        solely = sum(1 for fp in fingerprints
                     if len(self._vendors_by_fp[fp]) == 1)
        return solely / len(fingerprints)

    def _doc_device(self, device):
        fingerprints = self._fps_by_device[device]
        vendor = self._vendor_by_device[device]
        solely = 0
        for fp in fingerprints:
            users = {d for d in self._devices_by_fp[fp]
                     if self._vendor_by_device[d] == vendor}
            if users == {device}:
                solely += 1
        return solely / len(fingerprints)

    def snapshot(self):
        vendors = sorted(self._fps_by_vendor)
        doc_device = {}
        for vendor in vendors:
            devices = sorted(d for d, v in self._vendor_by_device.items()
                             if v == vendor)
            doc_device[vendor] = (sum(self._doc_device(d)
                                      for d in devices) / len(devices)
                                  if devices else 0.0)
        return {"doc_vendor": {v: self._doc_vendor(v) for v in vendors},
                "doc_device": doc_device}

    def merge(self, other):
        for fp, vendors in other._vendors_by_fp.items():
            self._vendors_by_fp.setdefault(fp, set()).update(vendors)
        for vendor, fps in other._fps_by_vendor.items():
            self._fps_by_vendor.setdefault(vendor, set()).update(fps)
        for device, fps in other._fps_by_device.items():
            self._fps_by_device.setdefault(device, set()).update(fps)
        for fp, devices in other._devices_by_fp.items():
            self._devices_by_fp.setdefault(fp, set()).update(devices)
        self._vendor_by_device.update(other._vendor_by_device)

    def checkpoint(self):
        return {"vendors_by_fp": self._vendors_by_fp,
                "fps_by_vendor": self._fps_by_vendor,
                "fps_by_device": self._fps_by_device,
                "devices_by_fp": self._devices_by_fp,
                "vendor_by_device": self._vendor_by_device}

    def restore(self, state):
        self._vendors_by_fp = state["vendors_by_fp"]
        self._fps_by_vendor = state["fps_by_vendor"]
        self._fps_by_device = state["fps_by_device"]
        self._devices_by_fp = state["devices_by_fp"]
        self._vendor_by_device = state["vendor_by_device"]

    @staticmethod
    def batch_snapshot(study):
        dataset = study.dataset
        return {"doc_vendor": customization.doc_vendor_all(dataset),
                "doc_device": customization.doc_device_all(dataset)}


class MatchRate(IncrementalAnalysis):
    """The corpus match rate (Section 4.1), matched once per new fp.

    Each *new* fingerprint is matched against the 6,891-entry corpus
    exactly once, when first seen — the streaming path's whole point:
    per-record cost is a set lookup, not a corpus scan.
    """

    name = "match_rate"

    def __init__(self, corpus):
        self.corpus = corpus
        self._fingerprints = set()
        self._matched = {}          # fp → LibraryFingerprint
        self._devices_by_fp = {}    # fp → set(device), matched fps only

    def update(self, record):
        fp = record.fingerprint()
        if fp not in self._fingerprints:
            self._fingerprints.add(fp)
            library = self.corpus.match(*fp)
            if library is not None:
                self._matched[fp] = library
                self._devices_by_fp[fp] = set()
        if fp in self._matched:
            self._devices_by_fp[fp].add(record.device_id)

    def _report(self):
        report = matching.MatchReport(
            total_fingerprints=len(self._fingerprints))
        report.matched = dict(self._matched)
        report.device_counts = {fp: len(devices) for fp, devices
                                in self._devices_by_fp.items()}
        return report

    def snapshot(self):
        return _match_payload(self._report())

    def merge(self, other):
        self._fingerprints |= other._fingerprints
        self._matched.update(other._matched)
        for fp, devices in other._devices_by_fp.items():
            self._devices_by_fp.setdefault(fp, set()).update(devices)

    def checkpoint(self):
        # the corpus is config-independent and rebuilt at construction;
        # only the mutable observation state rides in the checkpoint.
        return {"fingerprints": self._fingerprints,
                "matched": self._matched,
                "devices_by_fp": self._devices_by_fp}

    def restore(self, state):
        self._fingerprints = state["fingerprints"]
        self._matched = state["matched"]
        self._devices_by_fp = state["devices_by_fp"]

    @staticmethod
    def batch_snapshot(study):
        report = shared_engine().match_report(study.dataset,
                                              study.corpus)
        return _match_payload(report)


def _match_payload(report):
    """Fold a :class:`~repro.core.matching.MatchReport` to JSON."""
    return {
        "total_fingerprints": report.total_fingerprints,
        "matched_count": report.matched_count,
        "matched_fraction": report.matched_fraction,
        "matched_devices": report.matched_devices(),
        "matched_libraries": report.matched_libraries(),
        "libraries_by_family": report.libraries_by_family(),
        "unsupported_libraries": report.unsupported_libraries(),
    }


class IssuerShares(IncrementalAnalysis):
    """Issuer shares and the vendor x issuer matrix (Section 5.2).

    The leaf-share half is a pure function of the (static) probed
    certificate dataset and is computed once at construction; the
    vendor x issuer visit matrix is the streaming half, deduplicated on
    (device, SNI) pairs exactly the way the batch
    :func:`~repro.core.issuers.issuer_report` counts them.
    """

    name = "issuer_shares"

    def __init__(self, certificates, ecosystem):
        results = certificates.results_at()
        leaves = certificates.leaf_certificates()
        self._issuer_counts = Counter(leaf_issuer_org(leaf)
                                      for leaf in leaves.values())
        self._leaf_count = len(leaves)
        self._server_count = len(certificates.reachable_fqdns())
        orgs = sorted(self._issuer_counts)
        self._orgs = orgs
        self._public = [org for org in orgs
                        if ecosystem.is_public_trust(org)]
        self._private = [org for org in orgs
                         if not ecosystem.is_public_trust(org)]
        #: sni → leaf issuer org, for snis that presented a leaf.
        self._org_by_sni = {
            sni: leaf_issuer_org(result.leaf)
            for sni, result in results.items()
            if result is not None and result.leaf is not None}
        #: distinct (vendor, device, sni) visit triples seen so far.
        self._seen = set()

    def update(self, record):
        if record.sni and record.sni in self._org_by_sni:
            self._seen.add((record.vendor, record.device_id,
                            record.sni))

    def _matrix(self):
        matrix = {}
        for vendor, _device, sni in self._seen:
            column = matrix.setdefault(vendor, Counter())
            column[self._org_by_sni[sni]] += 1
        return matrix

    def snapshot(self):
        matrix = self._matrix()
        public = set(self._public)
        shares = {org: self._issuer_counts[org] /
                  max(1, self._leaf_count) for org in self._orgs}
        private_share = sum(self._issuer_counts[org]
                            for org in self._private) / \
            max(1, self._leaf_count)
        public_only = sorted(
            vendor for vendor, column in matrix.items()
            if column and all(org in public for org in column))
        self_signing = sorted(
            vendor for vendor, column in matrix.items()
            if PRIVATE_CA_ORGS.get(vendor)
            and column.get(PRIVATE_CA_ORGS[vendor]))
        exclusive = sorted(
            vendor for vendor in self_signing
            if set(matrix[vendor]) == {PRIVATE_CA_ORGS[vendor]})
        return {
            "server_count": self._server_count,
            "leaf_count": self._leaf_count,
            "issuer_orgs": list(self._orgs),
            "public_orgs": list(self._public),
            "private_orgs": list(self._private),
            "issuer_shares": shares,
            "private_leaf_share": private_share,
            "matrix": {vendor: dict(sorted(column.items()))
                       for vendor, column in sorted(matrix.items())},
            "vendors_public_only": public_only,
            "vendors_self_signing": self_signing,
            "vendors_exclusively_self_signed": exclusive,
        }

    def merge(self, other):
        self._seen |= other._seen

    def checkpoint(self):
        return {"seen": self._seen}

    def restore(self, state):
        self._seen = state["seen"]

    @staticmethod
    def batch_snapshot(study):
        report = issuer_report(study.dataset, study.certificates,
                               study.ecosystem)
        return {
            "server_count": report.server_count,
            "leaf_count": report.leaf_count,
            "issuer_orgs": list(report.issuer_orgs),
            "public_orgs": list(report.public_orgs),
            "private_orgs": list(report.private_orgs),
            "issuer_shares": {org: report.issuer_share(org)
                              for org in report.issuer_orgs},
            "private_leaf_share": report.private_leaf_share(),
            "matrix": {vendor: dict(sorted(column.items()))
                       for vendor, column in
                       sorted(report.matrix.items())},
            "vendors_public_only": report.vendors_public_only(),
            "vendors_self_signing": report.vendors_self_signing(),
            "vendors_exclusively_self_signed":
                report.vendors_exclusively_self_signed(),
        }


#: the streaming analyses proven equivalent to batch, in paper order.
ANALYSIS_NAMES = ("fingerprint_index", "doc", "match_rate",
                  "issuer_shares")


def default_analyses(study):
    """The four hot-query analyses wired to one study's resources."""
    return (FingerprintIndex(),
            DocCounters(),
            MatchRate(study.corpus),
            IssuerShares(study.certificates, study.ecosystem))


def batch_snapshots(study):
    """Every analysis's answer computed the classic batch way.

    The reference side of the streaming == batch equivalence proof
    (:mod:`repro.verify.streaming`).
    """
    return {
        FingerprintIndex.name: FingerprintIndex.batch_snapshot(study),
        DocCounters.name: DocCounters.batch_snapshot(study),
        MatchRate.name: MatchRate.batch_snapshot(study),
        IssuerShares.name: IssuerShares.batch_snapshot(study),
    }
