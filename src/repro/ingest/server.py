"""``repro serve`` — the warm HTTP/JSON query API over ingested state.

A stdlib-only (``http.server``) threaded service answering the paper's
hot queries from the incremental analyses' warm state — no pipeline run
per request.  Routing and payload assembly live in
:class:`QueryService.handle`, a pure ``(path, params) -> (status,
payload)`` function, so every endpoint is unit-testable without a
socket; :func:`make_server` wraps it in a ``ThreadingHTTPServer``.

Every response — success or error — is a versioned envelope::

    {"schema_version": 1, "api_version": "v1", "endpoint": ...,
     "data": {...}}                     # 200
    {"schema_version": 1, "api_version": "v1",
     "error": {"status": 404, "message": ...}}   # 4xx

Endpoints:

- ``GET /healthz`` — liveness + ingest progress;
- ``GET /metrics`` — the active :mod:`repro.obs` registry snapshot;
- ``GET /v1/doc[?vendor=]`` — per-vendor DoC (Figure 2);
- ``GET /v1/fingerprints[?id=|limit=]`` — the live fingerprint index;
- ``GET /v1/match-rate`` — the Section 4.1 corpus match rate;
- ``GET /v1/issuers[?vendor=]`` — issuer shares / one Figure 5 column;
- ``GET /v1/verdicts[?sni=]`` — per-SNI certificate validation verdicts.
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core.chains import validate_all
from repro.core.issuers import leaf_issuer_org
from repro.inspector.timeline import PROBE_TIME
from repro.schema import versioned

#: the query API version every ``/v1/...`` route speaks.
API_VERSION = "v1"


def envelope(endpoint, data):
    """The versioned success envelope of one response."""
    return versioned({"api_version": API_VERSION,
                      "endpoint": endpoint, "data": data})


def error_envelope(status, message):
    """The versioned error envelope (404/400/...)."""
    return versioned({"api_version": API_VERSION,
                      "error": {"status": status, "message": message}})


class QueryError(Exception):
    """An HTTP error response (status + message)."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class QueryService:
    """Warm query state + routing for the HTTP API."""

    def __init__(self, study, ingester):
        self.study = study
        self.ingester = ingester
        self._snapshots = None
        self._verdicts = None

    # -- warm state -----------------------------------------------------------

    def warm(self):
        """Finish ingesting (resuming if possible) and cache answers."""
        with obs.span("serve.warm"):
            if not self.ingester.finished:
                self.ingester.run()
            self.refresh()
        return self

    def refresh(self):
        """Re-fold the analyses' state into the served snapshots."""
        self._snapshots = self.ingester.snapshots()
        if self._verdicts is None:
            self._verdicts = self._build_verdicts()

    def _build_verdicts(self):
        survey = validate_all(self.study.certificates,
                              self.study.validator(), at=PROBE_TIME)
        verdicts = {}
        for fqdn in sorted(survey.reports):
            report = survey.reports[fqdn]
            verdicts[fqdn] = {
                "sni": fqdn,
                "status": report.status.value,
                "valid": report.valid,
                "hostname_ok": report.hostname_ok,
                "expired": report.expired,
                "chain_complete": report.chain_complete,
                "anchor_in_store": report.anchor_in_store,
                "presented_length": report.presented_length,
                "path_length": report.path_length,
                "issuer": leaf_issuer_org(report.leaf),
                "validity_days": round(report.leaf.validity_days, 1),
            }
        return verdicts

    @property
    def snapshots(self):
        if self._snapshots is None:
            self.warm()
        return self._snapshots

    @property
    def verdicts(self):
        if self._verdicts is None:
            self.warm()
        return self._verdicts

    # -- routing --------------------------------------------------------------

    def handle(self, path, params=None):
        """Answer one request; returns ``(status, payload)``.

        ``params`` is a ``{name: [values]}`` query mapping (as produced
        by ``urllib.parse.parse_qs``).
        """
        params = params or {}
        routes = {
            "/healthz": self._healthz,
            "/metrics": self._metrics,
            "/v1/doc": self._doc,
            "/v1/fingerprints": self._fingerprints,
            "/v1/match-rate": self._match_rate,
            "/v1/issuers": self._issuers,
            "/v1/verdicts": self._verdicts_route,
        }
        handler = routes.get(path)
        if handler is None:
            obs.incr("serve.errors", key="404")
            return 404, error_envelope(404, f"unknown route {path!r}")
        try:
            allowed = getattr(handler, "params", ())
            unknown = sorted(set(params) - set(allowed))
            if unknown:
                raise QueryError(
                    400, f"unknown query parameter(s): "
                         f"{', '.join(unknown)}")
            data = handler(params)
        except QueryError as exc:
            obs.incr("serve.errors", key=str(exc.status))
            return exc.status, error_envelope(exc.status, exc.message)
        obs.incr("serve.requests", key=path)
        return 200, envelope(path, data)

    @staticmethod
    def _param(params, name):
        """The single value of query param ``name``, or ``None``.

        Empty and repeated values are malformed (400).
        """
        if name not in params:
            return None
        values = [value for value in params[name] if value]
        if len(values) != 1:
            raise QueryError(400, f"parameter {name!r} needs exactly "
                                  f"one non-empty value")
        return values[0]

    # -- endpoints ------------------------------------------------------------

    def _healthz(self, params):
        status = self.ingester.status()
        status["status"] = "ok" if status["finished"] else "ingesting"
        return status
    _healthz.params = ()

    def _metrics(self, params):
        ctx = obs.current()
        snapshot = ctx.metrics.snapshot() if ctx.enabled else {}
        return {"enabled": ctx.enabled, "metrics": snapshot}
    _metrics.params = ()

    def _doc(self, params):
        snapshot = self.snapshots["doc"]
        vendor = self._param(params, "vendor")
        if vendor is None:
            return snapshot
        if vendor not in snapshot["doc_vendor"]:
            raise QueryError(404, f"unknown vendor {vendor!r}")
        return {"vendor": vendor,
                "doc_vendor": snapshot["doc_vendor"][vendor],
                "doc_device": snapshot["doc_device"][vendor]}
    _doc.params = ("vendor",)

    def _fingerprints(self, params):
        snapshot = self.snapshots["fingerprint_index"]
        fp_id = self._param(params, "id")
        if fp_id is not None:
            entry = snapshot["fingerprints"].get(fp_id)
            if entry is None:
                raise QueryError(404,
                                 f"unknown fingerprint id {fp_id!r}")
            return entry
        limit = self._param(params, "limit")
        ids = sorted(snapshot["fingerprints"])
        if limit is not None:
            try:
                limit = int(limit)
            except ValueError:
                raise QueryError(400, f"limit must be an integer, "
                                      f"got {limit!r}") from None
            if limit < 0:
                raise QueryError(400, "limit must be >= 0")
            ids = ids[:limit]
        return {"fingerprint_count": snapshot["fingerprint_count"],
                "ids": ids}
    _fingerprints.params = ("id", "limit")

    def _match_rate(self, params):
        return self.snapshots["match_rate"]
    _match_rate.params = ()

    def _issuers(self, params):
        snapshot = self.snapshots["issuer_shares"]
        vendor = self._param(params, "vendor")
        if vendor is None:
            return snapshot
        column = snapshot["matrix"].get(vendor)
        if column is None:
            raise QueryError(404, f"unknown vendor {vendor!r}")
        total = sum(column.values())
        return {"vendor": vendor,
                "issuers": {org: count / total
                            for org, count in column.items()}}
    _issuers.params = ("vendor",)

    def _verdicts_route(self, params):
        sni = self._param(params, "sni")
        if sni is None:
            counts = {}
            for verdict in self.verdicts.values():
                counts[verdict["status"]] = \
                    counts.get(verdict["status"], 0) + 1
            return {"verdict_count": len(self.verdicts),
                    "status_counts": dict(sorted(counts.items()))}
        verdict = self.verdicts.get(sni)
        if verdict is None:
            raise QueryError(404, f"unknown sni {sni!r}")
        return verdict
    _verdicts_route.params = ("sni",)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`QueryService.handle`."""

    #: set by :func:`make_server`.
    service = None
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        status, payload = self.service.handle(
            parsed.path, parse_qs(parsed.query,
                                  keep_blank_values=True))
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        """Suppress per-request stderr noise; obs counters cover it."""


def make_server(service, host="127.0.0.1", port=0):
    """A ``ThreadingHTTPServer`` bound to ``service`` (port 0: ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve_study(study, host="127.0.0.1", port=0, window_seconds=None,
                store=None, compact_every=4):
    """Warm a query service over ``study`` and bind an HTTP server.

    Returns ``(server, service)``; the caller owns
    ``server.serve_forever()`` / ``server.shutdown()``.
    """
    from repro.ingest.ingester import Ingester
    from repro.ingest.stream import DEFAULT_WINDOW_SECONDS
    ingester = Ingester(
        study,
        window_seconds=window_seconds or DEFAULT_WINDOW_SECONDS,
        store=store, compact_every=compact_every)
    service = QueryService(study, ingester).warm()
    return make_server(service, host=host, port=port), service
