"""``repro serve`` — the warm HTTP/JSON query API over ingested state.

A stdlib-only (``http.server``) threaded service answering the paper's
hot queries from the incremental analyses' warm state — no pipeline run
per request.  Routing and payload assembly live in
:class:`QueryService.handle`, a pure ``(path, params) -> (status,
payload)`` function, so every endpoint is unit-testable without a
socket; :func:`make_server` wraps it in a ``ThreadingHTTPServer``.

Every response — success or error — is a versioned envelope::

    {"schema_version": 1, "api_version": "v1", "endpoint": ...,
     "data": {...}}                     # 200
    {"schema_version": 1, "api_version": "v1",
     "error": {"status": 404, "message": ...}}   # 4xx

Endpoints:

- ``GET /healthz`` — liveness + ingest progress + per-objective SLO
  state (``ok`` / ``degraded`` / ``failing``);
- ``GET /metrics[?format=json|prom]`` — the active :mod:`repro.obs`
  registry snapshot; ``format=prom`` (or an ``Accept: text/plain``
  header) returns Prometheus exposition text instead of JSON;
- ``GET /v1/slo`` — every SLO objective's verdict over its sliding
  window;
- ``GET /v1/debug/recent[?limit=]`` — the flight recorder's ring of
  recent request/ingest events;
- ``GET /v1/doc[?vendor=]`` — per-vendor DoC (Figure 2);
- ``GET /v1/fingerprints[?id=|limit=]`` — the live fingerprint index;
- ``GET /v1/match-rate`` — the Section 4.1 corpus match rate;
- ``GET /v1/issuers[?vendor=]`` — issuer shares / one Figure 5 column;
- ``GET /v1/verdicts[?sni=]`` — per-SNI certificate validation verdicts.

Request middleware: every request that flows through
:meth:`QueryService.handle_request` (the HTTP path) is folded into the
telemetry plane — a per-endpoint latency histogram, status-class
counters, an in-flight gauge, SLO latency/error samples, and a flight-
recorder event.  Under an injected clock the whole plane is
deterministic; see :mod:`repro.obs.telemetry`.
"""

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core.chains import validate_all
from repro.core.issuers import leaf_issuer_org
from repro.inspector.timeline import PROBE_TIME
from repro.obs.telemetry import ServiceTelemetry, render_prometheus
from repro.schema import versioned

#: the query API version every ``/v1/...`` route speaks.
API_VERSION = "v1"


def envelope(endpoint, data):
    """The versioned success envelope of one response."""
    return versioned({"api_version": API_VERSION,
                      "endpoint": endpoint, "data": data})


def error_envelope(status, message):
    """The versioned error envelope (404/400/...)."""
    return versioned({"api_version": API_VERSION,
                      "error": {"status": status, "message": message}})


class QueryError(Exception):
    """An HTTP error response (status + message)."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class PlainText:
    """A non-JSON response body (the Prometheus exposition page)."""

    #: the content type Prometheus scrapers expect.
    PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self, text, content_type=PROMETHEUS):
        self.text = text
        self.content_type = content_type


def wants_prometheus(accept):
    """Whether an ``Accept`` header asks for exposition text.

    ``text/plain`` anywhere in the header wins unless JSON is also
    explicitly listed (then the JSON default stands) — ``*/*`` alone
    keeps the JSON default, so browsers and ``urllib`` see JSON and
    ``curl -H 'Accept: text/plain'`` (a scraper) sees exposition text.
    """
    if not accept:
        return False
    return "text/plain" in accept and "application/json" not in accept


class QueryService:
    """Warm query state + routing for the HTTP API."""

    def __init__(self, study, ingester, clock=time.perf_counter,
                 telemetry=None):
        self.study = study
        self.ingester = ingester
        self.telemetry = telemetry if telemetry is not None \
            else ServiceTelemetry(clock=clock)
        self._snapshots = None
        self._verdicts = None

    # -- warm state -----------------------------------------------------------

    def warm(self):
        """Finish ingesting (resuming if possible) and cache answers."""
        with obs.span("serve.warm"):
            if not self.ingester.finished:
                self.ingester.run()
            self.refresh()
        return self

    def refresh(self):
        """Re-fold the analyses' state into the served snapshots."""
        self._snapshots = self.ingester.snapshots()
        if self._verdicts is None:
            self._verdicts = self._build_verdicts()

    def _build_verdicts(self):
        survey = validate_all(self.study.certificates,
                              self.study.validator(), at=PROBE_TIME)
        verdicts = {}
        for fqdn in sorted(survey.reports):
            report = survey.reports[fqdn]
            verdicts[fqdn] = {
                "sni": fqdn,
                "status": report.status.value,
                "valid": report.valid,
                "hostname_ok": report.hostname_ok,
                "expired": report.expired,
                "chain_complete": report.chain_complete,
                "anchor_in_store": report.anchor_in_store,
                "presented_length": report.presented_length,
                "path_length": report.path_length,
                "issuer": leaf_issuer_org(report.leaf),
                "validity_days": round(report.leaf.validity_days, 1),
            }
        return verdicts

    @property
    def snapshots(self):
        if self._snapshots is None:
            self.warm()
        return self._snapshots

    @property
    def verdicts(self):
        if self._verdicts is None:
            self.warm()
        return self._verdicts

    # -- routing --------------------------------------------------------------

    def routes(self):
        """``path -> endpoint handler`` (the routable surface)."""
        return {
            "/healthz": self._healthz,
            "/metrics": self._metrics,
            "/v1/slo": self._slo,
            "/v1/debug/recent": self._debug_recent,
            "/v1/doc": self._doc,
            "/v1/fingerprints": self._fingerprints,
            "/v1/match-rate": self._match_rate,
            "/v1/issuers": self._issuers,
            "/v1/verdicts": self._verdicts_route,
        }

    def handle(self, path, params=None, accept=None):
        """Answer one request; returns ``(status, payload)``.

        ``params`` is a ``{name: [values]}`` query mapping (as produced
        by ``urllib.parse.parse_qs``); ``payload`` is a JSON envelope
        dict, or a :class:`PlainText` for non-JSON bodies (the
        Prometheus page).  ``accept`` is the request's ``Accept``
        header, used only for ``/metrics`` content negotiation.
        """
        params = params or {}
        if path == "/metrics" and "format" not in params \
                and wants_prometheus(accept):
            params = dict(params, format=["prom"])
        handler = self.routes().get(path)
        if handler is None:
            obs.incr("serve.errors", key="404")
            return 404, error_envelope(404, f"unknown route {path!r}")
        try:
            allowed = getattr(handler, "params", ())
            unknown = sorted(set(params) - set(allowed))
            if unknown:
                raise QueryError(
                    400, f"unknown query parameter(s): "
                         f"{', '.join(unknown)}")
            data = handler(params)
        except QueryError as exc:
            obs.incr("serve.errors", key=str(exc.status))
            return exc.status, error_envelope(exc.status, exc.message)
        obs.incr("serve.requests", key=path)
        if isinstance(data, PlainText):
            return 200, data
        return 200, envelope(path, data)

    def handle_request(self, path, params=None, accept=None):
        """The instrumented HTTP entry: handle + request middleware.

        Returns ``(status, body_bytes, content_type)``.  Every request
        through here — and only here; bare :meth:`handle` stays a pure
        routing function for unit tests — updates the in-flight gauge,
        the per-endpoint latency histogram, status-class counters, SLO
        samples, and the flight recorder.
        """
        started = self.telemetry.request_started()
        status = 500
        try:
            status, payload = self.handle(path, params, accept=accept)
        finally:
            # Unknown paths share one "unknown" route label so a URL
            # scanner cannot grow the metric namespace unboundedly.
            route = path if path in self.routes() else "unknown"
            self.telemetry.request_finished(route, status, started)
        if isinstance(payload, PlainText):
            return status, payload.text.encode("utf-8"), \
                payload.content_type
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return status, body, "application/json"

    @staticmethod
    def _param(params, name):
        """The single value of query param ``name``, or ``None``.

        Empty and repeated values are malformed (400).
        """
        if name not in params:
            return None
        values = [value for value in params[name] if value]
        if len(values) != 1:
            raise QueryError(400, f"parameter {name!r} needs exactly "
                                  f"one non-empty value")
        return values[0]

    # -- endpoints ------------------------------------------------------------

    def _healthz(self, params):
        status = self.ingester.status()
        self.telemetry.update_ingest(self.ingester)
        slo = self.telemetry.slo.summary()
        status["slo"] = slo
        # Liveness folds in the SLO verdict: a reachable server that is
        # blowing its objectives reports degraded/failing, not ok.
        status["status"] = slo["status"] if status["finished"] \
            else "ingesting"
        return status
    _healthz.params = ()

    def _metrics(self, params):
        fmt = self._param(params, "format") or "json"
        if fmt not in ("json", "prom"):
            raise QueryError(400, f"unknown metrics format {fmt!r} "
                                  f"(expected json or prom)")
        ctx = obs.current()
        snapshot = ctx.metrics.snapshot() if ctx.enabled else {}
        if fmt == "prom":
            return PlainText(render_prometheus(snapshot))
        return {"enabled": ctx.enabled, "metrics": snapshot}
    _metrics.params = ("format",)

    def _slo(self, params):
        self.telemetry.update_ingest(self.ingester)
        return self.telemetry.slo.evaluate()
    _slo.params = ()

    def _debug_recent(self, params):
        recorder = self.telemetry.recorder
        limit = self._param(params, "limit")
        events = recorder.snapshot()
        if limit is not None:
            try:
                limit = int(limit)
            except ValueError:
                raise QueryError(400, f"limit must be an integer, "
                                      f"got {limit!r}") from None
            if limit < 0:
                raise QueryError(400, "limit must be >= 0")
            events = events[-limit:] if limit else []
        return {"capacity": recorder.capacity,
                "events_seen": recorder.events_seen,
                "events": events}
    _debug_recent.params = ("limit",)

    def _doc(self, params):
        snapshot = self.snapshots["doc"]
        vendor = self._param(params, "vendor")
        if vendor is None:
            return snapshot
        if vendor not in snapshot["doc_vendor"]:
            raise QueryError(404, f"unknown vendor {vendor!r}")
        return {"vendor": vendor,
                "doc_vendor": snapshot["doc_vendor"][vendor],
                "doc_device": snapshot["doc_device"][vendor]}
    _doc.params = ("vendor",)

    def _fingerprints(self, params):
        snapshot = self.snapshots["fingerprint_index"]
        fp_id = self._param(params, "id")
        if fp_id is not None:
            entry = snapshot["fingerprints"].get(fp_id)
            if entry is None:
                raise QueryError(404,
                                 f"unknown fingerprint id {fp_id!r}")
            return entry
        limit = self._param(params, "limit")
        ids = sorted(snapshot["fingerprints"])
        if limit is not None:
            try:
                limit = int(limit)
            except ValueError:
                raise QueryError(400, f"limit must be an integer, "
                                      f"got {limit!r}") from None
            if limit < 0:
                raise QueryError(400, "limit must be >= 0")
            ids = ids[:limit]
        return {"fingerprint_count": snapshot["fingerprint_count"],
                "ids": ids}
    _fingerprints.params = ("id", "limit")

    def _match_rate(self, params):
        return self.snapshots["match_rate"]
    _match_rate.params = ()

    def _issuers(self, params):
        snapshot = self.snapshots["issuer_shares"]
        vendor = self._param(params, "vendor")
        if vendor is None:
            return snapshot
        column = snapshot["matrix"].get(vendor)
        if column is None:
            raise QueryError(404, f"unknown vendor {vendor!r}")
        total = sum(column.values())
        return {"vendor": vendor,
                "issuers": {org: count / total
                            for org, count in column.items()}}
    _issuers.params = ("vendor",)

    def _verdicts_route(self, params):
        sni = self._param(params, "sni")
        if sni is None:
            counts = {}
            for verdict in self.verdicts.values():
                counts[verdict["status"]] = \
                    counts.get(verdict["status"], 0) + 1
            return {"verdict_count": len(self.verdicts),
                    "status_counts": dict(sorted(counts.items()))}
        verdict = self.verdicts.get(sni)
        if verdict is None:
            raise QueryError(404, f"unknown sni {sni!r}")
        return verdict
    _verdicts_route.params = ("sni",)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`QueryService.handle`."""

    #: set by :func:`make_server`.
    service = None
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        status, body, content_type = self.service.handle_request(
            parsed.path,
            parse_qs(parsed.query, keep_blank_values=True),
            accept=self.headers.get("Accept"))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        """Suppress per-request stderr noise; obs counters cover it."""


def make_server(service, host="127.0.0.1", port=0):
    """A ``ThreadingHTTPServer`` bound to ``service`` (port 0: ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve_study(study, host="127.0.0.1", port=0, window_seconds=None,
                store=None, compact_every=4, clock=time.perf_counter):
    """Warm a query service over ``study`` and bind an HTTP server.

    Returns ``(server, service)``; the caller owns
    ``server.serve_forever()`` / ``server.shutdown()``.

    Boot activates an enabled observability context if none is active,
    so ``/metrics`` always has a live registry behind it — a server
    embedded by library code (no CLI wrapper) must never answer its
    scrape endpoint with an empty snapshot.
    """
    from repro.ingest.ingester import Ingester
    from repro.ingest.stream import DEFAULT_WINDOW_SECONDS
    obs.ensure_enabled()
    ingester = Ingester(
        study,
        window_seconds=window_seconds or DEFAULT_WINDOW_SECONDS,
        store=store, compact_every=compact_every)
    service = QueryService(study, ingester, clock=clock).warm()
    service.telemetry.update_ingest(ingester)
    return make_server(service, host=host, port=port), service
