"""Streaming ingestion + query serving over the capture timeline.

The batch pipeline (:mod:`repro.core.pipeline`) answers the paper's
questions by re-reading the whole 16-month capture per analysis.  This
package re-presents the same capture as a time-ordered stream
(:class:`TimelineStream`), folds it through incremental analyses
(:mod:`repro.ingest.incremental`) window by window under an
:class:`Ingester` that compacts state into the artifact store (so a
killed ingester resumes), and serves the warm results over a
stdlib-only HTTP/JSON API (:func:`serve_study`, i.e. ``repro serve``).
``repro verify streaming`` proves the streaming final state is
node-for-node identical to the batch pipeline's answers.
"""

from repro.ingest.incremental import (ANALYSIS_NAMES, batch_snapshots,
                                      default_analyses, fingerprint_id)
from repro.ingest.ingester import CHECKPOINT_STAGE, Ingester
from repro.ingest.loadgen import run_load
from repro.ingest.server import (API_VERSION, PlainText, QueryService,
                                 make_server, serve_study)
from repro.ingest.stream import (DEFAULT_WINDOW_SECONDS, TimelineStream,
                                 Window)

__all__ = [
    "ANALYSIS_NAMES",
    "API_VERSION",
    "CHECKPOINT_STAGE",
    "DEFAULT_WINDOW_SECONDS",
    "Ingester",
    "PlainText",
    "QueryService",
    "TimelineStream",
    "Window",
    "batch_snapshots",
    "default_analyses",
    "fingerprint_id",
    "make_server",
    "run_load",
    "serve_study",
]
