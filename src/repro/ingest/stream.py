"""The capture as a time-ordered record stream.

The paper's dataset is a 16-month crowdsourced ClientHello capture; the
batch pipeline materializes it all at once and every analysis re-reads
it from scratch.  :class:`TimelineStream` re-presents the same records
as an *ordered stream*: records sorted by capture timestamp (ties keep
the generator's deterministic order, so the stream is a pure function of
the :class:`~repro.config.StudyConfig`), chunked into fixed time windows
spanning ``CAPTURE_START``..``CAPTURE_END``.  Incremental analyses
(:mod:`repro.ingest.incremental`) consume the stream window by window,
and the :class:`~repro.ingest.ingester.Ingester` checkpoints between
windows — which is what makes a killed ingester resumable.

Every window in the span is emitted, including empty ones, so window
indexes are a pure function of the clock and compaction never depends on
traffic actually arriving.
"""

from dataclasses import dataclass, field

from repro.inspector.timeline import CAPTURE_END, CAPTURE_START, days

#: default window width: four weeks of capture time.
DEFAULT_WINDOW_SECONDS = days(28)


@dataclass(frozen=True)
class Window:
    """One time window of the capture stream."""

    index: int
    start: int           # inclusive, POSIX seconds
    end: int             # exclusive
    records: tuple = field(default_factory=tuple)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class TimelineStream:
    """ClientHello records in capture-time order, chunked into windows.

    Args:
        records: any iterable of
            :class:`~repro.inspector.model.ClientHelloRecord`.
        window_seconds: window width; the stream spans ``start``..``end``
            in fixed steps (the last window absorbs the remainder).
        start / end: capture span bounds (defaults: the paper's
            ``CAPTURE_START`` / ``CAPTURE_END``).  Records outside the
            span are clamped into the first/last window rather than
            dropped — the stream must conserve records for streaming ==
            batch to hold.
    """

    def __init__(self, records, window_seconds=DEFAULT_WINDOW_SECONDS,
                 start=CAPTURE_START, end=CAPTURE_END):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if end <= start:
            raise ValueError("capture span must be non-empty")
        #: stable sort: equal timestamps keep generator order, so the
        #: stream is deterministic for a given config.
        self.records = sorted(records, key=lambda r: r.timestamp)
        self.window_seconds = int(window_seconds)
        self.start = int(start)
        self.end = int(end)

    @classmethod
    def from_study(cls, study, window_seconds=DEFAULT_WINDOW_SECONDS):
        """The stream over a study's capture."""
        return cls(study.dataset.records, window_seconds=window_seconds)

    @property
    def window_count(self):
        span = self.end - self.start
        return max(1, -(-span // self.window_seconds))

    def window_index(self, timestamp):
        """The window an event at ``timestamp`` lands in (clamped)."""
        raw = (int(timestamp) - self.start) // self.window_seconds
        return min(max(raw, 0), self.window_count - 1)

    def window_bounds(self, index):
        """``(start, end)`` of window ``index`` (last absorbs remainder)."""
        start = self.start + index * self.window_seconds
        if index >= self.window_count - 1:
            return start, self.end
        return start, start + self.window_seconds

    def windows(self, after=-1):
        """Yield every :class:`Window` with ``index > after``, in order.

        ``after`` is the resume cursor: an ingester that compacted
        through window *n* re-enters the stream with ``after=n`` and
        sees only the windows it has not absorbed yet.
        """
        count = self.window_count
        buckets = [[] for _ in range(count)]
        for record in self.records:
            buckets[self.window_index(record.timestamp)].append(record)
        for index in range(max(after + 1, 0), count):
            start, end = self.window_bounds(index)
            yield Window(index=index, start=start, end=end,
                         records=tuple(buckets[index]))

    def __iter__(self):
        return self.windows()

    def __len__(self):
        return self.window_count
