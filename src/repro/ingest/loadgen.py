"""A stdlib load generator for the ``repro serve`` query API.

Drives a warm server with a deterministic round-robin mix of the hot
endpoints from ``workers`` threads (``urllib`` clients), recording
per-request wall latencies.  The summary — sustained queries/sec plus
p50/p99 latency — is what ``benchmarks/bench_serve.py`` folds into
``BENCH_serve.json`` for the bench gate.

No randomness: the request mix is a fixed rotation, so two runs against
the same server issue the identical request sequence.
"""

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import urlopen

#: the hot-path request mix, rotated round-robin by every worker.
DEFAULT_MIX = (
    "/healthz",
    "/v1/doc",
    "/v1/fingerprints?limit=25",
    "/v1/match-rate",
    "/v1/issuers",
    "/v1/verdicts",
)


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class LoadResult:
    """Latency + throughput summary of one load run."""

    def __init__(self, latencies_ms, errors, duration_s):
        self.latencies_ms = sorted(latencies_ms)
        self.errors = errors
        self.duration_s = duration_s

    @property
    def requests(self):
        return len(self.latencies_ms)

    @property
    def qps(self):
        if self.duration_s <= 0:
            return 0.0
        return self.requests / self.duration_s

    def to_json(self):
        return {
            "requests": self.requests,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "qps": round(self.qps, 2),
            "p50_ms": round(percentile(self.latencies_ms, 0.50), 3),
            "p99_ms": round(percentile(self.latencies_ms, 0.99), 3),
            "max_ms": round(self.latencies_ms[-1], 3)
            if self.latencies_ms else 0.0,
        }


def _worker(base_url, mix, offset, requests, latencies, errors, lock):
    local_latencies = []
    local_errors = 0
    for i in range(requests):
        url = base_url + mix[(offset + i) % len(mix)]
        begin = time.perf_counter()
        try:
            with urlopen(url, timeout=10) as response:
                payload = json.loads(response.read())
                if "data" not in payload:
                    local_errors += 1
        except (HTTPError, OSError, ValueError):
            local_errors += 1
        local_latencies.append(
            (time.perf_counter() - begin) * 1000.0)
    with lock:
        latencies.extend(local_latencies)
        errors.append(local_errors)


def run_load(base_url, requests_per_worker=50, workers=4,
             mix=DEFAULT_MIX):
    """Hammer ``base_url`` and return a :class:`LoadResult`.

    ``base_url`` is e.g. ``http://127.0.0.1:8437`` (no trailing slash).
    Workers start at staggered offsets into the mix so concurrent
    requests exercise different endpoints.
    """
    latencies, errors = [], []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(base_url, tuple(mix), index, requests_per_worker,
                  latencies, errors, lock),
            daemon=True)
        for index in range(workers)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - begin
    return LoadResult(latencies, sum(errors), duration)
