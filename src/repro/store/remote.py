"""The remote artifact-store backend: content-addressed blobs over HTTP.

A sweep campaign sharded across machines cannot share an on-disk
:class:`~repro.store.artifact.ArtifactStore` root, so the fabric
coordinator (:mod:`repro.fabric`) serves the store's raw ``.art`` blobs
over a two-verb HTTP interface and workers talk to it through
:class:`RemoteArtifactStore`:

- ``GET /blob/<key>`` — the raw blob bytes, 404 when absent;
- ``PUT /blob/<key>`` — upload one blob; the server re-derives the
  content key from the blob's own header and rejects any mismatch, so
  a client can never plant bytes under a key it does not own.

The client mirrors the local store's surface (``key``/``get``/``put``/
``get_or_compute``/``provenance``) and — crucially — its failure
discipline: **every defect degrades to a retriable miss, never to wrong
bytes.**  A truncated response, a checksum mismatch, a version-skewed
header, an HTTP 5xx, or an unreachable server all count a miss (with a
taxonomy counter) and the caller recomputes; nothing defective is ever
admitted to the cache.

A deterministic :class:`BlobCache` LRU fronts the network: hits are
served from memory without a round trip (a warm worker keeps working
through a coordinator restart), insertion order + access order fully
determine eviction order, and only blobs that already passed the
integrity checks are admitted.
"""

import pickle
import threading
import urllib.error
import urllib.request
from collections import OrderedDict

from repro import obs
from repro.store.artifact import MISS, content_key, decode_entry, \
    encode_entry

#: default number of verified blobs the client-side LRU holds.
DEFAULT_CACHE_ENTRIES = 64


class StoreUnreachable(RuntimeError):
    """The remote store's endpoint cannot be reached (one-line message)."""


class BlobCache:
    """A deterministic LRU of verified raw blobs, keyed by content key.

    Eviction is a pure function of the put/get sequence: ``put`` moves
    (or inserts) the key at the most-recent end, ``get`` refreshes it,
    and overflow evicts the least-recently-used key.  ``evicted``
    records the eviction order for tests and provenance.
    """

    def __init__(self, capacity=DEFAULT_CACHE_ENTRIES):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        #: content keys evicted so far, oldest first.
        self.evicted = []

    def get(self, key):
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
            return blob

    def put(self, key, blob):
        with self._lock:
            self._entries[key] = blob
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self.evicted.append(evicted)

    def discard(self, key):
        with self._lock:
            self._entries.pop(key, None)

    def keys(self):
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self):
        with self._lock:
            return len(self._entries)


class RemoteArtifactStore:
    """The HTTP artifact-store client (drop-in for ``ArtifactStore``).

    Speaks the same ``.art`` wire format as the local store — the same
    magic line, header, and payload SHA-256 — so digests and cache keys
    are byte-identical across backends, which is what lets a campaign
    move between ``--store-backend local`` and ``http`` mid-flight.
    """

    def __init__(self, base_url, version=None,
                 cache_entries=DEFAULT_CACHE_ENTRIES, timeout=10.0):
        from repro import __version__
        self.base_url = str(base_url).rstrip("/")
        self.version = __version__ if version is None else str(version)
        self.timeout = timeout
        self.cache = BlobCache(cache_entries)
        self._lock = threading.Lock()
        #: per-run cache traffic, by stage name (for provenance).
        self.hit_stages = []
        self.miss_stages = []
        self.written_stages = []
        self.error_stages = []

    # -- keying ---------------------------------------------------------------

    def key(self, config, stage):
        """The content key of ``(config, stage)`` under this version."""
        return content_key(config.artifact_digest(), stage, self.version)

    def _expected(self, config, stage):
        return {"artifact": config.artifact_digest(), "stage": stage,
                "version": self.version}

    def _url(self, key):
        return f"{self.base_url}/blob/{key}"

    # -- transport ------------------------------------------------------------

    def _fetch(self, key, stage):
        """GET one blob; ``None`` on any failure (404, 5xx, transport)."""
        try:
            with urllib.request.urlopen(self._url(key),
                                        timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            if exc.code != 404:
                obs.incr("store.remote_errors", key=f"get:{exc.code}")
            return None
        except OSError:
            obs.incr("store.remote_errors", key="get:unreachable")
            return None

    def _upload(self, key, blob):
        """PUT one blob; ``True`` iff the server accepted it."""
        request = urllib.request.Request(
            self._url(key), data=blob, method="PUT",
            headers={"Content-Type": "application/octet-stream"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return 200 <= response.status < 300
        except urllib.error.HTTPError as exc:
            obs.incr("store.remote_errors", key=f"put:{exc.code}")
            return False
        except OSError:
            obs.incr("store.remote_errors", key="put:unreachable")
            return False

    def ping(self):
        """Probe the endpoint; raises :class:`StoreUnreachable` if dead."""
        url = f"{self.base_url}/fabric/ping"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout):
                return True
        except urllib.error.HTTPError as exc:
            raise StoreUnreachable(
                f"store backend {self.base_url} answered "
                f"HTTP {exc.code} to a ping") from None
        except OSError as exc:
            reason = getattr(exc, "reason", None) or exc
            raise StoreUnreachable(
                f"store backend {self.base_url} is unreachable: "
                f"{reason}") from None

    # -- the store surface ----------------------------------------------------

    def get(self, config, stage):
        """The cached artifact for ``(config, stage)``, or :data:`MISS`.

        LRU first, network second; every defect along the way — missing
        blob, truncated body, checksum or header mismatch, server error,
        dead server — is a retriable miss and is never cached.
        """
        key = self.key(config, stage)
        expected = self._expected(config, stage)
        with obs.span("store.get") as span:
            blob = self.cache.get(key)
            if blob is not None:
                value = decode_entry(blob, expected)
                if value is not MISS:
                    obs.incr("store.lru_hits", key=stage)
                    return self._record_hit(stage, value)
                self.cache.discard(key)
            blob = self._fetch(key, stage)
            if blob is None:
                return self._miss(stage)
            value = decode_entry(blob, expected)
            if value is MISS:
                obs.incr("store.corrupt", key=stage)
                return self._miss(stage)
            span.incr("bytes", len(blob))
            self.cache.put(key, blob)
        return self._record_hit(stage, value)

    def _record_hit(self, stage, value):
        with self._lock:
            self.hit_stages.append(stage)
        obs.incr("store.hits", key=stage)
        return value

    def _miss(self, stage):
        with self._lock:
            self.miss_stages.append(stage)
        obs.incr("store.misses", key=stage)
        return MISS

    def put(self, config, stage, value):
        """Cache ``value`` remotely; returns the content key, or ``None``.

        Best-effort like the local store: an unpicklable value, a
        rejected upload, or a dead server is counted and skipped, never
        fatal — and a failed upload is *not* admitted to the local LRU,
        so a later ``get`` retries the network instead of serving a
        value the rest of the cluster never saw.
        """
        with obs.span("store.put") as span:
            try:
                payload = pickle.dumps(value,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            blob = encode_entry(config.artifact_digest(), stage,
                                self.version, payload)
            key = self.key(config, stage)
            if not self._upload(key, blob):
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            span.incr("bytes", len(blob))
            self.cache.put(key, blob)
        with self._lock:
            self.written_stages.append(stage)
        obs.incr("store.writes", key=stage)
        return key

    def get_or_compute(self, config, stage, compute):
        """``get``, falling back to ``compute()`` + ``put`` on a miss."""
        value = self.get(config, stage)
        if value is MISS:
            value = compute()
            self.put(config, stage, value)
        return value

    def provenance(self):
        """This run's cache traffic, for the run manifest."""
        with self._lock:
            return {
                "url": self.base_url,
                "version": self.version,
                "hits": sorted(self.hit_stages),
                "misses": sorted(self.miss_stages),
                "writes": sorted(self.written_stages),
                "errors": sorted(self.error_stages),
                "lru_entries": len(self.cache),
                "lru_evicted": len(self.cache.evicted),
            }
