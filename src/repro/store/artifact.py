"""The content-addressed artifact store.

One cache entry per ``(config artifact digest, stage name, package
version)`` triple.  The triple is hashed into a single content key; the
entry lives at ``<root>/<key[:2]>/<key>.art`` as::

    repro-artifact/1\\n
    {"artifact": ..., "stage": ..., "version": ..., "sha256": ..., ...}\\n
    <pickled payload bytes>

Design invariants:

- **Keyed by meaning, not by flags.**  The key uses
  :meth:`repro.config.StudyConfig.artifact_digest`, which covers every
  result-determining field (seed, vantages, retry policy, trust stores)
  and excludes pure-concurrency knobs, so ``probe --jobs 8`` and a
  serial ``report`` share artifacts.
- **Version-fenced.**  The package version participates in the key, so
  upgrading the code silently invalidates every cached artifact (old
  entries become unreachable; ``repro cache stats`` still counts them
  and ``repro cache clear`` removes them).
- **Corruption degrades to a miss.**  Reads verify the header and a
  SHA-256 of the payload; any mismatch (truncation, bit rot, a torn
  write) deletes the entry and reports a miss.  Writes go through a
  same-directory temp file and an atomic ``os.replace``, so a crashed
  writer can never leave a half-written entry under a live key.
- **Observable.**  ``get``/``put`` run inside ``store.get`` /
  ``store.put`` spans, hits and misses feed per-stage counter families
  (``store.hits`` / ``store.misses``), and :meth:`provenance`
  summarizes the run's cache traffic for the
  :class:`~repro.obs.manifest.RunManifest`.
"""

import hashlib
import io
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path

from repro import obs

_MAGIC = b"repro-artifact/1\n"
_SUFFIX = ".art"


class _Miss:
    """Sentinel for a cache miss (distinct from a cached ``None``)."""

    def __repr__(self):
        return "<repro.store.MISS>"

    def __bool__(self):
        return False


MISS = _Miss()


class ArtifactStore:
    """A persistent content-addressed cache of study artifacts."""

    def __init__(self, root, version=None):
        from repro import __version__
        self.root = Path(root)
        self.version = __version__ if version is None else str(version)
        self._lock = threading.Lock()
        #: per-run cache traffic, by stage name (for provenance).
        self.hit_stages = []
        self.miss_stages = []
        self.written_stages = []
        self.error_stages = []

    # -- keying ---------------------------------------------------------------

    def key(self, config, stage):
        """The content key of ``(config, stage)`` under this version."""
        payload = {
            "artifact": config.artifact_digest(),
            "stage": stage,
            "version": self.version,
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, config, stage):
        key = self.key(config, stage)
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    # -- read -----------------------------------------------------------------

    def get(self, config, stage):
        """The cached artifact for ``(config, stage)``, or :data:`MISS`.

        Any defect — absent entry, unreadable file, header mismatch,
        checksum failure, unpicklable payload — is a miss; defective
        entries are deleted so they are rebuilt cleanly.
        """
        path = self.path_for(config, stage)
        with obs.span("store.get") as span:
            try:
                raw = path.read_bytes()
            except OSError:
                return self._miss(stage)
            value = self._decode(raw, config, stage)
            if value is MISS:
                self._discard(path)
                obs.incr("store.corrupt", key=stage)
                return self._miss(stage)
            span.incr("bytes", len(raw))
        with self._lock:
            self.hit_stages.append(stage)
        obs.incr("store.hits", key=stage)
        return value

    def _decode(self, raw, config, stage):
        buffer = io.BytesIO(raw)
        if buffer.readline() != _MAGIC:
            return MISS
        try:
            header = json.loads(buffer.readline().decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return MISS
        payload = buffer.read()
        if header.get("sha256") != hashlib.sha256(payload).hexdigest():
            return MISS
        expected = {"artifact": config.artifact_digest(), "stage": stage,
                    "version": self.version}
        if any(header.get(field) != value
               for field, value in expected.items()):
            return MISS
        try:
            return pickle.loads(payload)
        except Exception:
            return MISS

    def _miss(self, stage):
        with self._lock:
            self.miss_stages.append(stage)
        obs.incr("store.misses", key=stage)
        return MISS

    @staticmethod
    def _discard(path):
        try:
            path.unlink()
        except OSError:
            pass

    # -- write ----------------------------------------------------------------

    def put(self, config, stage, value):
        """Cache ``value`` for ``(config, stage)``; returns its path.

        Caching is best-effort: an unpicklable value (or an unwritable
        cache directory) is counted and skipped, never fatal — the
        pipeline's correctness must not depend on the cache.
        """
        with obs.span("store.put") as span:
            try:
                payload = pickle.dumps(value,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            header = {
                "artifact": config.artifact_digest(),
                "stage": stage,
                "version": self.version,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "size": len(payload),
            }
            blob = (_MAGIC
                    + json.dumps(header, sort_keys=True).encode("utf-8")
                    + b"\n" + payload)
            path = self.path_for(config, stage)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = tempfile.NamedTemporaryFile(
                    dir=path.parent, prefix=".tmp-", delete=False)
                with handle:
                    handle.write(blob)
                os.replace(handle.name, path)
            except OSError:
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            span.incr("bytes", len(blob))
        with self._lock:
            self.written_stages.append(stage)
        obs.incr("store.writes", key=stage)
        return path

    def get_or_compute(self, config, stage, compute):
        """``get``, falling back to ``compute()`` + ``put`` on a miss."""
        value = self.get(config, stage)
        if value is MISS:
            value = compute()
            self.put(config, stage, value)
        return value

    # -- inspection / maintenance ---------------------------------------------

    def _entry_paths(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*/*{_SUFFIX}"))

    def entries(self):
        """Header metadata of every readable entry (any version)."""
        headers = []
        for path in self._entry_paths():
            try:
                with open(path, "rb") as handle:
                    if handle.readline() != _MAGIC:
                        continue
                    header = json.loads(
                        handle.readline().decode("utf-8"))
            except (OSError, UnicodeDecodeError, ValueError):
                continue
            header["path"] = str(path)
            headers.append(header)
        return headers

    def stats(self):
        """Aggregate cache statistics (entry counts, bytes, breakdowns)."""
        entries = self.entries()
        by_stage = {}
        by_version = {}
        total_bytes = 0
        for header in entries:
            size = header.get("size", 0)
            total_bytes += size
            stage = header.get("stage", "?")
            by_stage[stage] = by_stage.get(stage, 0) + 1
            version = header.get("version", "?")
            by_version[version] = by_version.get(version, 0) + 1
        return {
            "dir": str(self.root),
            "version": self.version,
            "entries": len(entries),
            "bytes": total_bytes,
            "by_stage": dict(sorted(by_stage.items())),
            "by_version": dict(sorted(by_version.items())),
        }

    def clear(self):
        """Delete every entry (all versions); returns how many."""
        removed = 0
        for path in self._entry_paths():
            self._discard(path)
            removed += 1
        if self.root.is_dir():
            for stray in self.root.glob("*/.tmp-*"):
                self._discard(stray)
        return removed

    def provenance(self):
        """This run's cache traffic, for the run manifest."""
        with self._lock:
            return {
                "dir": str(self.root),
                "version": self.version,
                "hits": sorted(self.hit_stages),
                "misses": sorted(self.miss_stages),
                "writes": sorted(self.written_stages),
                "errors": sorted(self.error_stages),
            }
