"""The content-addressed artifact store.

One cache entry per ``(config artifact digest, stage name, package
version)`` triple.  The triple is hashed into a single content key; the
entry lives at ``<root>/<key[:2]>/<key>.art`` as::

    repro-artifact/1\\n
    {"artifact": ..., "stage": ..., "version": ..., "sha256": ..., ...}\\n
    <pickled payload bytes>

Design invariants:

- **Keyed by meaning, not by flags.**  The key uses
  :meth:`repro.config.StudyConfig.artifact_digest`, which covers every
  result-determining field (seed, vantages, retry policy, trust stores)
  and excludes pure-concurrency knobs, so ``probe --jobs 8`` and a
  serial ``report`` share artifacts.
- **Version-fenced.**  The package version participates in the key, so
  upgrading the code silently invalidates every cached artifact (old
  entries become unreachable; ``repro cache stats`` still counts them
  and ``repro cache clear`` removes them).
- **Corruption degrades to a miss.**  Reads verify the header and a
  SHA-256 of the payload; any mismatch (truncation, bit rot, a torn
  write) deletes the entry and reports a miss.  Writes go through a
  same-directory temp file and an atomic ``os.replace``, so a crashed
  writer can never leave a half-written entry under a live key.
- **Observable.**  ``get``/``put`` run inside ``store.get`` /
  ``store.put`` spans, hits and misses feed per-stage counter families
  (``store.hits`` / ``store.misses``), and :meth:`provenance`
  summarizes the run's cache traffic for the
  :class:`~repro.obs.manifest.RunManifest`.
"""

import hashlib
import io
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path

from repro import obs

_MAGIC = b"repro-artifact/1\n"
_SUFFIX = ".art"


class _Miss:
    """Sentinel for a cache miss (distinct from a cached ``None``)."""

    def __repr__(self):
        return "<repro.store.MISS>"

    def __bool__(self):
        return False


MISS = _Miss()


# -- the shared .art wire format ----------------------------------------------
#
# Both store backends — the local on-disk store below and the remote
# HTTP store (:mod:`repro.store.remote`) — speak exactly this format, so
# a blob written by one is byte-for-byte readable (and verifiable) by
# the other, and a blob server can validate uploads without knowing the
# config that produced them: the content key is recomputable from the
# header alone.

def content_key(artifact, stage, version):
    """The content key of an ``(artifact digest, stage, version)`` triple."""
    payload = {"artifact": artifact, "stage": stage, "version": version}
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_entry(artifact, stage, version, payload):
    """The full ``.art`` blob for a pickled ``payload`` byte string."""
    header = {
        "artifact": artifact,
        "stage": stage,
        "version": version,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "size": len(payload),
    }
    return (_MAGIC + json.dumps(header, sort_keys=True).encode("utf-8")
            + b"\n" + payload)


def read_entry(raw):
    """Parse + integrity-check a raw blob; ``(header, payload)`` or ``None``.

    Verifies the magic line and the payload SHA-256 against the header —
    truncation, bit rot, and torn writes all return ``None``.
    """
    buffer = io.BytesIO(raw)
    if buffer.readline() != _MAGIC:
        return None
    try:
        header = json.loads(buffer.readline().decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(header, dict):
        return None
    payload = buffer.read()
    if header.get("sha256") != hashlib.sha256(payload).hexdigest():
        return None
    return header, payload


def decode_entry(raw, expected):
    """The cached value inside ``raw``, or :data:`MISS`.

    ``expected`` maps header fields (``artifact``/``stage``/``version``)
    to the values the caller's key was built from; any mismatch — the
    wrong blob, a version-skewed blob, a forged header — is a miss.
    """
    parsed = read_entry(raw)
    if parsed is None:
        return MISS
    header, payload = parsed
    if any(header.get(field) != value
           for field, value in expected.items()):
        return MISS
    try:
        return pickle.loads(payload)
    except Exception:
        return MISS


def blob_key_of(raw):
    """The content key a raw blob's own header claims, or ``None``.

    A blob server uses this to validate an upload end-to-end: the key
    recomputed from the header must equal the key the client addressed,
    and :func:`read_entry` has already checked the payload checksum.
    """
    parsed = read_entry(raw)
    if parsed is None:
        return None
    header, _ = parsed
    if not all(isinstance(header.get(field), str)
               for field in ("artifact", "stage", "version")):
        return None
    return content_key(header["artifact"], header["stage"],
                       header["version"])


class ArtifactStore:
    """A persistent content-addressed cache of study artifacts."""

    def __init__(self, root, version=None):
        from repro import __version__
        self.root = Path(root)
        self.version = __version__ if version is None else str(version)
        self._lock = threading.Lock()
        #: per-run cache traffic, by stage name (for provenance).
        self.hit_stages = []
        self.miss_stages = []
        self.written_stages = []
        self.error_stages = []

    # -- keying ---------------------------------------------------------------

    def key(self, config, stage):
        """The content key of ``(config, stage)`` under this version."""
        return content_key(config.artifact_digest(), stage, self.version)

    def path_for(self, config, stage):
        return self.blob_path(self.key(config, stage))

    def blob_path(self, key):
        """Where the raw ``.art`` blob for ``key`` lives under this root."""
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    # -- read -----------------------------------------------------------------

    def get(self, config, stage):
        """The cached artifact for ``(config, stage)``, or :data:`MISS`.

        Any defect — absent entry, unreadable file, header mismatch,
        checksum failure, unpicklable payload — is a miss; defective
        entries are deleted so they are rebuilt cleanly.
        """
        path = self.path_for(config, stage)
        with obs.span("store.get") as span:
            try:
                raw = path.read_bytes()
            except OSError:
                return self._miss(stage)
            value = self._decode(raw, config, stage)
            if value is MISS:
                self._discard(path)
                obs.incr("store.corrupt", key=stage)
                return self._miss(stage)
            span.incr("bytes", len(raw))
        with self._lock:
            self.hit_stages.append(stage)
        obs.incr("store.hits", key=stage)
        return value

    def _decode(self, raw, config, stage):
        return decode_entry(raw, {"artifact": config.artifact_digest(),
                                  "stage": stage,
                                  "version": self.version})

    def _miss(self, stage):
        with self._lock:
            self.miss_stages.append(stage)
        obs.incr("store.misses", key=stage)
        return MISS

    @staticmethod
    def _discard(path):
        try:
            path.unlink()
        except OSError:
            pass

    # -- write ----------------------------------------------------------------

    def put(self, config, stage, value):
        """Cache ``value`` for ``(config, stage)``; returns its path.

        Caching is best-effort: an unpicklable value (or an unwritable
        cache directory) is counted and skipped, never fatal — the
        pipeline's correctness must not depend on the cache.
        """
        with obs.span("store.put") as span:
            try:
                payload = pickle.dumps(value,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            blob = encode_entry(config.artifact_digest(), stage,
                                self.version, payload)
            path = self.path_for(config, stage)
            if not self._write_blob(path, blob):
                with self._lock:
                    self.error_stages.append(stage)
                obs.incr("store.errors", key=stage)
                return None
            span.incr("bytes", len(blob))
        with self._lock:
            self.written_stages.append(stage)
        obs.incr("store.writes", key=stage)
        return path

    @staticmethod
    def _write_blob(path, blob):
        """Atomically write one blob (temp file + rename); False on error."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=path.parent, prefix=".tmp-", delete=False)
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except OSError:
            return False
        return True

    # -- raw blob access (the remote-store server side) -----------------------

    def read_raw(self, key):
        """The raw ``.art`` bytes stored under ``key``, or ``None``."""
        try:
            return self.blob_path(key).read_bytes()
        except OSError:
            return None

    def write_raw(self, key, raw):
        """Store an uploaded blob after end-to-end validation.

        The blob must parse, pass its payload checksum, and its header
        must hash back to exactly ``key`` — a remote client can never
        plant bytes under a key they do not own.  Returns ``True`` when
        the blob landed.
        """
        if blob_key_of(raw) != key:
            return False
        return self._write_blob(self.blob_path(key), raw)

    def get_or_compute(self, config, stage, compute):
        """``get``, falling back to ``compute()`` + ``put`` on a miss."""
        value = self.get(config, stage)
        if value is MISS:
            value = compute()
            self.put(config, stage, value)
        return value

    # -- inspection / maintenance ---------------------------------------------

    def _entry_paths(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*/*{_SUFFIX}"))

    def entries(self):
        """Header metadata of every readable entry (any version)."""
        headers = []
        for path in self._entry_paths():
            try:
                with open(path, "rb") as handle:
                    if handle.readline() != _MAGIC:
                        continue
                    header = json.loads(
                        handle.readline().decode("utf-8"))
            except (OSError, UnicodeDecodeError, ValueError):
                continue
            header["path"] = str(path)
            headers.append(header)
        return headers

    def stats(self):
        """Aggregate cache statistics (entry counts, bytes, breakdowns)."""
        entries = self.entries()
        by_stage = {}
        by_version = {}
        total_bytes = 0
        for header in entries:
            size = header.get("size", 0)
            total_bytes += size
            stage = header.get("stage", "?")
            by_stage[stage] = by_stage.get(stage, 0) + 1
            version = header.get("version", "?")
            by_version[version] = by_version.get(version, 0) + 1
        return {
            "dir": str(self.root),
            "version": self.version,
            "entries": len(entries),
            "bytes": total_bytes,
            "by_stage": dict(sorted(by_stage.items())),
            "by_version": dict(sorted(by_version.items())),
        }

    def clear(self):
        """Delete every entry (all versions); returns how many."""
        removed = 0
        for path in self._entry_paths():
            self._discard(path)
            removed += 1
        if self.root.is_dir():
            for stray in self.root.glob("*/.tmp-*"):
                self._discard(stray)
        return removed

    def provenance(self):
        """This run's cache traffic, for the run manifest."""
        with self._lock:
            return {
                "dir": str(self.root),
                "version": self.version,
                "hits": sorted(self.hit_stages),
                "misses": sorted(self.miss_stages),
                "writes": sorted(self.written_stages),
                "errors": sorted(self.error_stages),
            }
