"""``repro.store`` — persistent artifacts and the analysis scheduler.

Large-scan pipelines (ZMap-style measurement, the DoH-IoT capture →
analyze split) never recompute an expensive artifact twice: the scan is
written once and every analysis reads it back.  This package gives the
reproduction the same shape:

- :class:`~repro.store.artifact.ArtifactStore` — a content-addressed
  on-disk cache keyed by ``(StudyConfig.artifact_digest(), stage,
  package version)``.  Every expensive artifact — the ClientHello
  capture, the three-vantage certificate dataset, the chain-validation
  survey, each individual analysis result — is stored once and reused by
  any later command with an equivalent config, so a warm ``repro
  report`` after ``repro probe`` is near-instant.  Entries carry a
  payload checksum; corruption, partial writes, and version mismatches
  all degrade to a cache miss, never to wrong bytes.
- :class:`~repro.store.scheduler.AnalysisScheduler` — executes a
  declarative registry of :class:`~repro.store.scheduler.AnalysisSpec`
  nodes in dependency (topological) order over a thread pool.  Results
  are byte-identical to the serial path at any ``jobs`` value, and every
  node transparently consults the store before computing.
- :class:`~repro.store.campaign.CampaignIndex` — the atomic (temp file +
  rename, like ``.art`` entries) campaign-level ledger a multi-config
  sweep (:mod:`repro.sweep`) writes after every finished unit, so a
  killed campaign resumes by re-running only incomplete configs.
"""

from repro.store.artifact import MISS, ArtifactStore
from repro.store.campaign import CampaignIndex, campaign_id_for
from repro.store.scheduler import AnalysisScheduler, AnalysisSpec

__all__ = ["MISS", "AnalysisScheduler", "AnalysisSpec", "ArtifactStore",
           "CampaignIndex", "campaign_id_for"]
