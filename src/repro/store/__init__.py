"""``repro.store`` — persistent artifacts and the analysis scheduler.

Large-scan pipelines (ZMap-style measurement, the DoH-IoT capture →
analyze split) never recompute an expensive artifact twice: the scan is
written once and every analysis reads it back.  This package gives the
reproduction the same shape:

- :class:`~repro.store.artifact.ArtifactStore` — a content-addressed
  on-disk cache keyed by ``(StudyConfig.artifact_digest(), stage,
  package version)``.  Every expensive artifact — the ClientHello
  capture, the three-vantage certificate dataset, the chain-validation
  survey, each individual analysis result — is stored once and reused by
  any later command with an equivalent config, so a warm ``repro
  report`` after ``repro probe`` is near-instant.  Entries carry a
  payload checksum; corruption, partial writes, and version mismatches
  all degrade to a cache miss, never to wrong bytes.
- :class:`~repro.store.scheduler.AnalysisScheduler` — executes a
  declarative registry of :class:`~repro.store.scheduler.AnalysisSpec`
  nodes in dependency (topological) order over a thread pool.  Results
  are byte-identical to the serial path at any ``jobs`` value, and every
  node transparently consults the store before computing.
- :class:`~repro.store.campaign.CampaignIndex` — the atomic (temp file +
  rename, like ``.art`` entries) campaign-level ledger a multi-config
  sweep (:mod:`repro.sweep`) writes after every finished unit, so a
  killed campaign resumes by re-running only incomplete configs.
- :class:`~repro.store.remote.RemoteArtifactStore` — the HTTP client for
  a store served by the fabric coordinator (:mod:`repro.fabric`): the
  same ``.art`` wire format and integrity checks as the local store,
  fronted by a deterministic in-memory LRU, with every defect degrading
  to a retriable miss.  :func:`~repro.store.backend.store_from_spec`
  turns the JSON backend spec a campaign ledger records into whichever
  store it names.
"""

from repro.store.artifact import MISS, ArtifactStore, blob_key_of, \
    content_key, decode_entry, encode_entry, read_entry
from repro.store.backend import http_spec, local_spec, store_from_spec
from repro.store.campaign import CampaignIndex, campaign_id_for
from repro.store.remote import BlobCache, RemoteArtifactStore, \
    StoreUnreachable
from repro.store.scheduler import AnalysisScheduler, AnalysisSpec

__all__ = ["MISS", "AnalysisScheduler", "AnalysisSpec", "ArtifactStore",
           "BlobCache", "CampaignIndex", "RemoteArtifactStore",
           "StoreUnreachable", "blob_key_of", "campaign_id_for",
           "content_key", "decode_entry", "encode_entry", "http_spec",
           "local_spec", "read_entry", "store_from_spec"]
