"""Store-backend specs: one JSON dict naming where artifacts live.

A sweep unit runs in whatever process (or machine) claims it, so the
campaign ledger and every worker payload describe the artifact store as
a small JSON **spec** instead of a live object:

- ``None`` — no caching;
- ``{"backend": "local", "dir": <path>}`` — an on-disk
  :class:`~repro.store.artifact.ArtifactStore`;
- ``{"backend": "http", "url": <base url>}`` — a
  :class:`~repro.store.remote.RemoteArtifactStore` client;
- ``{"backend": "http", "dir": <path>}`` — *self-served*: the fabric
  coordinator serves the blobs out of ``dir`` itself and resolves the
  spec to a concrete ``url`` form when handing out leases.  The
  unresolved form is what the ledger records, because the coordinator's
  port is ephemeral across runs.

:func:`store_from_spec` is the single factory both the local sweep
runner and the fabric worker use, so "which backend" is data that
travels with the campaign — a campaign started locally resumes on the
cluster (and vice versa) without any code change.
"""

from repro.store.artifact import ArtifactStore
from repro.store.remote import RemoteArtifactStore


def local_spec(cache_dir):
    """The spec of an on-disk store rooted at ``cache_dir`` (or ``None``)."""
    if cache_dir is None:
        return None
    return {"backend": "local", "dir": str(cache_dir)}


def http_spec(url=None, cache_dir=None):
    """The spec of a remote store: concrete ``url`` or self-served ``dir``."""
    if url:
        return {"backend": "http", "url": str(url).rstrip("/")}
    if cache_dir is None:
        raise ValueError("an http store spec needs a url or a cache dir")
    return {"backend": "http", "dir": str(cache_dir)}


def store_from_spec(spec):
    """Build the store a spec describes; ``None`` for no caching.

    An unresolved self-served spec (``http`` + ``dir``, no ``url``)
    cannot be dialed from here — the coordinator must resolve it first —
    so it raises ``ValueError`` rather than silently dropping caching.
    """
    if spec is None:
        return None
    backend = spec.get("backend", "local")
    if backend == "local":
        return ArtifactStore(spec["dir"])
    if backend == "http":
        url = spec.get("url")
        if not url:
            raise ValueError(
                "http store spec has no url; a self-served spec must be "
                "resolved by the coordinator before use")
        return RemoteArtifactStore(url)
    raise ValueError(f"unknown store backend {backend!r}")
