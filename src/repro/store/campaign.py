"""Campaign-level index: the resumable ledger of a multi-config sweep.

A sweep campaign (:mod:`repro.sweep`) executes many independent study
configurations; each one is expensive, so a crashed or killed campaign
must never re-pay for configs that already finished.  The
:class:`CampaignIndex` is the on-disk ledger making that possible: one
JSON file per campaign recording the full unit list plus, per unit key,
either the completed result payload or the failure reason.

Write discipline mirrors the artifact store's ``.art`` entries: every
update serializes the whole document to a same-directory temp file and
``os.replace``\\ s it into place, so a reader (or a resumed campaign)
can never observe a torn index — it sees the ledger as of the last
completed unit, which is exactly the resume point.

The index is keyed twice over:

- each unit by its **unit key** — a content digest over the unit's spec
  (which itself embeds the config's
  :meth:`~repro.config.StudyConfig.artifact_digest` inputs plus the
  sweep-only knobs: fault rates, probe latency scale, stage selection);
- the campaign by a **campaign id** — a digest over every unit key plus
  the package version, so ``sweep run`` against an existing out
  directory resumes when the campaign is the same and starts fresh when
  the grid (or the code generation) changed.
"""

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

#: current index file schema version.
CAMPAIGN_FORMAT = 1


def campaign_id_for(unit_keys, version):
    """Content id of a campaign: every unit key plus the code version."""
    payload = {"units": sorted(unit_keys), "version": version}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CampaignIndex:
    """The atomic on-disk ledger of one sweep campaign."""

    def __init__(self, path, payload):
        self.path = Path(path)
        self.payload = payload

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, path, units, stage, cache_dir=None, version=None,
               store=None, clock=time.time):
        """Start a fresh ledger for ``units`` (a sequence of unit specs).

        ``units`` must be JSON-serializable dicts each carrying a
        ``"key"`` field (the unit's content digest).  ``store`` is an
        optional store-backend spec (:mod:`repro.store.backend`); when
        omitted it is derived from ``cache_dir`` so older callers keep
        their local-store behaviour.
        """
        if version is None:
            from repro import __version__ as version
        units = [dict(unit) for unit in units]
        payload = {
            "format": CAMPAIGN_FORMAT,
            "campaign_id": campaign_id_for(
                [unit["key"] for unit in units], version),
            "version": version,
            "created_at": clock(),
            "stage": stage,
            "cache_dir": str(cache_dir) if cache_dir else None,
            "units": units,
            "completed": {},
            "failed": {},
        }
        if store is not None:
            payload["store"] = store
        index = cls(path, payload)
        index.save()
        return index

    @classmethod
    def load(cls, path):
        """Parse an index file; raises ``ValueError`` on a bad one."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ValueError(
                f"cannot read campaign index {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"campaign index {path} is not valid JSON: {exc}") from exc
        if payload.get("format") != CAMPAIGN_FORMAT:
            raise ValueError(
                f"campaign index {path} has format "
                f"{payload.get('format')!r}; this build reads format "
                f"{CAMPAIGN_FORMAT}")
        return cls(path, payload)

    # -- persistence ----------------------------------------------------------

    def save(self):
        """Atomically rewrite the whole ledger (temp file + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self.payload, indent=1, sort_keys=True) + "\n"
        handle = tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", dir=str(self.path.parent),
            prefix=".tmp-campaign-", delete=False)
        with handle:
            handle.write(blob)
        os.replace(handle.name, self.path)
        return self.path

    # -- the ledger -----------------------------------------------------------

    @property
    def campaign_id(self):
        return self.payload["campaign_id"]

    @property
    def stage(self):
        return self.payload.get("stage", "full")

    @property
    def cache_dir(self):
        return self.payload.get("cache_dir")

    @property
    def store_spec(self):
        """The campaign's store-backend spec (:mod:`repro.store.backend`).

        Ledgers written before the fabric existed carry only
        ``cache_dir``; those resolve to the equivalent local spec so a
        pre-fabric campaign resumes unchanged on either backend.
        """
        spec = self.payload.get("store")
        if spec is not None:
            return dict(spec)
        cache_dir = self.cache_dir
        if cache_dir:
            return {"backend": "local", "dir": cache_dir}
        return None

    @property
    def units(self):
        """Every unit spec, in campaign order."""
        return list(self.payload["units"])

    @property
    def completed(self):
        """``{unit key: result payload}`` of finished units."""
        return self.payload["completed"]

    @property
    def failed(self):
        """``{unit key: error string}`` of failed units."""
        return self.payload["failed"]

    def pending_units(self):
        """Unit specs not yet completed, in campaign order.

        Previously *failed* units are pending again — a resume retries
        them (their failure reason is cleared when they complete).
        """
        return [unit for unit in self.units
                if unit["key"] not in self.completed]

    def complete(self, key, result):
        """Record one finished unit and persist the ledger."""
        self.payload["completed"][key] = result
        self.payload["failed"].pop(key, None)
        self.save()

    def fail(self, key, error):
        """Record one failed unit (kept pending for resume) and persist."""
        self.payload["failed"][key] = str(error)
        self.save()

    def results(self):
        """Completed result payloads, in campaign unit order."""
        return [self.completed[unit["key"]] for unit in self.units
                if unit["key"] in self.completed]

    def matches(self, unit_keys, version=None):
        """Whether this ledger describes exactly ``unit_keys`` at ``version``."""
        if version is None:
            from repro import __version__ as version
        return self.campaign_id == campaign_id_for(unit_keys, version)
