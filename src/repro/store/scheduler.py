"""Dependency-aware concurrent execution of the analysis registry.

:mod:`repro.core.pipeline` used to hand-order ~30 analysis calls; the
registry/scheduler split makes the ordering *data*: each analysis is an
:class:`AnalysisSpec` naming its inputs, and :class:`AnalysisScheduler`
runs the registry in topological order — serially for ``jobs=1``, over a
thread pool otherwise.

Determinism contract: the returned mapping is byte-identical to the
serial path at any ``jobs`` value.  Three properties make that hold:

- every analysis is a pure function of its declared inputs, so execution
  *order* can't change any value;
- worker interleaving only decides *when* a node runs, never what it
  sees — a node is submitted only after every input is resolved;
- the output mapping is assembled after the run, in registry declaration
  order, so key order (and therefore serialized bytes) never depends on
  completion order.

When a store is attached, each cacheable node consults it before
computing (stage name ``analysis.<side>.<name>``), which is what makes a
warm re-run of the full pipeline near-instant.  Base resources (the
dataset, the certificate capture, the validator...) are resolved
*lazily*: a fully-cached run never touches them, so it never pays for
world generation or probing at all.
"""

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro import obs
from repro.store.artifact import MISS


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis node: a named pure function over named inputs.

    Attributes:
        name: unique node name (also the default result key).
        fn: callable taking a ``{input name: value}`` dict.  With one
            ``provides`` key it returns the bare value; with several it
            returns a tuple aligned with ``provides``.
        inputs: names this node consumes — base resources or result
            keys ``provides``-ed by other nodes in the same registry.
        provides: result keys this node contributes (default:
            ``(name,)``).
        span: tracing span name (default ``analysis.<side>.<name>``).
        cacheable: whether the artifact store may persist the result.
        tally: optional ``tally(span, value)`` hook for per-node span
            counters.
    """

    name: str
    fn: object
    inputs: tuple = ()
    provides: tuple = None
    span: str = None
    cacheable: bool = True
    tally: object = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "inputs", tuple(self.inputs))
        provides = (self.name,) if self.provides is None \
            else tuple(self.provides)
        object.__setattr__(self, "provides", provides)


class _LazyResources:
    """Base inputs resolved (and memoized) only on first use."""

    def __init__(self, mapping):
        self._mapping = dict(mapping)
        self._resolved = {}
        self._lock = threading.RLock()

    def __contains__(self, name):
        return name in self._mapping

    def resolve(self, name):
        with self._lock:
            if name not in self._resolved:
                provider = self._mapping[name]
                self._resolved[name] = provider() \
                    if callable(provider) else provider
            return self._resolved[name]


class AnalysisScheduler:
    """Runs one registry of specs in dependency order.

    Args:
        specs: the registry, in the declaration order the output mapping
            should have.
        side: registry label (``"client"``/``"server"``); prefixes span
            and cache-stage names.
        jobs: worker threads (1 = the serial reference path).
        store: optional :class:`~repro.store.artifact.ArtifactStore`.
        config: the :class:`~repro.config.StudyConfig` keying the store.
        node_observer: optional ``observer(stage_name, packed_value)``
            called exactly once per node, with the node's packed result
            — whether computed or served from the store.  The
            conformance harness (:mod:`repro.verify`) uses this to
            collect per-node digests/snapshots without re-running
            anything; observers may run on worker threads and must be
            thread-safe for distinct stage names.
    """

    def __init__(self, specs, side, jobs=1, store=None, config=None,
                 node_observer=None):
        self.specs = tuple(specs)
        self.side = side
        self.jobs = max(1, int(jobs))
        self.store = store
        self.config = config
        self.node_observer = node_observer
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate analysis names in registry")
        self._producer = {}
        for spec in self.specs:
            for key in spec.provides:
                if key in self._producer:
                    raise ValueError(f"result key {key!r} provided twice")
                self._producer[key] = spec

    def stage_name(self, spec):
        return f"analysis.{self.side}.{spec.name}"

    # -- single-node execution ------------------------------------------------

    def _execute(self, spec, resources, values):
        """Run one node (store-aware); returns its packed result."""
        use_store = (self.store is not None and self.config is not None
                     and spec.cacheable)
        if use_store:
            cached = self.store.get(self.config, self.stage_name(spec))
            if cached is not MISS:
                self._observe(spec, cached)
                return cached
        inputs = {}
        for name in spec.inputs:
            if name in self._producer:
                inputs[name] = values[name]
            else:
                inputs[name] = resources.resolve(name)
        with obs.span(spec.span
                      or f"analysis.{self.side}.{spec.name}") as span:
            packed = spec.fn(inputs)
            if spec.tally is not None:
                spec.tally(span, packed)
        if use_store:
            self.store.put(self.config, self.stage_name(spec), packed)
        self._observe(spec, packed)
        return packed

    def _observe(self, spec, packed):
        if self.node_observer is not None:
            self.node_observer(self.stage_name(spec), packed)

    def _unpack(self, spec, packed, values):
        if len(spec.provides) == 1:
            values[spec.provides[0]] = packed
        else:
            for key, item in zip(spec.provides, packed):
                values[key] = item

    # -- the run loop ---------------------------------------------------------

    def run(self, resources):
        """Execute every node; returns ``{result key: value}``.

        ``resources`` maps base-input names to values or zero-argument
        callables (resolved lazily, once).  Key order of the returned
        dict follows the registry declaration order regardless of
        ``jobs``.
        """
        resources = _LazyResources(resources)
        values = {}
        dependents = {spec.name: [] for spec in self.specs}
        blockers = {}
        for spec in self.specs:
            needs = {self._producer[name].name for name in spec.inputs
                     if name in self._producer}
            needs.discard(spec.name)
            blockers[spec.name] = needs
            for upstream in needs:
                dependents[upstream].append(spec.name)
        by_name = {spec.name: spec for spec in self.specs}
        ready = [spec for spec in self.specs if not blockers[spec.name]]
        if len(ready) < len(self.specs):
            self._check_acyclic(blockers)
        if self.jobs == 1:
            self._run_serial(ready, blockers, dependents, by_name,
                             resources, values)
        else:
            self._run_pooled(ready, blockers, dependents, by_name,
                             resources, values)
        out = {}
        for spec in self.specs:
            for key in spec.provides:
                out[key] = values[key]
        return out

    def _check_acyclic(self, blockers):
        remaining = {name: set(needs)
                     for name, needs in blockers.items()}
        while remaining:
            free = [name for name, needs in remaining.items()
                    if not needs]
            if not free:
                raise ValueError(
                    f"dependency cycle among {sorted(remaining)}")
            for name in free:
                del remaining[name]
            for needs in remaining.values():
                needs.difference_update(free)

    def _run_serial(self, ready, blockers, dependents, by_name,
                    resources, values):
        queue = list(ready)
        while queue:
            spec = queue.pop(0)
            self._unpack(spec, self._execute(spec, resources, values),
                         values)
            for name in dependents[spec.name]:
                blockers[name].discard(spec.name)
                if not blockers[name]:
                    queue.append(by_name[name])

    def _run_pooled(self, ready, blockers, dependents, by_name,
                    resources, values):
        lock = threading.Lock()
        with ThreadPoolExecutor(max_workers=self.jobs,
                                thread_name_prefix="analysis") as pool:
            running = {
                pool.submit(self._execute, spec, resources, values): spec
                for spec in ready}
            while running:
                done, _pending = wait(running,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    spec = running.pop(future)
                    packed = future.result()  # re-raises node errors
                    newly_ready = []
                    with lock:
                        self._unpack(spec, packed, values)
                        for name in dependents[spec.name]:
                            blockers[name].discard(spec.name)
                            if not blockers[name]:
                                newly_ready.append(by_name[name])
                    for next_spec in newly_ready:
                        running[pool.submit(self._execute, next_spec,
                                            resources, values)] = \
                            next_spec
