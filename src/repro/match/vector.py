"""Bitset fingerprint encoding: popcount set algebra on plain ints.

The matching analytics compare *sets* — a vendor's fingerprint set, a
ClientHello's suite/extension feature set — millions of times at scale.
Python ``set`` intersection allocates a new set per comparison; a
fixed-width int bitset answers the same question with two bitwise ops
and a popcount, an order of magnitude faster and allocation-free.

- :class:`FeatureSpace` is the shared token → bit-position bijection a
  family of vectors is encoded against (positions are assigned in first-
  seen order, so one builder produces one deterministic layout);
- :class:`FingerprintVector` wraps the encoded int with the exact set
  operations the analytics need (`intersection_count`, `union_count`,
  `jaccard`);
- :func:`set_jaccard` is the reference implementation on plain sets —
  the non-deprecated home of what ``repro.core.sharing.jaccard`` used
  to compute.

The Jaccard contract (pinned by tests, shared with the legacy
``sharing.jaccard``): two empty sets → ``0.0``; one empty set → ``0.0``;
``jaccard(s, s) == 1.0`` for non-empty ``s``; symmetric; bounded in
``[0, 1]``.  Popcounts and set cardinalities are the same integers, so
the float ratios are bit-identical between the two implementations.

Everything here is stdlib-only (``int.bit_count`` on Python >= 3.10,
with a ``bin().count`` fallback for 3.9) — no numpy.
"""


def _popcount_native(value):
    return value.bit_count()


def _popcount_compat(value):
    return bin(value).count("1")


#: number of set bits in a non-negative int (3.9-compatible).
popcount = _popcount_native if hasattr(int, "bit_count") \
    else _popcount_compat


def set_jaccard(set_a, set_b):
    """Jaccard similarity of two plain sets (0.0 for two empty sets)."""
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def bits_from_positions(positions):
    """The bitset int with exactly ``positions`` set.

    Builds through a little-endian bytearray instead of repeated
    ``bits |= 1 << p`` — each big-int OR copies the whole integer, so
    the naive loop is O(k * width) while this is O(k + width).
    """
    positions = list(positions)
    if not positions:
        return 0
    buf = bytearray(max(positions) // 8 + 1)
    for position in positions:
        buf[position >> 3] |= 1 << (position & 7)
    return int.from_bytes(bytes(buf), "little")


def fingerprint_tokens(fp):
    """The feature-token set of one 3-tuple ClientHello fingerprint.

    Tokens are namespaced int pairs — ``(0, version)``, ``(1, suite)``,
    ``(2, extension)`` — so a suite code and an extension code with the
    same numeric value stay distinct features.  Int-only tokens keep
    ``hash()`` (and therefore every derived structure) independent of
    ``PYTHONHASHSEED``.
    """
    version, suites, extensions = fp
    tokens = {(0, int(version))}
    tokens.update((1, int(code)) for code in suites)
    tokens.update((2, int(code)) for code in extensions)
    return tokens


class FeatureSpace:
    """A grow-on-first-sight bijection from tokens to bit positions.

    All vectors that should be comparable must be encoded against the
    *same* space instance; :meth:`FingerprintVector.jaccard` enforces
    this.  Positions are dense (0, 1, 2, ...) in first-seen order, which
    keeps the bitset ints as narrow as the observed universe.
    """

    def __init__(self):
        self._positions = {}
        self._tokens = []

    def __len__(self):
        return len(self._positions)

    def position(self, token):
        """The bit position for ``token``, assigning one if new."""
        pos = self._positions.get(token)
        if pos is None:
            pos = self._positions[token] = len(self._tokens)
            self._tokens.append(token)
        return pos

    def positions(self, tokens):
        """Sorted bit positions for a token set (assigning new ones)."""
        if not isinstance(tokens, (set, frozenset)):
            tokens = set(tokens)
        position = self.position
        return sorted([position(token) for token in tokens])

    def token_at(self, position):
        return self._tokens[position]

    def encode(self, tokens):
        """The bitset int for a token set."""
        return bits_from_positions(self.position(token)
                                   for token in set(tokens))

    def decode(self, bits):
        """The token set a bitset int encodes."""
        tokens = set()
        position = 0
        while bits:
            if bits & 1:
                tokens.add(self._tokens[position])
            bits >>= 1
            position += 1
        return tokens


class FingerprintVector:
    """A fixed-width bitset over a :class:`FeatureSpace`.

    Construction goes through :meth:`from_tokens` (any hashable tokens)
    or :meth:`from_fingerprint` (the canonical 3-tuple ClientHello
    fingerprint, tokenized by :func:`fingerprint_tokens`).
    """

    __slots__ = ("bits", "space", "_count")

    def __init__(self, bits, space):
        self.bits = bits
        self.space = space
        self._count = popcount(bits)

    @classmethod
    def from_tokens(cls, tokens, space):
        return cls(space.encode(tokens), space)

    @classmethod
    def from_fingerprint(cls, fp, space):
        return cls(space.encode(fingerprint_tokens(fp)), space)

    @property
    def count(self):
        """Number of features set (``len()`` of the encoded set)."""
        return self._count

    def __len__(self):
        return self._count

    def __eq__(self, other):
        return (isinstance(other, FingerprintVector)
                and self.space is other.space
                and self.bits == other.bits)

    def __hash__(self):
        return hash((id(self.space), self.bits))

    def __repr__(self):
        return (f"FingerprintVector(count={self._count}, "
                f"space={len(self.space)} features)")

    def tokens(self):
        return self.space.decode(self.bits)

    def _check_space(self, other):
        if self.space is not other.space:
            raise ValueError(
                "vectors from different FeatureSpaces are not "
                "comparable; encode both against one space")

    def intersection_count(self, other):
        self._check_space(other)
        return popcount(self.bits & other.bits)

    def union_count(self, other):
        self._check_space(other)
        return popcount(self.bits | other.bits)

    def jaccard(self, other):
        """Exact Jaccard similarity via two popcounts.

        Same contract as :func:`set_jaccard`: 0.0 when both vectors are
        empty, and the exact same float otherwise (identical integer
        numerator/denominator).
        """
        self._check_space(other)
        union = popcount(self.bits | other.bits)
        if union == 0:
            return 0.0
        return popcount(self.bits & other.bits) / union
