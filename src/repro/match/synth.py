"""Deterministic synthetic worlds for matching benchmarks and fuzzing.

The paper's measurement world is fixed (962 fingerprints across 65
vendors), so demonstrating the "10x world size" north-star requires a
scaled world that keeps the *shape* of the real one: vendors with
overlapping fingerprint sets, fingerprints that perturb real suites and
extensions.  Everything here is seeded — same inputs, same world —
because `BENCH_match.json` numbers must be reproducible and fuzz
failures must replay.

- :func:`random_universe` — a random family of token sets for property
  and fuzz tests (no dataset required);
- :func:`scaled_vendor_sets` — clone every vendor's fingerprint set
  ``factor`` times, tagging each clone's fingerprints with a
  clone-specific marker extension so within-clone overlap survives
  while clones stay disjoint from each other (pair structure scales
  linearly, candidate structure stays honest);
- :func:`scaled_fingerprints` — mutate real fingerprints (seeded suite
  drops/insertions) into ``factor`` times as many distinct ones.
"""

import random

#: extension-code base used to tag clone k (clear of real TLS codes).
CLONE_TAG_BASE = 0xF000


def random_universe(items, universe=200, min_size=1, max_size=30,
                    seed=0):
    """``items`` random token sets drawn from ``range(universe)``.

    Returns ``{item_id: frozenset(tokens)}`` with ids ``"item-000"``...
    Deterministic for a given seed.
    """
    rng = random.Random(seed)
    sets = {}
    for index in range(items):
        size = rng.randint(min_size, max_size)
        sets[f"item-{index:03d}"] = frozenset(
            rng.sample(range(universe), min(size, universe)))
    return sets


def _tag_fingerprint(fp, clone):
    """Append a clone-marker extension to one 3-tuple fingerprint."""
    version, suites, extensions = fp
    return (version, tuple(suites),
            tuple(extensions) + (CLONE_TAG_BASE + clone,))


def scaled_vendor_sets(dataset, factor, seed=0):
    """A ``factor``-times-larger vendor → fingerprint-set world.

    Clone 0 is the original dataset verbatim.  Clone ``k >= 1`` maps
    vendor ``v`` to ``v#k`` and tags each of its fingerprints with
    extension ``CLONE_TAG_BASE + k`` — so similarity structure *within*
    a clone matches the original exactly, while fingerprints (and thus
    Jaccard overlap) across clones are disjoint.  The similar-pair
    count scales by ``factor``; the total pair count by ``factor**2``.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    base = {vendor: dataset.vendor_fingerprints(vendor)
            for vendor in dataset.vendor_names()}
    world = {}
    for clone in range(factor):
        for vendor, fingerprints in base.items():
            name = vendor if clone == 0 else f"{vendor}#{clone}"
            if clone == 0:
                world[name] = set(fingerprints)
            else:
                world[name] = {_tag_fingerprint(fp, clone)
                               for fp in fingerprints}
    return world


def scaled_fingerprints(dataset, factor, seed=0):
    """``factor`` times as many distinct fingerprints, seeded mutations.

    Copy 0 is the real fingerprint list.  Copy ``k >= 1`` perturbs each
    fingerprint with ``random.Random(seed + k)``: drop one suite (if
    more than one) or insert a synthetic high-code suite, then tag with
    the clone-marker extension to guarantee distinctness from every
    other copy.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    originals = sorted(dataset.fingerprints())
    world = list(originals)
    seen = set(world)
    for clone in range(1, factor):
        rng = random.Random(seed + clone)
        for fp in originals:
            version, suites, extensions = fp
            suites = list(suites)
            if len(suites) > 1 and rng.random() < 0.5:
                suites.pop(rng.randrange(len(suites)))
            else:
                suites.insert(rng.randrange(len(suites) + 1),
                              0xE000 + rng.randrange(0x1000))
            mutated = _tag_fingerprint(
                (version, tuple(suites), extensions), clone)
            while mutated in seen:
                # two originals can mutate into the same fingerprint;
                # keep the world distinct with a fresh synthetic suite.
                suites.append(0xE000 + rng.randrange(0x1000))
                mutated = _tag_fingerprint(
                    (version, tuple(suites), extensions), clone)
            seen.add(mutated)
            world.append(mutated)
    return world
