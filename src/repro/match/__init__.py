"""``repro.match`` — the sketch-accelerated matching core.

The unified home of every set-similarity and corpus-matching primitive
the Section 4 analytics use.  Layering, bottom up:

- :mod:`repro.match.vector` — bitset encoding (:class:`FeatureSpace`,
  :class:`FingerprintVector`) and the reference :func:`set_jaccard`;
- :mod:`repro.match.sketch` — MinHash signatures and LSH banding
  (:class:`SketchParams`, :class:`MinHasher`, :class:`LSHIndex`);
- :mod:`repro.match.index` — :class:`SimilarityIndex` (exact queries
  over pruned candidates) and :class:`CorpusIndex` (the library-corpus
  accelerator);
- :mod:`repro.match.engine` — :class:`MatchEngine`, the mode-aware
  facade the legacy free functions in :mod:`repro.core.matching` and
  :mod:`repro.core.sharing` now delegate to.

Exactness is the package invariant: sketches prune candidates, never
results.  Every query rescans its candidates with exact popcount
Jaccard, so ``exact`` and ``sketch`` modes are digest-identical (proven
per-node by ``repro verify matrix``).
"""

from repro.match.engine import (MatchEngine, active_mode, engine_mode,
                                seed_for_config, set_default_mode,
                                shared_engine)
from repro.match.index import SUITE_PREFIX, CorpusIndex, SimilarityIndex
from repro.match.sketch import LSHIndex, MinHasher, SketchParams
from repro.match.vector import (FeatureSpace, FingerprintVector,
                                fingerprint_tokens, popcount,
                                set_jaccard)

__all__ = [
    "CorpusIndex",
    "FeatureSpace",
    "FingerprintVector",
    "LSHIndex",
    "MatchEngine",
    "MinHasher",
    "SUITE_PREFIX",
    "SimilarityIndex",
    "SketchParams",
    "active_mode",
    "engine_mode",
    "fingerprint_tokens",
    "popcount",
    "seed_for_config",
    "set_default_mode",
    "set_jaccard",
    "shared_engine",
]
