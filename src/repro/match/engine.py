"""The matching engine: one facade, two proven-equivalent backends.

:class:`MatchEngine` owns every Section 4 matching analytic — corpus
matching (4.1), cross-vendor Jaccard similarity (4.4, Table 4), and
shared server-specific fingerprint discovery (4.4, Table 5) — behind
two execution modes:

- ``"exact"`` — the reference algorithms: per-fingerprint corpus dict
  lookup, O(V^2) pairwise set Jaccard;
- ``"sketch"`` — the accelerated path: :class:`CorpusIndex` resolved
  keys, bitset popcount Jaccard, and inverted-index candidate pruning
  with exact rescoring.

The two modes are *digest-identical by construction* (candidates are
always rescored exactly; the float ratios divide the same integers) and
*digest-identical by proof*: the ``sketch`` execution mode in
:mod:`repro.verify.matrix` runs the full pipeline under each and
asserts every analysis node's canonical digest agrees.

Mode selection is ambient: free functions in :mod:`repro.core.matching`
/ :mod:`repro.core.sharing` delegate to :func:`shared_engine`, which
honours :func:`active_mode` — set process-wide with
:func:`set_default_mode` or scoped with the :func:`engine_mode` context
manager (what the equivalence matrix uses).

Determinism contract: sketch seeds never influence results (exact
rescoring), but signatures themselves are reproducible too —
:meth:`MatchEngine.for_config` derives the MinHash seed from
``StudyConfig.digest()``, so two processes running one config build
byte-identical sketches.
"""

import threading
import weakref
from contextlib import contextmanager

from repro.core.matching import MatchReport
from repro.match.index import CorpusIndex, SimilarityIndex
from repro.match.sketch import SketchParams
from repro.match.vector import set_jaccard

#: the supported execution modes.
MODES = ("exact", "sketch")

#: MinHash seed used when no StudyConfig is in play.
DEFAULT_SKETCH_SEED = 0x1077

_mode_lock = threading.Lock()
_default_mode = "exact"
_shared_engines = {}


def _check_mode(mode):
    if mode not in MODES:
        raise ValueError(f"unknown match mode {mode!r}; "
                         f"expected one of {MODES}")
    return mode


def active_mode():
    """The process-wide default matching mode."""
    return _default_mode


def set_default_mode(mode):
    """Set the default mode; returns the previous one."""
    global _default_mode
    _check_mode(mode)
    with _mode_lock:
        previous = _default_mode
        _default_mode = mode
    return previous


@contextmanager
def engine_mode(mode):
    """Scope the default matching mode (restores on exit)."""
    previous = set_default_mode(mode)
    try:
        yield
    finally:
        set_default_mode(previous)


def shared_engine(mode=None):
    """The process-shared engine for a mode (default: active mode)."""
    resolved = _check_mode(mode if mode is not None else active_mode())
    with _mode_lock:
        engine = _shared_engines.get(resolved)
        if engine is None:
            engine = _shared_engines[resolved] = \
                MatchEngine(mode=resolved)
    return engine


def seed_for_config(config):
    """The deterministic sketch seed a StudyConfig pins."""
    return int(config.digest()[:16], 16)


class MatchEngine:
    """Facade over the matching analytics, exact or sketch-accelerated.

    Engines are cheap to construct and safe to share: the expensive
    structures (corpus indexes, per-dataset similarity indexes) are
    built once per input object and cached under weak references, so a
    garbage-collected dataset releases its index.
    """

    def __init__(self, mode="exact", seed=DEFAULT_SKETCH_SEED,
                 params=None):
        self.mode = _check_mode(mode)
        self.seed = seed
        self.params = params if params is not None else SketchParams()
        self._lock = threading.Lock()
        self._corpus_indexes = weakref.WeakKeyDictionary()
        self._vendor_indexes = weakref.WeakKeyDictionary()

    @classmethod
    def for_config(cls, config, mode="sketch", params=None):
        """An engine whose sketch seed is pinned by the config digest."""
        return cls(mode=mode, seed=seed_for_config(config),
                   params=params)

    def __repr__(self):
        return (f"MatchEngine(mode={self.mode!r}, seed={self.seed:#x}, "
                f"params={self.params})")

    # -- cached indexes -------------------------------------------------------

    def corpus_index(self, corpus):
        """The (cached) :class:`CorpusIndex` for a library corpus."""
        with self._lock:
            index = self._corpus_indexes.get(corpus)
            if index is None:
                index = self._corpus_indexes[corpus] = CorpusIndex(
                    corpus, params=self.params, seed=self.seed)
        return index

    def vendor_index(self, dataset):
        """The (cached) vendor-fingerprint-set :class:`SimilarityIndex`."""
        with self._lock:
            index = self._vendor_indexes.get(dataset)
            if index is None:
                index = SimilarityIndex(params=self.params,
                                        seed=self.seed)
                for vendor in dataset.vendor_names():
                    index.add(vendor,
                              dataset.vendor_fingerprints(vendor))
                self._vendor_indexes[dataset] = index
        return index

    def _matcher(self, corpus):
        """The exact corpus matcher the mode selects."""
        if self.mode == "sketch":
            return self.corpus_index(corpus).match
        return corpus.match

    # -- Section 4.1: corpus matching -----------------------------------------

    def match_report(self, dataset, corpus):
        """The Section 4.1 analysis (see :class:`MatchReport`)."""
        matcher = self._matcher(corpus)
        fingerprints = dataset.fingerprints()
        report = MatchReport(total_fingerprints=len(fingerprints))
        for fp in fingerprints:
            library = matcher(*fp)
            if library is not None:
                report.matched[fp] = library
                report.device_counts[fp] = len(
                    dataset.fingerprint_devices(fp))
        return report

    def validate_case_study(self, dataset, corpus, vendor):
        """Matched library names for one vendor (Wyze/Enphase case)."""
        matcher = self._matcher(corpus)
        matches = set()
        for fp in dataset.vendor_fingerprints(vendor):
            library = matcher(*fp)
            if library is not None:
                matches.add(library.full_name)
        return sorted(matches)

    def near_matches(self, fp, corpus, threshold=0.7, limit=10):
        """Libraries Jaccard-similar to a device fingerprint.

        Mode-independent new capability (there is no legacy path): the
        exact threshold search of :meth:`CorpusIndex.near_matches`.
        """
        return self.corpus_index(corpus).near_matches(
            fp, threshold=threshold, limit=limit)

    # -- Section 4.4: cross-vendor similarity ---------------------------------

    def vendor_similarity_pairs(self, dataset, threshold=0.2):
        """Table 4 — vendor pairs with Jaccard >= ``threshold``.

        Returns ``[(similarity, vendor_a, vendor_b), ...]`` sorted by
        ``(-similarity, vendor_a, vendor_b)`` — byte-identical between
        modes.
        """
        if self.mode == "sketch":
            return self.vendor_index(dataset).all_pairs(threshold)
        from itertools import combinations
        vendors = dataset.vendor_names()
        fingerprint_sets = {v: dataset.vendor_fingerprints(v)
                            for v in vendors}
        pairs = []
        for vendor_a, vendor_b in combinations(vendors, 2):
            similarity = set_jaccard(fingerprint_sets[vendor_a],
                                     fingerprint_sets[vendor_b])
            if similarity >= threshold:
                pairs.append((similarity, vendor_a, vendor_b))
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        return pairs

    # -- Section 4.4: servers as a proxy for applications ---------------------

    def server_specific_fingerprints(self, dataset, corpus=None):
        """Table 5 — SNIs tied to server-specific fingerprints.

        Same algorithm in both modes; the corpus-match exclusion of
        known-library fingerprints goes through the mode's matcher.
        Returns ``(fraction_of_snis_tied, ties)``.
        """
        from collections import defaultdict

        from repro.core.security import fingerprint_vulnerable_components
        from repro.core.sharing import ServerFingerprintTie
        from repro.x509.names import second_level_domain

        matcher = self._matcher(corpus) if corpus is not None else None
        # For each (device, fp): the set of SLDs it was seen toward.
        slds_by_device_fp = defaultdict(set)
        for record in dataset.records:
            if record.sni:
                slds_by_device_fp[
                    (record.device_id, record.fingerprint())].add(
                        second_level_domain(record.sni))
        tied_snis = set()
        # (sld, fp) -> (set of fqdns, set of devices)
        aggregates = defaultdict(lambda: (set(), set()))
        total_snis = 0
        for sni in dataset.snis():
            total_snis += 1
            sld = second_level_domain(sni)
            for fp in dataset.sni_fingerprints(sni):
                if matcher is not None and matcher(*fp) is not None:
                    continue
                devices = {d for d, f
                           in dataset.sni_device_fingerprints(sni)
                           if f == fp}
                if not devices:
                    continue
                # Server-specific: each such device uses fp only toward
                # this SLD, and multiple devices share the behaviour.
                if len(devices) >= 2 and all(
                        slds_by_device_fp[(d, fp)] == {sld}
                        for d in devices):
                    tied_snis.add(sni)
                    fqdns, all_devices = aggregates[(sld, fp)]
                    fqdns.add(sni)
                    all_devices.update(devices)
        ties = []
        for (sld, fp), (fqdns, devices) in aggregates.items():
            if len(devices) < 2:
                continue  # exclude single-device outliers (paper's rule)
            vendors = tuple(sorted({dataset.device_vendor(d)
                                    for d in devices}))
            if len(vendors) < 2:
                continue  # Table 5 reports cross-vendor ties
            ties.append(ServerFingerprintTie(
                sld=sld, fingerprint=fp, fqdn_count=len(fqdns),
                device_count=len(devices), vendors=vendors,
                vulnerable_components=tuple(
                    fingerprint_vulnerable_components(fp))))
        ties.sort(key=lambda tie: (-tie.device_count, tie.sld))
        fraction = len(tied_snis) / max(1, total_snis)
        return fraction, ties

    # -- introspection --------------------------------------------------------

    def stats(self, dataset=None, corpus=None):
        """Engine parameters plus stats of any built/buildable indexes."""
        payload = {
            "mode": self.mode,
            "seed": self.seed,
            "num_hashes": self.params.num_hashes,
            "bands": self.params.bands,
            "rows_per_band": self.params.rows,
        }
        if corpus is not None:
            payload["corpus"] = self.corpus_index(corpus).stats()
        if dataset is not None:
            payload["vendors"] = self.vendor_index(dataset).stats()
        return payload
