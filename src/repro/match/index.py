"""Similarity and corpus indexes: candidate pruning + exact rescoring.

Two index structures back the :class:`~repro.match.engine.MatchEngine`:

- :class:`SimilarityIndex` — a set-similarity index over arbitrary
  items.  Candidates come from two complementary generators: an
  *element inverted index* (items sharing >= 1 feature), which is
  provably complete for any Jaccard threshold > 0 (``J(A, B) >= t > 0``
  implies a shared element), and MinHash/LSH *band buckets*, which
  catch high-similarity pairs in O(signature).  Every candidate is
  rescored through the exact bitset Jaccard, so query results are
  exactly what a brute-force scan would return — the sketches only
  decide how little work gets to the rescoring pass.
- :class:`CorpusIndex` — the library-corpus accelerator: full
  fingerprint keys resolve O(1) to the pre-computed highest matching
  version (the paper's "highest version j" rule), an inverted
  ``(tls_version, suite-prefix)`` index buckets the corpus for
  prefiltering, and near-match queries run over the *distinct*
  fingerprint keys (6,891 corpus entries collapse to a few dozen
  distinct keys) instead of scanning every entry.
"""

from collections import defaultdict

from repro.match.sketch import LSHIndex, MinHasher, SketchParams
from repro.match.vector import (FeatureSpace, FingerprintVector,
                                bits_from_positions,
                                fingerprint_tokens)

#: suite-prefix length of the corpus inverted index.
SUITE_PREFIX = 8


class SimilarityIndex:
    """Exact set-similarity search with sketch-pruned candidates.

    Items are added with :meth:`add` (any sortable, hashable ids).
    Queries guarantee *exactness*: :meth:`query` and :meth:`all_pairs`
    return precisely the items/pairs a brute-force exact Jaccard scan
    would, in a deterministic order.  MinHash signatures are built
    lazily — indexes that never touch the sketch API never pay for it.
    """

    def __init__(self, params=None, seed=0, space=None):
        self.params = params if params is not None else SketchParams()
        self.seed = seed
        self.space = space if space is not None else FeatureSpace()
        self._vectors = {}        # item id -> FingerprintVector
        self._positions = {}      # item id -> sorted bit positions
        self._postings = defaultdict(list)  # bit position -> [ids]
        self._by_bits = defaultdict(list)   # bitset int -> [ids]
        self._hasher = None
        self._lsh = None
        self._signatures = {}

    def __len__(self):
        return len(self._vectors)

    def __contains__(self, item_id):
        return item_id in self._vectors

    def items(self):
        return sorted(self._vectors)

    def vector(self, item_id):
        return self._vectors[item_id]

    def add(self, item_id, tokens):
        """Index one item; re-adding an existing id is an error."""
        if item_id in self._vectors:
            raise ValueError(f"item already indexed: {item_id!r}")
        positions = self.space.positions(tokens)
        vector = FingerprintVector(bits_from_positions(positions),
                                   self.space)
        self._vectors[item_id] = vector
        self._positions[item_id] = tuple(positions)
        for position in positions:
            self._postings[position].append(item_id)
        self._by_bits[vector.bits].append(item_id)
        if self._hasher is not None:
            signature = self._hasher.signature(positions)
            self._signatures[item_id] = signature
            self._lsh.add(item_id, signature)
        return vector

    # -- sketches (lazy) ------------------------------------------------------

    def _ensure_sketches(self):
        if self._hasher is None:
            self._hasher = MinHasher(self.params, seed=self.seed)
            self._lsh = LSHIndex(self.params)
            for item_id, positions in self._positions.items():
                signature = self._hasher.signature(positions)
                self._signatures[item_id] = signature
                self._lsh.add(item_id, signature)

    def signature(self, item_id):
        self._ensure_sketches()
        return self._signatures[item_id]

    def estimate(self, item_a, item_b):
        """Sketch-estimated Jaccard between two indexed items."""
        self._ensure_sketches()
        return self._hasher.estimate(self._signatures[item_a],
                                     self._signatures[item_b])

    def lsh_candidates(self, tokens):
        """Items sharing >= 1 LSH band bucket with the token set."""
        self._ensure_sketches()
        positions = self.space.positions(tokens)
        return self._lsh.candidates(self._hasher.signature(positions))

    # -- candidate generation -------------------------------------------------

    def element_candidates(self, tokens):
        """Items sharing >= 1 feature — complete for any threshold > 0."""
        found = set()
        for position in self.space.positions(tokens):
            found.update(self._postings.get(position, ()))
        return found

    def candidate_pairs(self):
        """The pruned pair universe: element pairs ∪ LSH band pairs.

        Contract (fuzz-tested): a superset of every pair with exact
        Jaccard >= any threshold > 0, because two sets with positive
        Jaccard share an element and therefore a posting list.
        """
        return self._element_pairs() | self._lsh_pairs()

    def _element_pairs(self):
        from itertools import combinations
        pairs = set()
        for posting in self._postings.values():
            if len(posting) > 1:
                pairs.update(combinations(sorted(posting), 2))
        return pairs

    def _lsh_pairs(self):
        self._ensure_sketches()
        return self._lsh.candidate_pairs()

    # -- exact queries --------------------------------------------------------

    def query(self, tokens, threshold, limit=None):
        """Exact-threshold search: ``[(similarity, item_id), ...]``.

        Scans the *distinct* vectors (identical sets share one popcount)
        inside the size window ``[t * |q|, |q| / t]`` implied by the
        threshold, rescoring each exactly.  Results are every indexed
        item with ``jaccard >= threshold``, sorted by
        ``(-similarity, item_id)``.
        """
        probe = FingerprintVector.from_tokens(tokens, self.space)
        hits = []
        for bits, members in self._by_bits.items():
            vector = self._vectors[members[0]]
            if threshold > 0 and probe.count:
                # J >= t implies t*|B| <= |A| and t*|A| <= |B|; the 1e-9
                # slack keeps float rounding from skipping a boundary
                # candidate (exactness is non-negotiable, speed is not).
                size = vector.count
                if size * threshold - probe.count > 1e-9 \
                        or probe.count * threshold - size > 1e-9:
                    continue
            similarity = probe.jaccard(vector)
            if similarity >= threshold:
                hits.extend((similarity, member) for member in members)
        hits.sort(key=lambda hit: (-hit[0], hit[1]))
        return hits if limit is None else hits[:limit]

    def all_pairs(self, threshold):
        """Every pair at or above the threshold, exactly.

        For ``threshold > 0`` the pair universe is pruned through the
        element inverted index (complete by the shared-element
        argument) before exact popcount rescoring; ``threshold <= 0``
        falls back to the full pairwise scan, because disjoint pairs
        (similarity 0.0) have no shared posting to be found through.
        Returns ``[(similarity, a, b), ...]`` with ``a < b``, sorted by
        ``(-similarity, a, b)``.
        """
        results = []
        if threshold > 0:
            # Element pairs alone are complete for t > 0; folding in
            # the LSH band pairs (candidate_pairs) would only add
            # sketch-build cost without changing the result.
            for item_a, item_b in self._element_pairs():
                similarity = self._vectors[item_a].jaccard(
                    self._vectors[item_b])
                if similarity >= threshold:
                    results.append((similarity, item_a, item_b))
        else:
            members = self.items()
            for i, item_a in enumerate(members):
                vec_a = self._vectors[item_a]
                for item_b in members[i + 1:]:
                    similarity = vec_a.jaccard(self._vectors[item_b])
                    if similarity >= threshold:
                        results.append((similarity, item_a, item_b))
        results.sort(key=lambda row: (-row[0], row[1], row[2]))
        return results

    def stats(self):
        postings = [len(ids) for ids in self._postings.values()]
        payload = {
            "items": len(self._vectors),
            "distinct_vectors": len(self._by_bits),
            "feature_space": len(self.space),
            "num_hashes": self.params.num_hashes,
            "bands": self.params.bands,
            "rows_per_band": self.params.rows,
            "seed": self.seed,
            "max_posting": max(postings) if postings else 0,
            "candidate_pairs": len(self._element_pairs()),
            "total_pairs": len(self._vectors)
            * (len(self._vectors) - 1) // 2,
        }
        if self._lsh is not None:
            payload["lsh"] = self._lsh.bucket_stats()
        return payload


class CorpusIndex:
    """The library-corpus matcher: O(1) exact, pruned near-match.

    Wraps a :class:`~repro.libraries.corpus.LibraryCorpus` with:

    - ``_best_by_key``: every distinct fingerprint key resolved *once*
      to its highest matching library version (identical semantics to
      ``LibraryCorpus.match``, amortized over all lookups);
    - an inverted index from ``(tls_version, suites[:SUITE_PREFIX])``
      to the distinct keys behind that prefix;
    - a :class:`SimilarityIndex` over distinct keys for exact
      threshold-Jaccard near-matching (the Active TLS Stack
      Fingerprinting "feature match" direction).
    """

    def __init__(self, corpus, params=None, seed=0):
        from repro.libraries.base import version_sort_key
        self.corpus = corpus
        self._entry_count = len(corpus)
        self._best_by_key = {}
        self._entries_by_key = defaultdict(list)
        self._prefix_index = defaultdict(list)
        for entry in corpus:
            self._entries_by_key[entry.key()].append(entry)
        for key, entries in self._entries_by_key.items():
            self._best_by_key[key] = max(
                entries, key=lambda fp: (fp.library,
                                         version_sort_key(fp.version)))
            version, suites, _extensions = key
            self._prefix_index[(version,
                                suites[:SUITE_PREFIX])].append(key)
        for keys in self._prefix_index.values():
            keys.sort()
        self.similarity = SimilarityIndex(params=params, seed=seed)
        for key in sorted(self._best_by_key):
            self.similarity.add(key, fingerprint_tokens(key))

    def __len__(self):
        return self._entry_count

    @property
    def distinct_count(self):
        return len(self._best_by_key)

    def match(self, tls_version, ciphersuites, extensions):
        """Exact match — same result as ``LibraryCorpus.match``."""
        from repro.libraries.base import fingerprint_key
        return self._best_by_key.get(
            fingerprint_key(tls_version, ciphersuites, extensions))

    def entries(self, key):
        """Every corpus entry (across versions) behind one key."""
        return list(self._entries_by_key.get(key, ()))

    def prefix_candidates(self, tls_version, ciphersuites):
        """Distinct keys sharing the (version, suite-prefix) bucket."""
        return list(self._prefix_index.get(
            (int(tls_version), tuple(ciphersuites)[:SUITE_PREFIX]), ()))

    def near_matches(self, fp, threshold=0.7, limit=10):
        """Libraries whose fingerprint is Jaccard-similar to ``fp``.

        Exact: returns ``[(similarity, LibraryFingerprint), ...]`` for
        every distinct corpus key with feature-set Jaccard >=
        ``threshold``, highest-version entry per key, sorted by
        ``(-similarity, key)``.
        """
        hits = self.similarity.query(fingerprint_tokens(fp), threshold,
                                     limit=limit)
        return [(similarity, self._best_by_key[key])
                for similarity, key in hits]

    def stats(self):
        return {
            "entries": self._entry_count,
            "distinct_keys": self.distinct_count,
            "dedup_ratio": round(self._entry_count
                                 / max(1, self.distinct_count), 2),
            "prefix_buckets": len(self._prefix_index),
            "suite_prefix": SUITE_PREFIX,
            "similarity": self.similarity.stats(),
        }
