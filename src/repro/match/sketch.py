"""MinHash sketches and LSH banding for Jaccard candidate generation.

The sketch layer estimates set similarity in O(signature) instead of
O(set), and buckets items so that similar pairs collide:

- :class:`SketchParams` pins the signature width and banding shape;
- :class:`MinHasher` computes deterministic MinHash signatures over
  :class:`~repro.match.vector.FeatureSpace` bit positions, using
  universal hashing ``h_i(x) = (a_i * (x + 1) + b_i) mod p`` with
  coefficients drawn from ``random.Random(seed)`` — fixed seeds make
  signatures reproducible across processes and platforms;
- :class:`LSHIndex` hashes signatures band-wise into buckets; items
  sharing any band bucket are *sketch candidates* for high-Jaccard
  pairs.

Determinism contract: signatures depend only on (params, seed, bit
positions).  :class:`~repro.match.engine.MatchEngine` derives its seed
from ``StudyConfig.digest()`` so every run of a config sketches
identically.  Sketches are always *candidates-only*: every consumer in
:mod:`repro.match` rescoring through the exact bitset Jaccard, so
sketch parameters can never change an analytic result — only how fast
it is reached.
"""

import random
from collections import defaultdict
from dataclasses import dataclass

#: Mersenne prime 2^61 - 1: the universal-hash modulus.
_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class SketchParams:
    """Shape of a MinHash/LSH configuration.

    ``num_hashes`` MinHash functions are split into ``bands`` bands of
    ``num_hashes // bands`` rows each.  With ``b`` bands of ``r`` rows,
    a pair of Jaccard similarity ``s`` collides in at least one band
    with probability ``1 - (1 - s^r)^b`` — more bands catch lower
    similarities, more rows per band sharpen the cutoff.
    """

    num_hashes: int = 64
    bands: int = 16

    def __post_init__(self):
        if self.num_hashes < 1 or self.bands < 1:
            raise ValueError("num_hashes and bands must be >= 1")
        if self.num_hashes % self.bands:
            raise ValueError(
                f"bands ({self.bands}) must divide num_hashes "
                f"({self.num_hashes})")

    @property
    def rows(self):
        """Signature rows per band."""
        return self.num_hashes // self.bands

    def collision_probability(self, similarity):
        """P(any band collides) for a pair at the given Jaccard."""
        return 1.0 - (1.0 - similarity ** self.rows) ** self.bands


class MinHasher:
    """Deterministic MinHash signatures over int feature positions."""

    def __init__(self, params=None, seed=0):
        self.params = params if params is not None else SketchParams()
        self.seed = seed
        rng = random.Random(seed)
        self._coefficients = tuple(
            (rng.randrange(1, _PRIME), rng.randrange(0, _PRIME))
            for _ in range(self.params.num_hashes))

    def signature(self, positions):
        """The MinHash signature of a set of bit positions.

        The empty set signs as all-``_PRIME`` (no hash value is ever
        that large), so empty sets only ever collide with each other.
        """
        if not positions:
            return (_PRIME,) * self.params.num_hashes
        signature = []
        for mul, add in self._coefficients:
            signature.append(min((mul * (pos + 1) + add) % _PRIME
                                 for pos in positions))
        return tuple(signature)

    def estimate(self, signature_a, signature_b):
        """Estimated Jaccard: fraction of agreeing signature rows."""
        agree = sum(1 for a, b in zip(signature_a, signature_b)
                    if a == b)
        return agree / len(signature_a)


class LSHIndex:
    """Band-bucketed signatures: items sharing a bucket are candidates."""

    def __init__(self, params=None):
        self.params = params if params is not None else SketchParams()
        #: (band index, band tuple) -> [item ids]
        self._buckets = defaultdict(list)

    def _band_keys(self, signature):
        rows = self.params.rows
        for band in range(self.params.bands):
            yield band, signature[band * rows:(band + 1) * rows]

    def add(self, item_id, signature):
        for key in self._band_keys(signature):
            self._buckets[key].append(item_id)

    def candidates(self, signature):
        """Every item sharing at least one band bucket."""
        found = set()
        for key in self._band_keys(signature):
            found.update(self._buckets.get(key, ()))
        return found

    def candidate_pairs(self):
        """All ``(a, b)`` (a < b) pairs co-bucketed in any band."""
        pairs = set()
        for bucket in self._buckets.values():
            if len(bucket) < 2:
                continue
            members = sorted(set(bucket))
            for i, item_a in enumerate(members):
                for item_b in members[i + 1:]:
                    pairs.add((item_a, item_b))
        return pairs

    def bucket_stats(self):
        sizes = [len(set(bucket)) for bucket in self._buckets.values()]
        return {
            "buckets": len(sizes),
            "max_bucket": max(sizes) if sizes else 0,
            "multi_item_buckets": sum(1 for size in sizes if size > 1),
        }
