"""Study configuration: one frozen value object drives everything.

A :class:`StudyConfig` pins every knob a study run has — the world seed,
the probing vantage points, the probe engine's concurrency and retry
policy, and which major trust stores the validator unions — so a study is
reproducible from its config alone.  It is hashable (all-frozen fields),
which is what lets :func:`repro.study.get_study` memoize per config.

Construction is config-first everywhere: the legacy bare-seed
``get_study(seed=...)`` shim in :mod:`repro.study` is gone — it raises
``TypeError`` with the ``StudyConfig(seed=...)`` migration spelling.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.probing.engine import RetryPolicy
from repro.probing.vantage import VANTAGE_POINTS

DEFAULT_SEED = 2023

#: The three synthetic major root programs (paper Section 5.3).
MAJOR_STORES = ("mozilla", "apple", "microsoft")


@dataclass(frozen=True)
class StudyConfig:
    """Everything that parameterizes one study run."""

    seed: int = DEFAULT_SEED
    #: vantage points the prober scans from (paper: NY/Frankfurt/SG).
    vantages: tuple = VANTAGE_POINTS
    #: worker threads for the probe engine; 1 = the serial reference path.
    probe_jobs: int = 1
    #: retry/backoff/timeout policy for every probe.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: which major stores the chain validator unions (Zeek-style).
    trust_stores: tuple = MAJOR_STORES

    def __post_init__(self):
        if self.probe_jobs < 1:
            raise ValueError("probe_jobs must be >= 1")
        if not self.vantages:
            raise ValueError("at least one vantage point is required")
        unknown = set(self.trust_stores) - set(MAJOR_STORES)
        if unknown:
            raise ValueError(f"unknown trust stores: {sorted(unknown)}")
        if not self.trust_stores:
            raise ValueError("at least one trust store is required")
        if len(set(self.trust_stores)) != len(tuple(self.trust_stores)):
            raise ValueError("duplicate trust stores")
        # Normalize list arguments so equal configs hash equally.  Trust
        # stores are a *set* (the validator unions them, and union is
        # commutative), so their order is canonicalized too: two configs
        # naming the same stores in any order compare, hash, and digest
        # identically.
        object.__setattr__(self, "vantages", tuple(self.vantages))
        object.__setattr__(self, "trust_stores",
                           tuple(sorted(self.trust_stores)))

    def with_seed(self, seed):
        """This config with a different world seed."""
        return StudyConfig(seed=seed, vantages=self.vantages,
                           probe_jobs=self.probe_jobs, retry=self.retry,
                           trust_stores=self.trust_stores)

    def digest(self):
        """A stable content hash of every field (run-manifest identity).

        Two configs digest equally iff they compare equal; the digest is
        stable across processes (canonical JSON, not ``hash()``), which
        is what lets a :class:`~repro.obs.manifest.RunManifest` written
        by one run be checked against a config built by another.
        """
        payload = {
            "seed": self.seed,
            "vantages": [asdict(vantage) for vantage in self.vantages],
            "probe_jobs": self.probe_jobs,
            "retry": asdict(self.retry),
            "trust_stores": list(self.trust_stores),
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def artifact_digest(self):
        """A content hash of the *result-determining* fields only.

        The artifact store (:mod:`repro.store`) keys cached artifacts by
        this digest: two configs that can only differ in wall-clock —
        ``probe_jobs`` is pure concurrency, documented to never change
        output bytes — share every artifact, so ``repro probe --jobs 8``
        followed by ``repro report`` (jobs 1) is a cache hit.  Everything
        that *can* change bytes (seed, vantages, retry budget, trust-store
        selection) stays in.
        """
        payload = {
            "seed": self.seed,
            "vantages": [asdict(vantage) for vantage in self.vantages],
            "retry": asdict(self.retry),
            "trust_stores": list(self.trust_stores),
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
