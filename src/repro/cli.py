"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  build the world and save the anonymized ClientHello
  capture as JSONL (the artifact the paper open-sources);
- ``probe``     probe every SNI from the three vantage points and save a
  per-server certificate summary;
- ``report``    run the full analysis pipeline and write the markdown
  study report;
- ``audit``     client- and server-side audit of one vendor;
- ``whatif``    run the recommendation experiments (ACME adoption, AIA
  chasing, revocation exposure);
- ``trace-summary``  render a ``--trace`` JSONL file (top spans by
  self-time, metric table, manifest line).

Observability (``repro.obs``) is active for every command: add
``--trace trace.jsonl`` to stream span/metric/manifest events to JSONL,
``--metrics`` to print the metric table, and find a provenance
``<artifact>.manifest.json`` (seed, config digest, version, stage
timings, metric snapshot) next to every file a command writes.
"""

import argparse
import json
import sys
import time

from repro import obs
from repro.obs.manifest import RunManifest, manifest_path_for
from repro.study import DEFAULT_SEED, StudyConfig, get_study


def _add_seed(parser):
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="world seed (default %(default)s)")


def _add_obs(parser):
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write tracing spans, metric snapshot, and "
                             "run manifest as JSONL events to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metric table after the command")


def cmd_generate(args):
    from repro.inspector.io import save_records
    study = get_study(StudyConfig(seed=args.seed))
    dataset = study.dataset
    with obs.span("cli.write_output"):
        save_records(dataset.records, args.output)
    args.artifacts.append(args.output)
    print(f"wrote {len(dataset.records)} ClientHello records from "
          f"{dataset.device_count} devices ({dataset.vendor_count} "
          f"vendors, {dataset.user_count} users) to {args.output}")
    return 0


def cmd_probe(args):
    from repro.probing.engine import RetryPolicy
    try:
        config = StudyConfig(seed=args.seed, probe_jobs=args.jobs,
                             retry=RetryPolicy(max_attempts=args.retries))
    except ValueError as exc:
        print(f"probe: {exc}", file=sys.stderr)
        return 2
    args.config = config
    study = get_study(config)
    certificates = study.certificates
    rows = certificates.to_json_rows(ct_logs=study.network.ct_logs)
    with obs.span("cli.write_output"):
        with open(args.output, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
    args.artifacts.append(args.output)
    reachable = sum(1 for row in rows if row["reachable"])
    print(f"probed {len(rows)} SNIs ({reachable} reachable); "
          f"wrote {args.output}")
    if args.stats and certificates.stats is not None:
        print(certificates.stats.summary())
    return 0


def cmd_report(args):
    from repro.core.pipeline import run_full_study
    from repro.core.report import render_report
    study = get_study(seed=args.seed)
    results = run_full_study(study)
    with obs.span("cli.render_report"):
        text = render_report(results, seed=args.seed)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        args.artifacts.append(args.output)
        print(f"wrote study report to {args.output}")
    return 0


def cmd_audit(args):
    from repro.core.customization import doc_vendor
    from repro.core.issuers import issuer_report
    from repro.core.matching import validate_case_study
    from repro.core.tables import percent
    study = get_study(seed=args.seed)
    dataset = study.dataset
    vendor = args.vendor
    if vendor not in dataset.vendor_names():
        print(f"unknown vendor {vendor!r}; known vendors:",
              ", ".join(dataset.vendor_names()), file=sys.stderr)
        return 2
    print(f"== {vendor} ==")
    print(f"devices: {len(dataset.devices_of_vendor(vendor))}")
    print(f"fingerprints: {len(dataset.vendor_fingerprints(vendor))} "
          f"(DoC_vendor {percent(doc_vendor(dataset, vendor))})")
    with obs.span("analysis.audit.matching"):
        matches = validate_case_study(dataset, study.corpus, vendor)
    print(f"library matches: {matches or '(none)'}")
    with obs.span("analysis.audit.issuers"):
        report = issuer_report(dataset, study.certificates,
                               study.ecosystem)
    ratios = sorted(report.vendor_issuer_ratios(vendor).items(),
                    key=lambda kv: -kv[1])
    print("server certificate issuers seen by its devices:")
    for org, share in ratios[:8]:
        kind = "public" if org in set(report.public_orgs) else "PRIVATE"
        print(f"  {org:35s} {kind:8s} {percent(share)}")
    return 0


def cmd_whatif(args):
    from repro.core import whatif
    from repro.core.tables import percent
    study = get_study(seed=args.seed)
    if args.experiment in ("acme", "all"):
        with obs.span("analysis.whatif.acme"):
            result = whatif.acme_adoption(study)
        before, after = result["before"], result["after"]
        print(f"[acme] {result['private_leaf_count']} vendor-signed "
              f"leafs: validity max "
              f"{before['validity_min_med_max'][2]:.0f}d → "
              f"{after['validity_min_med_max'][2]:.0f}d; CT "
              f"{percent(before['ct_share'])} → "
              f"{percent(after['ct_share'])}")
    if args.experiment in ("aia", "all"):
        with obs.span("analysis.whatif.aia"):
            result = whatif.aia_chasing(study)
        print(f"[aia] verdicts fixed by intermediate fetching: "
              f"{len(result['fixed_by_aia'])}")
    if args.experiment in ("revocation", "all"):
        with obs.span("analysis.whatif.revocation"):
            result = whatif.revocation_exposure(study)
        print(f"[revocation] devices with no revocation path: "
              f"{result['devices_exposed_no_revocation_path']} "
              f"(protected: "
              f"{result['devices_protected_by_revocation']})")
    return 0


def cmd_figures(args):
    from repro.core.figures import export_all
    study = get_study(seed=args.seed)
    with obs.span("cli.write_output"):
        written = export_all(study, args.output)
    args.artifacts.append(args.output)
    print(f"wrote {len(written)} figure data files under {args.output}")
    return 0


def cmd_trace_summary(args):
    from repro.obs.summary import summarize_file
    try:
        print(summarize_file(args.trace_file, top=args.top))
    except (OSError, ValueError) as exc:
        print(f"trace-summary: {exc}", file=sys.stderr)
        return 2
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Behind the Scenes' (IMC 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser(
        "generate", help="generate the world, save the capture as JSONL")
    _add_seed(p_generate)
    p_generate.add_argument("-o", "--output", default="capture.jsonl")
    _add_obs(p_generate)
    p_generate.set_defaults(func=cmd_generate)

    p_probe = sub.add_parser(
        "probe", help="probe all SNIs, save per-server cert summary")
    _add_seed(p_probe)
    p_probe.add_argument("-o", "--output", default="certificates.jsonl")
    p_probe.add_argument("--jobs", type=int, default=1,
                         help="probe engine worker threads "
                              "(default %(default)s; output is identical "
                              "for any value)")
    p_probe.add_argument("--retries", type=int, default=3,
                         help="attempt budget per probe "
                              "(default %(default)s)")
    p_probe.add_argument("--stats", action="store_true",
                         help="print probe engine telemetry (attempts, "
                              "retries, error taxonomy)")
    _add_obs(p_probe)
    p_probe.set_defaults(func=cmd_probe)

    p_report = sub.add_parser(
        "report", help="run the full pipeline, write the markdown report")
    _add_seed(p_report)
    p_report.add_argument("-o", "--output", default="study_report.md",
                          help="output path, or '-' for stdout")
    _add_obs(p_report)
    p_report.set_defaults(func=cmd_report)

    p_audit = sub.add_parser("audit", help="audit one vendor")
    _add_seed(p_audit)
    p_audit.add_argument("vendor")
    _add_obs(p_audit)
    p_audit.set_defaults(func=cmd_audit)

    p_figures = sub.add_parser(
        "figures", help="export plot-ready JSON data for every figure")
    _add_seed(p_figures)
    p_figures.add_argument("-o", "--output", default="figure_data")
    _add_obs(p_figures)
    p_figures.set_defaults(func=cmd_figures)

    p_whatif = sub.add_parser(
        "whatif", help="run the recommendation experiments")
    _add_seed(p_whatif)
    p_whatif.add_argument("experiment",
                          choices=("acme", "aia", "revocation", "all"))
    _add_obs(p_whatif)
    p_whatif.set_defaults(func=cmd_whatif)

    p_trace = sub.add_parser(
        "trace-summary",
        help="render a --trace JSONL file (top spans, metrics, manifest)")
    p_trace.add_argument("trace_file")
    p_trace.add_argument("--top", type=int, default=15,
                         help="span names to show (default %(default)s)")
    p_trace.set_defaults(func=cmd_trace_summary)
    return parser


def _run_observed(args):
    """Run one study command inside a live observability context."""
    from repro.obs.summary import metric_table
    sink = obs.JsonlSink(args.trace) if args.trace else None
    ctx = obs.Observability(sink=sink)
    args.artifacts = []
    started_at = time.time()
    previous = obs.activate(ctx)
    try:
        with ctx.span(f"cli.{args.command}"):
            code = args.func(args)
    finally:
        obs.deactivate(previous)
    manifest = RunManifest.from_run(
        command=args.command,
        config=getattr(args, "config", None)
        or StudyConfig(seed=args.seed),
        obs_ctx=ctx, outputs=args.artifacts,
        started_at=started_at, finished_at=time.time())
    ctx.sink.emit({"type": "manifest", "manifest": manifest.to_json()})
    ctx.close()
    for artifact in args.artifacts:
        manifest.write(manifest_path_for(artifact))
    if args.trace:
        print(f"wrote trace to {args.trace} "
              f"({sink.events_written} events)")
    if args.metrics:
        print("metrics:")
        print("\n".join(metric_table(ctx.metrics.snapshot())))
    return code


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "trace-summary":
        return args.func(args)
    return _run_observed(args)


if __name__ == "__main__":
    raise SystemExit(main())
