"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  build the world and save the anonymized ClientHello
  capture as JSONL (the artifact the paper open-sources);
- ``probe``     probe every SNI from the three vantage points and save a
  per-server certificate summary;
- ``report``    run the full analysis pipeline and write the markdown
  study report;
- ``audit``     client- and server-side audit of one vendor;
- ``whatif``    run the recommendation experiments (ACME adoption, AIA
  chasing, revocation exposure);
- ``figures``   export plot-ready JSON data for every figure;
- ``cache``     inspect (``stats``) or empty (``clear``) the artifact
  store;
- ``serve``     stream-ingest the capture through the incremental
  analyses and answer the paper's hot queries over a stdlib HTTP/JSON
  API (``/healthz`` with per-objective SLO state, ``/metrics`` in JSON
  or Prometheus exposition text via ``?format=prom``, ``/v1/slo``,
  ``/v1/debug/recent`` — the flight recorder, ``/v1/doc``,
  ``/v1/fingerprints``, ``/v1/match-rate``, ``/v1/issuers``,
  ``/v1/verdicts``); with a cache directory the ingester resumes from
  its last compacted checkpoint; ``--smoke`` runs the built-in load
  mix against the warm server and exits (the CI smoke job);
- ``obs``       inspect a *running* server over HTTP: ``top`` (live
  polling view of health, SLO verdicts, and key metrics), ``export``
  (scrape ``/metrics`` once, write the JSON snapshot or Prometheus
  text), ``diff`` (compare two exported snapshots and flag
  regressions — error counters that grew, lag gauges that rose,
  latency histograms that shifted slow);
- ``match``     the ``repro.match`` engine: ``build-index`` (construct
  the corpus + vendor similarity indexes, write the stats JSON),
  ``query`` (exact near-match libraries for one fingerprint id, sketch
  candidate pruning optional), ``stats`` (engine and index parameters);
- ``ml``        learned fingerprint attribution (``repro.ml``):
  ``train`` the seeded pure-numpy naive-Bayes + logistic-regression
  bundle on the generator's ground-truth labels, ``eval`` it into a
  canonical digest-checkable report (optionally against an external
  labeled capture via ``--input``), ``predict`` the exact-match-
  unmatched 97.45% with per-fingerprint confidences;
- ``verify``    differential conformance: ``record``/``check`` golden
  baselines, run the execution-mode equivalence ``matrix`` (including
  the ``sketch`` matching mode), evaluate the paper ``invariants``,
  prove ``streaming`` == batch, digest-check the deterministic ``ml``
  eval report against its committed baseline;
- ``sweep``     process-parallel multi-config campaigns: ``run`` a seed
  grid (plus trust-store / fault-rate ablations) across worker
  processes — or across a one-host cluster with ``--backend cluster``
  and a remote blob store with ``--store-backend http`` — ``resume`` a
  killed campaign (completed configs are skipped via the campaign
  ledger; works across backends), ``report`` the aggregate variance
  bands around every paper anchor;
- ``fabric``    the distributed campaign fabric: ``serve`` a campaign's
  units as expiring HTTP leases (plus the content-addressed blob store
  and Prometheus ``/metrics``), ``worker`` to claim/run/upload units
  against a coordinator from any machine, ``status`` for the live
  queue/lease/ledger view;
- ``trace-summary``  render a ``--trace`` JSONL file (top spans by
  self-time, metric table, manifest line).

Every study command is *config-first*: the shared flags ``--seed``,
``--jobs``, ``--retries``, and ``--trust-stores`` build one
:class:`~repro.config.StudyConfig` (via :func:`config_from_args`), so no
command silently drops an engine knob.

Caching: pass ``--cache-dir DIR`` (or set ``REPRO_CACHE_DIR``) to reuse
expensive artifacts — the capture, the certificate dataset, every
analysis result — across invocations via the content-addressed
:class:`~repro.store.artifact.ArtifactStore`; ``repro report`` after
``repro probe`` then reuses the probe artifact, and an unchanged re-run
is near-instant.  ``--no-cache`` bypasses the store even when the
environment variable is set.

Observability (``repro.obs``) is active for every command: add
``--trace trace.jsonl`` to stream span/metric/manifest events to JSONL,
``--metrics`` to print the metric table, and find a provenance
``<artifact>.manifest.json`` (seed, config digest, version, stage
timings, metric snapshot, cache traffic) next to every file a command
writes.
"""

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.config import MAJOR_STORES
from repro.obs.manifest import RunManifest, manifest_path_for
from repro.study import DEFAULT_SEED, StudyConfig, get_study

#: cache directory used when --cache-dir is absent ($REPRO_CACHE_DIR
#: overrides; caching stays off when neither is set).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: the committed golden baseline `repro verify check` compares against.
DEFAULT_BASELINE = "conformance/baseline.json"

#: the committed ML eval-report baseline `repro verify ml` checks.
DEFAULT_ML_BASELINE = "conformance/ml_baseline.json"

#: default paths for the `repro ml` model and eval-report artifacts.
DEFAULT_ML_MODEL = "ml_model.json"
DEFAULT_ML_REPORT = "ml_eval.json"


def _add_config(parser):
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="world seed (default %(default)s)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker threads for probing and analysis "
                             "(default %(default)s; output is identical "
                             "for any value)")
    parser.add_argument("--retries", type=int, default=3,
                        help="attempt budget per probe "
                             "(default %(default)s)")
    parser.add_argument("--trust-stores", metavar="NAMES",
                        default=",".join(MAJOR_STORES),
                        help="comma-separated major stores the validator "
                             "unions (default %(default)s)")


def _add_cache(parser):
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="artifact store directory (default "
                             f"${ENV_CACHE_DIR}; caching is off when "
                             "neither is set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the artifact store entirely")


def _add_obs(parser):
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write tracing spans, metric snapshot, and "
                             "run manifest as JSONL events to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metric table after the command")


def config_from_args(args):
    """The full :class:`StudyConfig` a study command's flags describe."""
    from repro.probing.engine import RetryPolicy
    stores = tuple(name.strip()
                   for name in args.trust_stores.split(",")
                   if name.strip())
    return StudyConfig(seed=args.seed, probe_jobs=args.jobs,
                       retry=RetryPolicy(max_attempts=args.retries),
                       trust_stores=stores)


def store_from_args(args):
    """The artifact store the flags select, or ``None`` (caching off)."""
    from repro.store import ArtifactStore
    if getattr(args, "no_cache", False):
        return None
    root = getattr(args, "cache_dir", None) or \
        os.environ.get(ENV_CACHE_DIR)
    return ArtifactStore(root) if root else None


def _study_from_args(args):
    """Build config + store + memoized study; records both on ``args``.

    Raises ``ValueError`` on an invalid flag combination; study commands
    catch it and exit 2.
    """
    config = config_from_args(args)
    args.config = config
    args.store = store_from_args(args)
    return get_study(config).attach_store(args.store)


def _study_or_status(args):
    try:
        return _study_from_args(args), 0
    except ValueError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return None, 2


def cmd_generate(args):
    from repro.inspector.io import save_records
    study, status = _study_or_status(args)
    if study is None:
        return status
    dataset = study.dataset
    with obs.span("cli.write_output"):
        save_records(dataset.records, args.output)
    args.artifacts.append(args.output)
    print(f"wrote {len(dataset.records)} ClientHello records from "
          f"{dataset.device_count} devices ({dataset.vendor_count} "
          f"vendors, {dataset.user_count} users) to {args.output}")
    return 0


def cmd_probe(args):
    study, status = _study_or_status(args)
    if study is None:
        return status
    certificates = study.certificates
    rows = certificates.to_json_rows(ct_logs=study.network.ct_logs)
    with obs.span("cli.write_output"):
        with open(args.output, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
    args.artifacts.append(args.output)
    reachable = sum(1 for row in rows if row["reachable"])
    print(f"probed {len(rows)} SNIs ({reachable} reachable); "
          f"wrote {args.output}")
    if args.stats and certificates.stats is not None:
        print(certificates.stats.summary())
    return 0


def cmd_report(args):
    from repro.core.pipeline import run_full_study
    from repro.core.report import render_report
    study, status = _study_or_status(args)
    if study is None:
        return status
    results = run_full_study(study, jobs=args.jobs)
    with obs.span("cli.render_report"):
        text = render_report(results, seed=args.seed)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        args.artifacts.append(args.output)
        print(f"wrote study report to {args.output}")
    return 0


def cmd_audit(args):
    from repro.core.customization import doc_vendor
    from repro.core.issuers import issuer_report
    from repro.core.matching import validate_case_study
    from repro.core.tables import percent
    study, status = _study_or_status(args)
    if study is None:
        return status
    dataset = study.dataset
    vendor = args.vendor
    if vendor not in dataset.vendor_names():
        print(f"unknown vendor {vendor!r}; known vendors:",
              ", ".join(dataset.vendor_names()), file=sys.stderr)
        return 2
    print(f"== {vendor} ==")
    print(f"devices: {len(dataset.devices_of_vendor(vendor))}")
    print(f"fingerprints: {len(dataset.vendor_fingerprints(vendor))} "
          f"(DoC_vendor {percent(doc_vendor(dataset, vendor))})")
    with obs.span("analysis.audit.matching"):
        matches = validate_case_study(dataset, study.corpus, vendor)
    print(f"library matches: {matches or '(none)'}")
    with obs.span("analysis.audit.issuers"):
        report = issuer_report(dataset, study.certificates,
                               study.ecosystem)
    ratios = sorted(report.vendor_issuer_ratios(vendor).items(),
                    key=lambda kv: -kv[1])
    print("server certificate issuers seen by its devices:")
    for org, share in ratios[:8]:
        kind = "public" if org in set(report.public_orgs) else "PRIVATE"
        print(f"  {org:35s} {kind:8s} {percent(share)}")
    return 0


def cmd_whatif(args):
    from repro.core import whatif
    from repro.core.tables import percent
    study, status = _study_or_status(args)
    if study is None:
        return status
    if args.experiment in ("acme", "all"):
        with obs.span("analysis.whatif.acme"):
            result = whatif.acme_adoption(study)
        before, after = result["before"], result["after"]
        print(f"[acme] {result['private_leaf_count']} vendor-signed "
              f"leafs: validity max "
              f"{before['validity_min_med_max'][2]:.0f}d → "
              f"{after['validity_min_med_max'][2]:.0f}d; CT "
              f"{percent(before['ct_share'])} → "
              f"{percent(after['ct_share'])}")
    if args.experiment in ("aia", "all"):
        with obs.span("analysis.whatif.aia"):
            result = whatif.aia_chasing(study)
        print(f"[aia] verdicts fixed by intermediate fetching: "
              f"{len(result['fixed_by_aia'])}")
    if args.experiment in ("revocation", "all"):
        with obs.span("analysis.whatif.revocation"):
            result = whatif.revocation_exposure(study)
        print(f"[revocation] devices with no revocation path: "
              f"{result['devices_exposed_no_revocation_path']} "
              f"(protected: "
              f"{result['devices_protected_by_revocation']})")
    return 0


def cmd_figures(args):
    from repro.core.figures import export_all
    study, status = _study_or_status(args)
    if study is None:
        return status
    with obs.span("cli.write_output"):
        written = export_all(study, args.output)
    args.artifacts.append(args.output)
    print(f"wrote {len(written)} figure data files under {args.output}")
    return 0


def _cache_store(args):
    from repro.store import ArtifactStore
    root = args.cache_dir or os.environ.get(ENV_CACHE_DIR)
    if not root:
        print(f"cache: no cache directory (pass --cache-dir or set "
              f"${ENV_CACHE_DIR})", file=sys.stderr)
        return None
    return ArtifactStore(root)


def cmd_cache_stats(args):
    store = _cache_store(args)
    if store is None:
        return 2
    stats = store.stats()
    print(f"cache {stats['dir']} (current version "
          f"{stats['version']}): {stats['entries']} entries, "
          f"{stats['bytes'] / 1e6:.1f} MB")
    for stage, count in stats["by_stage"].items():
        print(f"  {stage:40s} {count}")
    for version, count in stats["by_version"].items():
        marker = "" if version == stats["version"] else "  (stale)"
        print(f"  version {version}: {count} entries{marker}")
    return 0


def cmd_cache_clear(args):
    store = _cache_store(args)
    if store is None:
        return 2
    removed = store.clear()
    print(f"removed {removed} entries from {store.root}")
    return 0


def _write_verify_report(args, payload):
    """Write a machine-readable verify report when --report was given."""
    if getattr(args, "report", None):
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        args.artifacts.append(args.report)
        print(f"wrote verify report to {args.report}")


def cmd_serve(args):
    from repro.ingest import run_load, serve_study
    from repro.inspector.timeline import days
    study, status = _study_or_status(args)
    if study is None:
        return status
    import threading
    server, service = serve_study(
        study, host=args.host, port=args.port,
        window_seconds=days(args.window_days), store=args.store)
    host, port = server.server_address[:2]
    print(f"serving study (seed {args.seed}) on http://{host}:{port} "
          f"— {service.ingester.records_ingested} records in "
          f"{service.ingester.stream.window_count} windows"
          f"{' (resumed from checkpoint)' if service.ingester.resumed else ''}")
    if args.smoke:
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        result = run_load(f"http://{host}:{port}",
                          requests_per_worker=args.smoke_requests,
                          workers=2)
        server.shutdown()
        summary = result.to_json()
        print(f"smoke: {summary['requests']} requests, "
              f"{summary['errors']} errors, {summary['qps']} q/s, "
              f"p99 {summary['p99_ms']} ms")
        return 0 if summary["errors"] == 0 else 1
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def _match_engine(args, study):
    """The seeded :class:`~repro.match.MatchEngine` the flags select."""
    from repro.match import MatchEngine
    return MatchEngine.for_config(study.config, mode=args.mode)


def cmd_match_build_index(args):
    from repro.ingest.incremental import fingerprint_id
    study, status = _study_or_status(args)
    if study is None:
        return status
    engine = _match_engine(args, study)
    with obs.span("match.build_index"):
        payload = engine.stats(dataset=study.dataset,
                               corpus=study.corpus)
        payload["fingerprint_ids"] = {
            fingerprint_id(fp): [int(fp[0]), list(fp[1]), list(fp[2])]
            for fp in sorted(study.dataset.fingerprints())}
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    args.artifacts.append(args.output)
    corpus_stats = payload["corpus"]
    print(f"built {args.mode} match index: "
          f"{corpus_stats['entries']} corpus entries → "
          f"{corpus_stats['distinct_keys']} distinct keys "
          f"(dedup {corpus_stats['dedup_ratio']}x), "
          f"{payload['vendors']['items']} vendor sets; "
          f"wrote {args.output}")
    return 0


def cmd_match_query(args):
    from repro.ingest.incremental import fingerprint_id
    study, status = _study_or_status(args)
    if study is None:
        return status
    by_id = {fingerprint_id(fp): fp
             for fp in study.dataset.fingerprints()}
    fp = by_id.get(args.fingerprint)
    if fp is None:
        print(f"match query: unknown fingerprint id "
              f"{args.fingerprint!r} (see `repro match build-index` "
              f"output for the id map)", file=sys.stderr)
        return 2
    engine = _match_engine(args, study)
    with obs.span("match.query"):
        exact = engine.corpus_index(study.corpus).match(*fp)
        hits = engine.near_matches(fp, study.corpus,
                                   threshold=args.threshold,
                                   limit=args.limit)
    version, suites, extensions = fp
    print(f"fingerprint {args.fingerprint}: TLS {int(version):#06x}, "
          f"{len(suites)} suites, {len(extensions)} extensions")
    print(f"exact corpus match: "
          f"{exact.full_name if exact is not None else '(none)'}")
    if hits:
        print(f"near matches (Jaccard >= {args.threshold}):")
        for similarity, library in hits:
            print(f"  {similarity:.3f}  {library.full_name}")
    else:
        print(f"near matches (Jaccard >= {args.threshold}): (none)")
    return 0


def cmd_match_stats(args):
    study, status = _study_or_status(args)
    if study is None:
        return status
    engine = _match_engine(args, study)
    with obs.span("match.stats"):
        payload = engine.stats(dataset=study.dataset,
                               corpus=study.corpus)
    print(f"engine: mode={payload['mode']} seed={payload['seed']:#x} "
          f"hashes={payload['num_hashes']} bands={payload['bands']}x"
          f"{payload['rows_per_band']}")
    corpus_stats = payload["corpus"]
    print(f"corpus: {corpus_stats['entries']} entries, "
          f"{corpus_stats['distinct_keys']} distinct keys "
          f"(dedup {corpus_stats['dedup_ratio']}x), "
          f"{corpus_stats['prefix_buckets']} (version, "
          f"suite[:{corpus_stats['suite_prefix']}]) buckets")
    vendor_stats = payload["vendors"]
    print(f"vendors: {vendor_stats['items']} sets, "
          f"{vendor_stats['distinct_vectors']} distinct vectors, "
          f"{vendor_stats['feature_space']}-bit feature space, "
          f"candidate pairs {vendor_stats['candidate_pairs']} / "
          f"{vendor_stats['total_pairs']}")
    return 0


def cmd_verify_record(args):
    from repro.verify import (invariant_summary, record_baseline,
                              render_invariants, run_and_snapshot)
    study, status = _study_or_status(args)
    if study is None:
        return status
    results, snapshots = run_and_snapshot(study, jobs=args.jobs)
    summary = invariant_summary(study, results)
    args.invariants = summary
    print(render_invariants(summary))
    if not summary["ok"]:
        print("verify record: refusing to record a baseline that "
              "violates paper invariants", file=sys.stderr)
        return 1
    with obs.span("cli.write_output"):
        path = record_baseline(study, args.baseline,
                               snapshots=snapshots)
    print(f"recorded golden baseline ({len(snapshots)} nodes) to "
          f"{path}")
    return 0


def cmd_verify_check(args):
    from repro.verify import (check_baseline, invariant_summary,
                              render_invariants, run_and_snapshot)
    study, status = _study_or_status(args)
    if study is None:
        return status
    results, snapshots = run_and_snapshot(study, jobs=args.jobs)
    summary = invariant_summary(study, results)
    args.invariants = summary
    try:
        report = check_baseline(study, args.baseline,
                                snapshots=snapshots)
    except ValueError as exc:
        print(f"verify check: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    print(render_invariants(summary))
    payload = report.to_json()
    payload["invariants"] = summary
    _write_verify_report(args, payload)
    return 0 if report.ok and summary["ok"] else 1


def cmd_verify_matrix(args):
    from repro.verify import EquivalenceMatrix, default_modes
    try:
        config = config_from_args(args)
    except ValueError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    args.config = config
    parallel_jobs = args.jobs if args.jobs > 1 else 4
    matrix = EquivalenceMatrix(
        base_config=config, modes=default_modes(parallel_jobs))
    report = matrix.run()
    print(report.render())
    _write_verify_report(args, report.to_json())
    return 0 if report.ok else 1


def cmd_verify_invariants(args):
    from repro.core.pipeline import run_full_study
    from repro.verify import invariant_summary, render_invariants
    study, status = _study_or_status(args)
    if study is None:
        return status
    results = run_full_study(study, jobs=args.jobs)
    summary = invariant_summary(study, results)
    args.invariants = summary
    print(render_invariants(summary))
    return 0 if summary["ok"] else 1


def cmd_verify_streaming(args):
    from repro.inspector.timeline import days
    from repro.verify import check_streaming
    study, status = _study_or_status(args)
    if study is None:
        return status
    report = check_streaming(study, window_seconds=days(args.window_days),
                             store=args.store)
    print(report.render())
    _write_verify_report(args, report.to_json())
    return 0 if report.ok else 1


def cmd_verify_ml(args):
    from repro.ml import (check_ml_baseline, eval_digest,
                          evaluate_study, record_ml_baseline)
    study, status = _study_or_status(args)
    if study is None:
        return status
    payload = evaluate_study(study)
    if args.record:
        with obs.span("cli.write_output"):
            path = record_ml_baseline(payload, args.baseline)
        args.artifacts.append(path)
        print(f"recorded ml eval baseline (digest "
              f"{eval_digest(payload)[:16]}..., macro-F1 "
              f"{payload['macro']['f1']:.4f}) to {path}")
        return 0
    try:
        report = check_ml_baseline(payload, args.baseline)
    except FileNotFoundError:
        print(f"verify ml: baseline not found: {args.baseline} "
              f"(record one with `repro verify ml --record`)",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"verify ml: {exc}", file=sys.stderr)
        return 2
    if report["ok"]:
        print(f"ml eval digest matches baseline "
              f"({report['actual_digest'][:16]}..., macro-F1 "
              f"{payload['macro']['f1']:.4f})")
    else:
        print("ml eval digest DIVERGES from baseline:")
        print(f"  expected {report['expected_digest']}")
        print(f"  actual   {report['actual_digest']}")
        if "note" in report:
            print(f"  note: {report['note']}")
        if "first_divergence" in report:
            where, detail = report["first_divergence"]
            print(f"  first divergence at {where}: {detail}")
    _write_verify_report(args, report)
    return 0 if report["ok"] else 1


def _ml_params_from_args(args):
    """An :class:`repro.ml.MLParams` from the train flags (lazy import)."""
    from repro.ml import MLParams
    overrides = {name: value for name, value in (
        ("target", getattr(args, "target", None)),
        ("width", getattr(args, "width", None)),
        ("iters", getattr(args, "iters", None)),
        ("test_fraction", getattr(args, "test_fraction", None)),
    ) if value is not None}
    return MLParams(**overrides)


def _ml_threshold_or_status(args, command):
    """Validated --threshold (``None`` defers to the model's default)."""
    threshold = getattr(args, "threshold", None)
    if threshold is not None and not 0.0 <= threshold <= 1.0:
        print(f"{command}: --threshold must be within [0.0, 1.0], "
              f"got {threshold}", file=sys.stderr)
        return None, 2
    return threshold, 0


def _ml_model_or_status(args, command):
    """The model file --model names, or an exit-2 one-line error."""
    from repro.ml import AttributionModel
    try:
        return AttributionModel.load(args.model), 0
    except FileNotFoundError:
        print(f"{command}: model file not found: {args.model} "
              f"(run `repro ml train` first)", file=sys.stderr)
        return None, 2
    except ValueError as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None, 2


def cmd_ml_train(args):
    from repro.ml import train_study
    try:
        params = _ml_params_from_args(args)
    except ValueError as exc:
        print(f"ml train: {exc}", file=sys.stderr)
        return 2
    study, status = _study_or_status(args)
    if study is None:
        return status
    try:
        model = train_study(study, params=params)
    except ValueError as exc:
        print(f"ml train: {exc}", file=sys.stderr)
        return 2
    with obs.span("cli.write_output"):
        model.save(args.output)
    args.artifacts.append(args.output)
    print(f"trained {params.target} attribution on "
          f"{model.counts['train']} fingerprints "
          f"({len(model.classes)} classes, {params.iters} fixed "
          f"iterations); wrote {args.output}")
    return 0


def _ml_eval_capture(args, model, threshold):
    """Eval on an external labeled capture; ``(payload, status)``."""
    from repro.ml import evaluate_capture
    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle
                    if line.strip()]
    except FileNotFoundError:
        print(f"ml eval: input file not found: {args.input}",
              file=sys.stderr)
        return None, 2
    except json.JSONDecodeError as exc:
        print(f"ml eval: {args.input} is not JSONL ({exc})",
              file=sys.stderr)
        return None, 2
    try:
        return evaluate_capture(model, rows, threshold=threshold), 0
    except ValueError as exc:
        print(f"ml eval: {exc}", file=sys.stderr)
        return None, 2


def cmd_ml_eval(args):
    from repro.ml import (canonical_report_text, evaluate_model,
                          render_eval)
    threshold, status = _ml_threshold_or_status(args, "ml eval")
    if status:
        return status
    model, status = _ml_model_or_status(args, "ml eval")
    if model is None:
        return status
    if args.input:
        payload, status = _ml_eval_capture(args, model, threshold)
        if payload is None:
            return status
        print(f"capture eval: {payload['records']} records, "
              f"{payload['fingerprints']} fingerprints; accuracy "
              f"{payload['accuracy']:.4f} on {payload['known']} "
              f"known-class fingerprints, {payload['attributed']} "
              f"attributed at confidence >= {payload['threshold']}")
    else:
        study, status = _study_or_status(args)
        if study is None:
            return status
        payload = evaluate_model(model, study.dataset, study.corpus,
                                 study.world, study.config,
                                 threshold=threshold)
        print(render_eval(payload))
    with obs.span("cli.write_output"):
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_report_text(payload))
    args.artifacts.append(args.report)
    print(f"wrote canonical eval report to {args.report}")
    return 0


def cmd_ml_predict(args):
    from repro.ml import labeled_examples
    threshold, status = _ml_threshold_or_status(args, "ml predict")
    if status:
        return status
    model, status = _ml_model_or_status(args, "ml predict")
    if model is None:
        return status
    study, status = _study_or_status(args)
    if study is None:
        return status
    _, unmatched = labeled_examples(study.dataset, study.corpus,
                                    study.world,
                                    target=model.params.target)
    rows = model.predict_rows(list(unmatched), threshold=threshold)
    if args.output:
        with obs.span("cli.write_output"):
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump({"rows": rows}, handle, indent=1,
                          sort_keys=True)
                handle.write("\n")
        args.artifacts.append(args.output)
        print(f"wrote {len(rows)} prediction rows to {args.output}")
    for row in rows[:args.limit]:
        mark = "*" if row["attributed"] else " "
        print(f"{mark} {row['fingerprint']}  {row['label']:<16s} "
              f"confidence={row['confidence']:.4f} "
              f"(nb: {row['nb_label']})")
    attributed = sum(1 for row in rows if row["attributed"])
    print(f"attributed {attributed}/{len(rows)} unmatched "
          f"fingerprints ({model.params.target} target)")
    return 0


def _sweep_cache_root(args):
    """The shared artifact-store root sweep workers warm, or ``None``."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or \
        os.environ.get(ENV_CACHE_DIR)


def _sweep_store_spec(args):
    """The store-backend spec the sweep/fabric flags describe.

    Raises ``ValueError`` on an impossible combination (the callers
    print it and exit 2).
    """
    from repro.store import http_spec, local_spec
    cache_root = _sweep_cache_root(args)
    backend = getattr(args, "store_backend", "local")
    url = getattr(args, "store_url", None)
    if backend == "http":
        if not url and not cache_root:
            raise ValueError(
                "--store-backend http needs --store-url (an external "
                "blob server) or --cache-dir (self-served by the "
                "coordinator)")
        return http_spec(url=url, cache_dir=None if url else cache_root)
    if url:
        raise ValueError("--store-url requires --store-backend http")
    return local_spec(cache_root)


def _finish_sweep(args, result):
    """Aggregate a campaign, print + write the report; returns exit code."""
    from repro.sweep import SweepAggregator
    report = SweepAggregator.from_index(result.index).report()
    print(f"sweep: ran {len(result.ran)}, skipped "
          f"{len(result.skipped)} (already completed), failed "
          f"{len(result.failed)}")
    print(report.render())
    report_path = os.path.join(args.out, "sweep_report.json")
    with obs.span("cli.write_output"):
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    args.artifacts.append(report_path)
    print(f"wrote sweep report to {report_path}")
    return 0 if (result.ok and report.ok) else 1


def cmd_sweep_run(args):
    from repro.sweep import SweepRunner, expand_grid, parse_grid
    try:
        config = config_from_args(args)
        units = expand_grid(config, seeds=args.seeds,
                            grid=parse_grid(args.grid),
                            time_scale=args.time_scale,
                            stage=args.stage)
        store = _sweep_store_spec(args)
        if args.backend == "local" and store \
                and store.get("backend") == "http" \
                and not store.get("url"):
            raise ValueError("a self-served http store needs "
                             "--backend cluster (or an explicit "
                             "--store-url)")
    except ValueError as exc:
        print(f"sweep run: {exc}", file=sys.stderr)
        return 2
    args.config = config
    os.makedirs(args.out, exist_ok=True)
    runner = SweepRunner(
        units=units,
        index_path=os.path.join(args.out, "campaign.json"),
        workers=args.workers,
        cache_dir=_sweep_cache_root(args),
        backend=args.backend, store=store,
        lease_seconds=args.lease_seconds,
        worker_jobs=args.worker_jobs)
    print(f"sweep: {len(units)} units "
          f"({', '.join(unit.name for unit in units[:8])}"
          f"{', ...' if len(units) > 8 else ''}) across "
          f"{args.workers} {args.backend} worker(s)")
    result = runner.run()
    return _finish_sweep(args, result)


def _load_campaign(args):
    """The campaign ledger under ``--out`` (also sets ``args.config``)."""
    from repro.store.campaign import CampaignIndex
    from repro.sweep import campaign_units
    index = CampaignIndex.load(os.path.join(args.out, "campaign.json"))
    units = campaign_units(index)
    if units:
        args.config = units[0].study_config()
    return index


def cmd_sweep_resume(args):
    from repro.store import RemoteArtifactStore, StoreUnreachable
    from repro.sweep import SweepRunner
    try:
        index = _load_campaign(args)
    except ValueError as exc:
        print(f"sweep resume: {exc}", file=sys.stderr)
        return 2
    spec = index.store_spec
    if spec and spec.get("backend") == "http" and spec.get("url"):
        # Fail fast with one line instead of a ConnectionError
        # traceback from the first unit that dials a dead store.
        try:
            RemoteArtifactStore(spec["url"]).ping()
        except StoreUnreachable as exc:
            print(f"sweep resume: {exc}", file=sys.stderr)
            return 2
    runner = SweepRunner(
        index_path=os.path.join(args.out, "campaign.json"),
        workers=args.workers,
        cache_dir=index.cache_dir,
        backend=args.backend, store=spec,
        lease_seconds=args.lease_seconds,
        worker_jobs=args.worker_jobs)
    try:
        result = runner.run(resume=True)
    except ValueError as exc:
        print(f"sweep resume: {exc}", file=sys.stderr)
        return 2
    return _finish_sweep(args, result)


def cmd_sweep_report(args):
    from repro.sweep import SweepAggregator
    try:
        index = _load_campaign(args)
    except ValueError as exc:
        print(f"sweep report: {exc}", file=sys.stderr)
        return 2
    report = SweepAggregator.from_index(index).report()
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        args.artifacts.append(args.json)
        print(f"wrote sweep report to {args.json}")
    return 0 if report.ok else 1


def cmd_fabric_serve(args):
    import threading
    from repro.fabric import (DEFAULT_LEASE_SECONDS,
                              DEFAULT_MAX_ATTEMPTS, FabricCoordinator,
                              make_fabric_server)
    from repro.store import ArtifactStore, CampaignIndex
    from repro.sweep import expand_grid, parse_grid
    index_path = os.path.join(args.out, "campaign.json")
    try:
        index = _load_campaign(args)
        spec = index.store_spec
        print(f"fabric serve: resuming campaign "
              f"{index.campaign_id[:12]} ({len(index.completed)}/"
              f"{len(index.units)} units complete)")
    except ValueError:
        try:
            config = config_from_args(args)
            units = expand_grid(config, seeds=args.seeds,
                                grid=parse_grid(args.grid),
                                time_scale=args.time_scale,
                                stage=args.stage)
            spec = _sweep_store_spec(args)
        except ValueError as exc:
            print(f"fabric serve: {exc}", file=sys.stderr)
            return 2
        args.config = config
        os.makedirs(args.out, exist_ok=True)
        index = CampaignIndex.create(
            index_path, [unit.to_json() for unit in units],
            units[0].stage, cache_dir=_sweep_cache_root(args),
            store=spec)
        print(f"fabric serve: created campaign "
              f"{index.campaign_id[:12]} ({len(units)} units)")
    blob_store = None
    if spec and spec.get("backend") == "http" and not spec.get("url"):
        blob_store = ArtifactStore(spec["dir"])
    coordinator = FabricCoordinator(
        index, store_spec=spec,
        lease_seconds=args.lease_seconds or DEFAULT_LEASE_SECONDS,
        max_attempts=args.max_attempts or DEFAULT_MAX_ATTEMPTS)
    server, _ = make_fabric_server(coordinator, blob_store=blob_store,
                                   host=args.host, port=args.port)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    if blob_store is not None:
        # The self-served spec resolves now that the port is known.
        coordinator.store_spec = {"backend": "http", "url": url}
    print(f"fabric coordinator on {url} — point workers at it with "
          f"`repro fabric worker {url}`")
    if args.until_done:
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            while not coordinator.done():
                time.sleep(0.25)
        finally:
            server.shutdown()
            server.server_close()
        completed = len(index.completed)
        print(f"fabric serve: campaign finished — {completed}/"
              f"{len(index.units)} units completed")
        return 0 if completed == len(index.units) else 1
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def cmd_fabric_worker(args):
    from repro.fabric import worker_main
    if not args.worker_id:
        args.worker_id = f"{os.uname().nodename}-{os.getpid()}"
    try:
        summary = worker_main(args.url, worker_id=args.worker_id,
                              jobs=args.jobs, max_units=args.max_units,
                              poll_seconds=args.poll_seconds)
    except ConnectionError as exc:
        print(f"fabric worker: {exc}", file=sys.stderr)
        return 2
    print(f"fabric worker {summary['worker']}: "
          f"ran {len(summary['ran'])}, "
          f"stolen {len(summary['stolen'])}, "
          f"failed {len(summary['failed'])}")
    return 0 if not summary["failed"] else 1


def cmd_fabric_status(args):
    from repro.obs.scrape import ScrapeError, scrape
    try:
        status = scrape(args.url, "/fabric/status")
    except ScrapeError as exc:
        print(f"fabric status: {exc}", file=sys.stderr)
        return 2
    done = " — done" if status.get("done") else ""
    print(f"campaign {status['campaign_id'][:12]} "
          f"(stage {status['stage']}): {status['completed']}/"
          f"{status['units']} completed, {status['pending']} pending, "
          f"{len(status['leased'])} leased, "
          f"{status['failed']} failed{done}")
    for lease in status["leased"]:
        print(f"  leased  {lease['unit'][:12]}  -> {lease['worker']} "
              f"(expires in {lease['expires_in']}s)")
    for key in status["exhausted"]:
        print(f"  exhausted  {key[:12]} (attempt budget spent)")
    return 0


def cmd_trace_summary(args):
    from repro.obs.summary import summarize_file
    try:
        print(summarize_file(args.trace_file, top=args.top))
    except (OSError, ValueError) as exc:
        print(f"trace-summary: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_obs_top(args):
    from repro.obs.scrape import ScrapeError, render_top, scrape
    previous = None
    frame = 0
    try:
        while True:
            frame += 1
            healthz = scrape(args.url, "/healthz")["data"]
            slo = scrape(args.url, "/v1/slo")["data"]
            metrics = scrape(args.url, "/metrics")["data"]
            print(render_top(
                healthz, slo, metrics, previous=previous,
                interval=args.interval if previous is not None
                else None))
            previous = metrics.get("metrics", metrics)
            if args.count and frame >= args.count:
                break
            print("")
            time.sleep(args.interval)
    except ScrapeError as exc:
        print(f"obs top: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def cmd_obs_export(args):
    from repro.obs.scrape import ScrapeError, scrape
    try:
        if args.format == "prom":
            text = scrape(args.url, "/metrics?format=prom",
                          as_text=True)
        else:
            payload = scrape(args.url, "/metrics")
            text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    except ScrapeError as exc:
        print(f"obs export: {exc}", file=sys.stderr)
        return 2
    if args.output == "-":
        print(text, end="")
        return 0
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.format} metrics snapshot to {args.output}")
    return 0


def cmd_obs_diff(args):
    from repro.obs.scrape import (ScrapeError, diff_snapshots,
                                  load_export, render_diff)
    try:
        before = load_export(args.before)
        after = load_export(args.after)
    except ScrapeError as exc:
        print(f"obs diff: {exc}", file=sys.stderr)
        return 2
    report = diff_snapshots(before, after, tolerance=args.tolerance)
    print(render_diff(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote diff report to {args.json}")
    return 0 if report["ok"] else 1


def _add_sweep_backend(parser):
    """Execution-backend flags shared by ``sweep run`` and ``resume``."""
    parser.add_argument("--backend", choices=("local", "cluster"),
                        default="local",
                        help="execution backend: this process / a "
                             "process pool, or a fabric coordinator + "
                             "worker processes (default %(default)s; "
                             "digests are identical either way)")
    parser.add_argument("--lease-seconds", type=float, default=None,
                        dest="lease_seconds",
                        help="cluster lease/heartbeat interval "
                             "(default: fabric default)")
    parser.add_argument("--worker-jobs", type=int, default=2,
                        dest="worker_jobs",
                        help="claim threads per cluster worker process "
                             "(default %(default)s)")


def _add_study_command(sub, name, help_text, func):
    parser = sub.add_parser(name, help=help_text)
    _add_config(parser)
    _add_cache(parser)
    parser.set_defaults(func=func)
    return parser


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Behind the Scenes' (IMC 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = _add_study_command(
        sub, "generate",
        "generate the world, save the capture as JSONL", cmd_generate)
    p_generate.add_argument("-o", "--output", default="capture.jsonl")
    _add_obs(p_generate)

    p_probe = _add_study_command(
        sub, "probe", "probe all SNIs, save per-server cert summary",
        cmd_probe)
    p_probe.add_argument("-o", "--output", default="certificates.jsonl")
    p_probe.add_argument("--stats", action="store_true",
                         help="print probe engine telemetry (attempts, "
                              "retries, error taxonomy)")
    _add_obs(p_probe)

    p_report = _add_study_command(
        sub, "report", "run the full pipeline, write the markdown report",
        cmd_report)
    p_report.add_argument("-o", "--output", default="study_report.md",
                          help="output path, or '-' for stdout")
    _add_obs(p_report)

    p_audit = _add_study_command(sub, "audit", "audit one vendor",
                                 cmd_audit)
    p_audit.add_argument("vendor")
    _add_obs(p_audit)

    p_figures = _add_study_command(
        sub, "figures", "export plot-ready JSON data for every figure",
        cmd_figures)
    p_figures.add_argument("-o", "--output", default="figure_data")
    _add_obs(p_figures)

    p_whatif = _add_study_command(
        sub, "whatif", "run the recommendation experiments", cmd_whatif)
    p_whatif.add_argument("experiment",
                          choices=("acme", "aia", "revocation", "all"))
    _add_obs(p_whatif)

    p_serve = _add_study_command(
        sub, "serve",
        "stream-ingest the capture, serve the query API over HTTP",
        cmd_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default %(default)s)")
    p_serve.add_argument("--port", type=int, default=8437,
                         help="bind port; 0 picks an ephemeral port "
                              "(default %(default)s)")
    p_serve.add_argument("--window-days", type=int, default=28,
                         dest="window_days",
                         help="stream window width in capture days "
                              "(default %(default)s)")
    p_serve.add_argument("--smoke", action="store_true",
                         help="run the built-in load mix against the "
                              "warm server, print the summary, exit")
    p_serve.add_argument("--smoke-requests", type=int, default=50,
                         dest="smoke_requests",
                         help="requests per smoke worker "
                              "(default %(default)s)")
    _add_obs(p_serve)

    p_match = sub.add_parser(
        "match",
        help="the repro.match engine: build indexes, query near "
             "matches, inspect index stats")
    match_sub = p_match.add_subparsers(dest="match_command",
                                       required=True)

    def _add_match_command(name, help_text, func):
        sub_parser = match_sub.add_parser(name, help=help_text)
        _add_config(sub_parser)
        _add_cache(sub_parser)
        sub_parser.add_argument(
            "--mode", choices=("exact", "sketch"), default="sketch",
            help="matching engine mode (default %(default)s; results "
                 "are identical, sketch prunes candidates)")
        _add_obs(sub_parser)
        sub_parser.set_defaults(func=func)
        return sub_parser

    p_mbuild = _add_match_command(
        "build-index",
        "construct the corpus + vendor similarity indexes, write the "
        "stats and fingerprint-id map as JSON", cmd_match_build_index)
    p_mbuild.add_argument("-o", "--output", default="match_index.json")
    p_mquery = _add_match_command(
        "query",
        "exact near-match libraries for one fingerprint id",
        cmd_match_query)
    p_mquery.add_argument("fingerprint",
                          help="fingerprint id (16-hex handle from "
                               "build-index or /v1/fingerprints)")
    p_mquery.add_argument("--threshold", type=float, default=0.7,
                          help="minimum feature-set Jaccard "
                               "(default %(default)s)")
    p_mquery.add_argument("--limit", type=int, default=10,
                          help="max results (default %(default)s)")
    _add_match_command(
        "stats",
        "engine parameters and corpus/vendor index statistics",
        cmd_match_stats)

    p_ml = sub.add_parser(
        "ml",
        help="learned fingerprint attribution: train/eval/predict "
             "seeded pure-numpy classifiers over the labeled "
             "synthetic world")
    ml_sub = p_ml.add_subparsers(dest="ml_command", required=True)
    p_mltrain = ml_sub.add_parser(
        "train", help="train the naive-Bayes + logistic-regression "
                      "bundle, write the JSON model file")
    _add_config(p_mltrain)
    _add_cache(p_mltrain)
    p_mltrain.add_argument("--target", choices=("family", "vendor"),
                           default=None,
                           help="prediction target (default family)")
    p_mltrain.add_argument("--width", type=int, default=None,
                           help="hashed feature-space width "
                                "(default 1024)")
    p_mltrain.add_argument("--iters", type=int, default=None,
                           help="fixed gradient-descent iteration "
                                "count (default 2000)")
    p_mltrain.add_argument("--test-fraction", type=float, default=None,
                           dest="test_fraction",
                           help="held-out fraction per class "
                                "(default 0.3)")
    p_mltrain.add_argument("-o", "--output", default=DEFAULT_ML_MODEL,
                           help="model file (default %(default)s)")
    _add_obs(p_mltrain)
    p_mltrain.set_defaults(func=cmd_ml_train)
    p_mleval = ml_sub.add_parser(
        "eval", help="evaluate a trained model, write the canonical "
                     "eval report (digest-checkable by `repro verify "
                     "ml`)")
    _add_config(p_mleval)
    _add_cache(p_mleval)
    p_mleval.add_argument("--model", default=DEFAULT_ML_MODEL,
                          help="trained model file "
                               "(default %(default)s)")
    p_mleval.add_argument("--threshold", type=float, default=None,
                          help="attribution confidence floor in "
                               "[0, 1] (default: the model's)")
    p_mleval.add_argument("--input", metavar="PATH", default=None,
                          help="evaluate on an external labeled "
                               "capture (JSONL rows with vendor "
                               "labels) instead of the study world")
    p_mleval.add_argument("--report", metavar="PATH",
                          default=DEFAULT_ML_REPORT,
                          help="canonical eval report path "
                               "(default %(default)s)")
    _add_obs(p_mleval)
    p_mleval.set_defaults(func=cmd_ml_eval)
    p_mlpredict = ml_sub.add_parser(
        "predict", help="attribute the exact-match-unmatched "
                        "fingerprints with a trained model")
    _add_config(p_mlpredict)
    _add_cache(p_mlpredict)
    p_mlpredict.add_argument("--model", default=DEFAULT_ML_MODEL,
                             help="trained model file "
                                  "(default %(default)s)")
    p_mlpredict.add_argument("--threshold", type=float, default=None,
                             help="attribution confidence floor in "
                                  "[0, 1] (default: the model's)")
    p_mlpredict.add_argument("--limit", type=int, default=20,
                             help="prediction rows to print "
                                  "(default %(default)s)")
    p_mlpredict.add_argument("-o", "--output", default=None,
                             help="also write every prediction row "
                                  "as JSON to PATH")
    _add_obs(p_mlpredict)
    p_mlpredict.set_defaults(func=cmd_ml_predict)

    p_verify = sub.add_parser(
        "verify",
        help="differential conformance: golden baselines, equivalence "
             "matrix, paper invariants")
    verify_sub = p_verify.add_subparsers(dest="verify_command",
                                         required=True)
    p_vrecord = verify_sub.add_parser(
        "record", help="record the golden baseline for this config")
    _add_config(p_vrecord)
    _add_cache(p_vrecord)
    p_vrecord.add_argument("--baseline", metavar="PATH",
                           default=DEFAULT_BASELINE,
                           help="baseline file (default %(default)s)")
    _add_obs(p_vrecord)
    p_vrecord.set_defaults(func=cmd_verify_record)
    p_vcheck = verify_sub.add_parser(
        "check",
        help="re-run the pipeline, compare against the golden baseline")
    _add_config(p_vcheck)
    _add_cache(p_vcheck)
    p_vcheck.add_argument("--baseline", metavar="PATH",
                          default=DEFAULT_BASELINE,
                          help="baseline file (default %(default)s)")
    p_vcheck.add_argument("--report", metavar="PATH", default=None,
                          help="also write the structured diff report "
                               "as JSON to PATH")
    _add_obs(p_vcheck)
    p_vcheck.set_defaults(func=cmd_verify_check)
    p_vmatrix = verify_sub.add_parser(
        "matrix",
        help="prove execution modes equivalent (serial/parallel, "
             "cold/warm cache, faults+retries, store permutations)")
    _add_config(p_vmatrix)
    p_vmatrix.add_argument("--report", metavar="PATH", default=None,
                           help="also write per-mode node digests and "
                                "mismatches as JSON to PATH")
    _add_obs(p_vmatrix)
    p_vmatrix.set_defaults(func=cmd_verify_matrix)
    p_vinv = verify_sub.add_parser(
        "invariants",
        help="evaluate the paper-invariant checks and print verdicts")
    _add_config(p_vinv)
    _add_cache(p_vinv)
    _add_obs(p_vinv)
    p_vinv.set_defaults(func=cmd_verify_invariants)
    p_vstream = verify_sub.add_parser(
        "streaming",
        help="prove the streaming ingest path's final state equals "
             "the batch pipeline's, node for node")
    _add_config(p_vstream)
    _add_cache(p_vstream)
    p_vstream.add_argument("--window-days", type=int, default=28,
                           dest="window_days",
                           help="stream window width in capture days "
                                "(default %(default)s)")
    p_vstream.add_argument("--report", metavar="PATH", default=None,
                           help="also write per-node digests as JSON "
                                "to PATH")
    _add_obs(p_vstream)
    p_vstream.set_defaults(func=cmd_verify_streaming)
    p_vml = verify_sub.add_parser(
        "ml",
        help="re-train the attribution model and digest-check its "
             "canonical eval report against the committed baseline")
    _add_config(p_vml)
    _add_cache(p_vml)
    p_vml.add_argument("--baseline", metavar="PATH",
                       default=DEFAULT_ML_BASELINE,
                       help="ml baseline file (default %(default)s)")
    p_vml.add_argument("--record", action="store_true",
                       help="record the baseline instead of checking")
    p_vml.add_argument("--report", metavar="PATH", default=None,
                       help="also write the digest-check report as "
                            "JSON to PATH")
    _add_obs(p_vml)
    p_vml.set_defaults(func=cmd_verify_ml)

    p_sweep = sub.add_parser(
        "sweep",
        help="process-parallel multi-config campaigns: seed grids, "
             "trust-store and fault ablations, variance bands")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command",
                                       required=True)
    p_srun = sweep_sub.add_parser(
        "run", help="run (or re-run, skipping completed configs) a "
                    "sweep campaign")
    _add_config(p_srun)
    _add_cache(p_srun)
    p_srun.add_argument("--seeds", type=int, default=4,
                        help="number of consecutive seeds starting at "
                             "--seed (default %(default)s)")
    p_srun.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 runs inline "
                             "(default %(default)s; output digests are "
                             "identical for any value)")
    p_srun.add_argument("--grid", metavar="AXES", default="seeds",
                        help="comma-separated grid axes from "
                             "seeds,stores,faults (default %(default)s)")
    p_srun.add_argument("--stage", choices=("full", "probe", "ml"),
                        default="full",
                        help="run the full pipeline or stop after "
                             "probing (default %(default)s)")
    p_srun.add_argument("--time-scale", type=float, default=0.0,
                        dest="time_scale",
                        help="real seconds slept per simulated network "
                             "second while probing (default "
                             "%(default)s; never changes output bytes)")
    p_srun.add_argument("--out", metavar="DIR", default="sweep_out",
                        help="campaign directory: ledger + report "
                             "(default %(default)s)")
    _add_sweep_backend(p_srun)
    p_srun.add_argument("--store-backend", choices=("local", "http"),
                        default="local", dest="store_backend",
                        help="artifact store backend the workers use "
                             "(default %(default)s; http dials "
                             "--store-url or is self-served by the "
                             "cluster coordinator from --cache-dir)")
    p_srun.add_argument("--store-url", metavar="URL", default=None,
                        dest="store_url",
                        help="base URL of an external http blob store")
    _add_obs(p_srun)
    p_srun.set_defaults(func=cmd_sweep_run)
    p_sresume = sweep_sub.add_parser(
        "resume", help="resume a killed campaign: re-run only "
                       "incomplete configs")
    p_sresume.add_argument("--out", metavar="DIR", default="sweep_out")
    p_sresume.add_argument("--workers", type=int, default=1)
    _add_sweep_backend(p_sresume)
    _add_obs(p_sresume)
    p_sresume.set_defaults(func=cmd_sweep_resume, seed=DEFAULT_SEED)
    p_sreport = sweep_sub.add_parser(
        "report", help="aggregate a campaign ledger into variance "
                       "bands (no re-running)")
    p_sreport.add_argument("--out", metavar="DIR", default="sweep_out")
    p_sreport.add_argument("--json", metavar="PATH", default=None,
                           help="also write the aggregate report as "
                                "JSON to PATH")
    _add_obs(p_sreport)
    p_sreport.set_defaults(func=cmd_sweep_report, seed=DEFAULT_SEED)

    p_fabric = sub.add_parser(
        "fabric",
        help="distributed campaign fabric: serve a campaign's units "
             "as leases, run a worker, inspect a coordinator")
    fabric_sub = p_fabric.add_subparsers(dest="fabric_command",
                                         required=True)
    p_fserve = fabric_sub.add_parser(
        "serve",
        help="serve a campaign over HTTP (leases + blob store + "
             "/metrics); creates the campaign from the grid flags "
             "when --out has no ledger yet")
    _add_config(p_fserve)
    _add_cache(p_fserve)
    p_fserve.add_argument("--seeds", type=int, default=4,
                          help="number of consecutive seeds starting "
                               "at --seed (default %(default)s)")
    p_fserve.add_argument("--grid", metavar="AXES", default="seeds",
                          help="comma-separated grid axes from "
                               "seeds,stores,faults "
                               "(default %(default)s)")
    p_fserve.add_argument("--stage", choices=("full", "probe", "ml"),
                          default="full",
                          help="run the full pipeline or stop after "
                               "probing (default %(default)s)")
    p_fserve.add_argument("--time-scale", type=float, default=0.0,
                          dest="time_scale",
                          help="real seconds slept per simulated "
                               "network second while probing "
                               "(default %(default)s)")
    p_fserve.add_argument("--out", metavar="DIR", default="sweep_out",
                          help="campaign directory "
                               "(default %(default)s)")
    p_fserve.add_argument("--host", default="127.0.0.1",
                          help="bind address (default %(default)s)")
    p_fserve.add_argument("--port", type=int, default=8600,
                          help="bind port; 0 picks an ephemeral port "
                               "(default %(default)s)")
    p_fserve.add_argument("--store-backend", choices=("local", "http"),
                          default="local", dest="store_backend",
                          help="artifact store backend leases carry "
                               "(default %(default)s; http without "
                               "--store-url is self-served from "
                               "--cache-dir)")
    p_fserve.add_argument("--store-url", metavar="URL", default=None,
                          dest="store_url",
                          help="base URL of an external http blob "
                               "store")
    p_fserve.add_argument("--lease-seconds", type=float, default=None,
                          dest="lease_seconds",
                          help="lease/heartbeat interval "
                               "(default: fabric default)")
    p_fserve.add_argument("--max-attempts", type=int, default=None,
                          dest="max_attempts",
                          help="lease grants per unit before it is "
                               "declared failed "
                               "(default: fabric default)")
    p_fserve.add_argument("--until-done", action="store_true",
                          dest="until_done",
                          help="exit when every unit is completed or "
                               "exhausted (instead of serving forever)")
    _add_obs(p_fserve)
    p_fserve.set_defaults(func=cmd_fabric_serve)
    p_fworker = fabric_sub.add_parser(
        "worker", help="claim, run, and upload units from a fabric "
                       "coordinator until its campaign is done")
    p_fworker.add_argument("url", help="coordinator base URL")
    p_fworker.add_argument("--worker-id", default=None,
                           dest="worker_id",
                           help="lease identity "
                                "(default: host-pid)")
    p_fworker.add_argument("--jobs", type=int, default=2,
                           help="concurrent claim threads "
                                "(default %(default)s)")
    p_fworker.add_argument("--max-units", type=int, default=None,
                           dest="max_units",
                           help="stop after completing this many "
                                "units (default: run until done)")
    p_fworker.add_argument("--poll-seconds", type=float, default=0.25,
                           dest="poll_seconds",
                           help="sleep between lease attempts while "
                                "the queue is drained "
                                "(default %(default)s)")
    _add_obs(p_fworker)
    p_fworker.set_defaults(func=cmd_fabric_worker, seed=DEFAULT_SEED)
    p_fstatus = fabric_sub.add_parser(
        "status", help="one-shot queue/lease/ledger view of a running "
                       "coordinator")
    p_fstatus.add_argument("url", nargs="?",
                           default="http://127.0.0.1:8600",
                           help="coordinator base URL "
                                "(default %(default)s)")
    _add_obs(p_fstatus)
    p_fstatus.set_defaults(func=cmd_fabric_status, seed=DEFAULT_SEED)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the artifact store")
    cache_sub = p_cache.add_subparsers(dest="cache_command",
                                       required=True)
    p_stats = cache_sub.add_parser(
        "stats", help="entry counts, bytes, per-stage breakdown")
    p_stats.add_argument("--cache-dir", metavar="DIR", default=None)
    p_stats.set_defaults(func=cmd_cache_stats)
    p_clear = cache_sub.add_parser(
        "clear", help="delete every cached artifact (all versions)")
    p_clear.add_argument("--cache-dir", metavar="DIR", default=None)
    p_clear.set_defaults(func=cmd_cache_clear)

    p_trace = sub.add_parser(
        "trace-summary",
        help="render a --trace JSONL file (top spans, metrics, manifest)")
    p_trace.add_argument("trace_file")
    p_trace.add_argument("--top", type=int, default=15,
                         help="span names to show (default %(default)s)")
    p_trace.set_defaults(func=cmd_trace_summary)

    p_obs = sub.add_parser(
        "obs", help="inspect a running repro serve over HTTP: live "
                    "top view, snapshot export, snapshot diff")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    default_url = "http://127.0.0.1:8437"
    p_otop = obs_sub.add_parser(
        "top", help="poll a server's health, SLO verdicts, and key "
                    "metrics (ctrl-C to stop)")
    p_otop.add_argument("url", nargs="?", default=default_url,
                        help="server base URL (default %(default)s)")
    p_otop.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls "
                             "(default %(default)s)")
    p_otop.add_argument("--count", type=int, default=0,
                        help="frames to render; 0 polls until "
                             "interrupted (default %(default)s)")
    p_otop.set_defaults(func=cmd_obs_top)
    p_oexport = obs_sub.add_parser(
        "export", help="scrape /metrics once, write the snapshot")
    p_oexport.add_argument("url", nargs="?", default=default_url,
                           help="server base URL (default %(default)s)")
    p_oexport.add_argument("-o", "--output",
                           default="metrics_snapshot.json",
                           help="output path, or '-' for stdout "
                                "(default %(default)s)")
    p_oexport.add_argument("--format", choices=("json", "prom"),
                           default="json",
                           help="JSON snapshot or Prometheus "
                                "exposition text (default %(default)s)")
    p_oexport.set_defaults(func=cmd_obs_export)
    p_odiff = obs_sub.add_parser(
        "diff", help="compare two exported JSON snapshots and flag "
                     "regressions (exit 1 when any)")
    p_odiff.add_argument("before", help="earlier obs export file")
    p_odiff.add_argument("after", help="later obs export file")
    p_odiff.add_argument("--tolerance", type=float, default=0.05,
                         help="allowed growth of a latency "
                              "histogram's slow share "
                              "(default %(default)s)")
    p_odiff.add_argument("--json", metavar="PATH", default=None,
                         help="also write the structured diff report "
                              "as JSON to PATH")
    p_odiff.set_defaults(func=cmd_obs_diff)
    return parser


def _run_observed(args):
    """Run one study command inside a live observability context."""
    from repro.obs.summary import metric_table
    sink = obs.JsonlSink(args.trace) if args.trace else None
    ctx = obs.Observability(sink=sink)
    args.artifacts = []
    started_at = time.time()
    previous = obs.activate(ctx)
    try:
        with ctx.span(f"cli.{args.command}"):
            code = args.func(args)
    finally:
        obs.deactivate(previous)
    manifest = RunManifest.from_run(
        command=args.command,
        config=getattr(args, "config", None)
        or StudyConfig(seed=args.seed),
        obs_ctx=ctx, outputs=args.artifacts,
        started_at=started_at, finished_at=time.time(),
        store=getattr(args, "store", None),
        invariants=getattr(args, "invariants", None))
    ctx.sink.emit({"type": "manifest", "manifest": manifest.to_json()})
    ctx.close()
    for artifact in args.artifacts:
        manifest.write(manifest_path_for(artifact))
    if args.trace:
        print(f"wrote trace to {args.trace} "
              f"({sink.events_written} events)")
    if args.metrics:
        print("metrics:")
        print("\n".join(metric_table(ctx.metrics.snapshot())))
    return code


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("trace-summary", "cache", "obs"):
        return args.func(args)
    return _run_observed(args)


if __name__ == "__main__":
    raise SystemExit(main())
