"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  build the world and save the anonymized ClientHello
  capture as JSONL (the artifact the paper open-sources);
- ``probe``     probe every SNI from the three vantage points and save a
  per-server certificate summary;
- ``report``    run the full analysis pipeline and write the markdown
  study report;
- ``audit``     client- and server-side audit of one vendor;
- ``whatif``    run the recommendation experiments (ACME adoption, AIA
  chasing, revocation exposure).
"""

import argparse
import json
import sys

from repro.study import DEFAULT_SEED, StudyConfig, get_study


def _add_seed(parser):
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="world seed (default %(default)s)")


def cmd_generate(args):
    from repro.inspector.io import save_records
    study = get_study(StudyConfig(seed=args.seed))
    dataset = study.dataset
    save_records(dataset.records, args.output)
    print(f"wrote {len(dataset.records)} ClientHello records from "
          f"{dataset.device_count} devices ({dataset.vendor_count} "
          f"vendors, {dataset.user_count} users) to {args.output}")
    return 0


def cmd_probe(args):
    from repro.probing.engine import RetryPolicy
    try:
        config = StudyConfig(seed=args.seed, probe_jobs=args.jobs,
                             retry=RetryPolicy(max_attempts=args.retries))
    except ValueError as exc:
        print(f"probe: {exc}", file=sys.stderr)
        return 2
    study = get_study(config)
    certificates = study.certificates
    rows = certificates.to_json_rows(ct_logs=study.network.ct_logs)
    with open(args.output, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    reachable = sum(1 for row in rows if row["reachable"])
    print(f"probed {len(rows)} SNIs ({reachable} reachable); "
          f"wrote {args.output}")
    if args.stats and certificates.stats is not None:
        print(certificates.stats.summary())
    return 0


def cmd_report(args):
    from repro.core.pipeline import run_full_study
    from repro.core.report import render_report
    study = get_study(seed=args.seed)
    results = run_full_study(study)
    text = render_report(results, seed=args.seed)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote study report to {args.output}")
    return 0


def cmd_audit(args):
    from repro.core.customization import doc_vendor
    from repro.core.issuers import issuer_report
    from repro.core.matching import validate_case_study
    from repro.core.tables import percent
    study = get_study(seed=args.seed)
    dataset = study.dataset
    vendor = args.vendor
    if vendor not in dataset.vendor_names():
        print(f"unknown vendor {vendor!r}; known vendors:",
              ", ".join(dataset.vendor_names()), file=sys.stderr)
        return 2
    print(f"== {vendor} ==")
    print(f"devices: {len(dataset.devices_of_vendor(vendor))}")
    print(f"fingerprints: {len(dataset.vendor_fingerprints(vendor))} "
          f"(DoC_vendor {percent(doc_vendor(dataset, vendor))})")
    matches = validate_case_study(dataset, study.corpus, vendor)
    print(f"library matches: {matches or '(none)'}")
    report = issuer_report(dataset, study.certificates, study.ecosystem)
    ratios = sorted(report.vendor_issuer_ratios(vendor).items(),
                    key=lambda kv: -kv[1])
    print("server certificate issuers seen by its devices:")
    for org, share in ratios[:8]:
        kind = "public" if org in set(report.public_orgs) else "PRIVATE"
        print(f"  {org:35s} {kind:8s} {percent(share)}")
    return 0


def cmd_whatif(args):
    from repro.core import whatif
    from repro.core.tables import percent
    study = get_study(seed=args.seed)
    if args.experiment in ("acme", "all"):
        result = whatif.acme_adoption(study)
        before, after = result["before"], result["after"]
        print(f"[acme] {result['private_leaf_count']} vendor-signed "
              f"leafs: validity max "
              f"{before['validity_min_med_max'][2]:.0f}d → "
              f"{after['validity_min_med_max'][2]:.0f}d; CT "
              f"{percent(before['ct_share'])} → "
              f"{percent(after['ct_share'])}")
    if args.experiment in ("aia", "all"):
        result = whatif.aia_chasing(study)
        print(f"[aia] verdicts fixed by intermediate fetching: "
              f"{len(result['fixed_by_aia'])}")
    if args.experiment in ("revocation", "all"):
        result = whatif.revocation_exposure(study)
        print(f"[revocation] devices with no revocation path: "
              f"{result['devices_exposed_no_revocation_path']} "
              f"(protected: "
              f"{result['devices_protected_by_revocation']})")
    return 0


def cmd_figures(args):
    from repro.core.figures import export_all
    study = get_study(seed=args.seed)
    written = export_all(study, args.output)
    print(f"wrote {len(written)} figure data files under {args.output}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Behind the Scenes' (IMC 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser(
        "generate", help="generate the world, save the capture as JSONL")
    _add_seed(p_generate)
    p_generate.add_argument("-o", "--output", default="capture.jsonl")
    p_generate.set_defaults(func=cmd_generate)

    p_probe = sub.add_parser(
        "probe", help="probe all SNIs, save per-server cert summary")
    _add_seed(p_probe)
    p_probe.add_argument("-o", "--output", default="certificates.jsonl")
    p_probe.add_argument("--jobs", type=int, default=1,
                         help="probe engine worker threads "
                              "(default %(default)s; output is identical "
                              "for any value)")
    p_probe.add_argument("--retries", type=int, default=3,
                         help="attempt budget per probe "
                              "(default %(default)s)")
    p_probe.add_argument("--stats", action="store_true",
                         help="print probe engine telemetry (attempts, "
                              "retries, error taxonomy)")
    p_probe.set_defaults(func=cmd_probe)

    p_report = sub.add_parser(
        "report", help="run the full pipeline, write the markdown report")
    _add_seed(p_report)
    p_report.add_argument("-o", "--output", default="study_report.md",
                          help="output path, or '-' for stdout")
    p_report.set_defaults(func=cmd_report)

    p_audit = sub.add_parser("audit", help="audit one vendor")
    _add_seed(p_audit)
    p_audit.add_argument("vendor")
    p_audit.set_defaults(func=cmd_audit)

    p_figures = sub.add_parser(
        "figures", help="export plot-ready JSON data for every figure")
    _add_seed(p_figures)
    p_figures.add_argument("-o", "--output", default="figure_data")
    p_figures.set_defaults(func=cmd_figures)

    p_whatif = sub.add_parser(
        "whatif", help="run the recommendation experiments")
    _add_seed(p_whatif)
    p_whatif.add_argument("experiment",
                          choices=("acme", "aia", "revocation", "all"))
    p_whatif.set_defaults(func=cmd_whatif)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
