"""Streaming == batch: the ingest path proven against the pipeline.

``repro verify streaming`` runs the window-by-window incremental
analyses (:mod:`repro.ingest.incremental`) to the end of the capture
stream and compares every analysis's final snapshot against the payload
the classic batch code path produces — node for node, by canonical-JSON
digest (:mod:`repro.verify.canonical`), the same equality the golden
baseline and the equivalence matrix reduce to.  A digest match proves
the two paths computed *byte-identical* answers, floats included.
"""

from dataclasses import dataclass, field

from repro.inspector.timeline import days
from repro.schema import versioned
from repro.verify.canonical import canonicalize, digest, first_divergence

#: default stream window width (mirrors
#: ``repro.ingest.stream.DEFAULT_WINDOW_SECONDS``; re-declared here —
#: importing :mod:`repro.ingest` at module scope would be circular,
#: since its incremental analyses use this package's canonical digests).
DEFAULT_WINDOW_SECONDS = days(28)


@dataclass(frozen=True)
class StreamingReport:
    """Per-analysis streaming-vs-batch verdicts."""

    window_seconds: int
    windows: int
    records: int
    #: node name → {"streaming", "batch", "ok", "divergence"}.
    nodes: dict = field(default_factory=dict)

    @property
    def ok(self):
        return all(entry["ok"] for entry in self.nodes.values())

    def to_json(self):
        return versioned({
            "ok": self.ok,
            "window_seconds": self.window_seconds,
            "windows": self.windows,
            "records": self.records,
            "nodes": {name: dict(entry)
                      for name, entry in sorted(self.nodes.items())},
        })

    def render(self):
        lines = [f"streaming vs batch over {self.windows} windows "
                 f"({self.window_seconds} s each, "
                 f"{self.records} records):"]
        for name, entry in sorted(self.nodes.items()):
            mark = "ok  " if entry["ok"] else "FAIL"
            lines.append(f"  {mark} {name:20s} "
                         f"streaming {entry['streaming'][:12]} "
                         f"batch {entry['batch'][:12]}")
            if not entry["ok"] and entry.get("divergence"):
                lines.append(f"       first divergence: "
                             f"{entry['divergence']}")
        lines.append("streaming == batch" if self.ok
                     else "STREAMING CHECK FAILED")
        return "\n".join(lines)


def check_streaming(study, window_seconds=DEFAULT_WINDOW_SECONDS,
                    store=None, compact_every=4):
    """Prove the streaming final state equals the batch pipeline's.

    Runs a fresh :class:`~repro.ingest.ingester.Ingester` to the end of
    the stream (resuming from ``store`` when it holds a checkpoint —
    resumed state must converge to the same digests) and returns a
    :class:`StreamingReport`.
    """
    from repro.ingest.incremental import batch_snapshots
    from repro.ingest.ingester import Ingester
    ingester = Ingester(study, window_seconds=window_seconds,
                        store=store, compact_every=compact_every).run()
    streaming = ingester.snapshots()
    batch = batch_snapshots(study)
    nodes = {}
    for name in sorted(streaming):
        canon_stream = canonicalize(streaming[name])
        canon_batch = canonicalize(batch[name])
        digest_stream = digest(canon_stream)
        digest_batch = digest(canon_batch)
        entry = {"streaming": digest_stream, "batch": digest_batch,
                 "ok": digest_stream == digest_batch}
        if not entry["ok"]:
            entry["divergence"] = str(
                first_divergence(canon_stream, canon_batch))
        nodes[name] = entry
    return StreamingReport(
        window_seconds=int(window_seconds),
        windows=ingester.stream.window_count,
        records=ingester.records_ingested,
        nodes=nodes)
