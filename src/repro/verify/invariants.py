"""Paper invariants: declarative ties between outputs and the paper.

Golden baselines catch *any* change; they cannot say whether the
recorded numbers were ever right.  This module pins the reproduction to
the paper's published anchors (Dong et al., IMC 2023, Sections 3-5):
the 6,891-fingerprint library corpus, the 1,151 probed SNIs, the ~2.55%
corpus match rate, bounded DoC/Jaccard ratios, issuer-share and
validity-distribution sanity.  Each anchor is one :class:`Invariant`
whose check runs over the finished pipeline results; the verify CLI
evaluates them all and emits the verdicts into the
:class:`~repro.obs.manifest.RunManifest` (``invariants`` field), so an
artifact's provenance records not just *how* it was produced but that
it still quantitatively resembles the paper.

Tolerances: the reproduction's world is synthetic, so rate-style
anchors get a band around the paper's point estimate (e.g. the match
rate's 2.55% allows 1.5%-4%) while structural anchors (corpus size,
SNI count, probability bounds) are exact.
"""

from dataclasses import dataclass

#: Accepted band around the paper's ~2.55% corpus match rate (Sec. 4.1).
MATCH_RATE_BAND = (0.015, 0.04)

#: Probability-style quantities (DoC ratios, Jaccard, issuer shares)
#: must lie in the unit interval.
UNIT_INTERVAL = (0.0, 1.0)

#: The 100-year vendor-signed validity extreme the paper reports
#: (Sec. 5.4), in days — the upper bound for any leaf validity.
VALIDITY_MAX_DAYS = 100 * 365


@dataclass(frozen=True)
class Invariant:
    """One declarative assertion over the finished study.

    ``check(study, results)`` returns the observed value;
    ``accept(observed)`` judges it.  Keeping observation separate from
    judgement lets reports show the measured number even when it fails.
    """

    name: str
    expected: str
    check: object
    accept: object

    def evaluate(self, study, results):
        try:
            observed = self.check(study, results)
            ok = bool(self.accept(observed))
        except Exception as exc:  # a crash is a failed invariant
            observed = f"error: {type(exc).__name__}: {exc}"
            ok = False
        return {"name": self.name, "ok": ok,
                "observed": _jsonable(observed),
                "expected": self.expected}


def _jsonable(value):
    if isinstance(value, (type(None), bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item)
                for key, item in sorted(value.items(), key=lambda kv:
                                        str(kv[0]))}
    return repr(value)


def _bounded_unit(values):
    return all(0.0 <= value <= 1.0 for value in values)


def _match_rate(study, results):
    return round(results["client"]["matching"].matched_fraction, 6)


def _doc_values(results):
    return (list(results["client"]["doc_vendor"].values())
            + list(results["client"]["doc_device"].values()))


def _validity_range(study, results):
    """(min, max) leaf validity in days over the CT-report points."""
    days = [point.validity_days
            for point in results["server"]["ct"].points]
    return (round(min(days), 2), round(max(days), 2))


PAPER_INVARIANTS = (
    Invariant(
        "corpus-size",
        expected="6891 known-library fingerprints (Sec. 4.1)",
        check=lambda study, results: len(study.corpus),
        accept=lambda n: n == 6891),
    Invariant(
        "sni-count",
        expected="1151 reachable SNIs at probe time (Sec. 5.1; "
                 "1194 contacted, 43 dead)",
        check=lambda study, results: [
            len(study.certificates.reachable_fqdns()),
            len(study.world.servers)],
        accept=lambda pair: pair == [1151, 1194]),
    Invariant(
        "probe-coverage",
        expected="every contacted SNI probed from every vantage point",
        check=lambda study, results: sorted(
            {(len({r.fqdn for r in study.certificates.results
                   if r.vantage == v}))
             for v in study.certificates.vantages()}),
        accept=lambda counts: counts == [1194]),
    Invariant(
        "match-rate",
        expected="~2.55% of fingerprints match the corpus "
                 "(Sec. 4.1; accepted band 1.5%-4%)",
        check=_match_rate,
        accept=lambda rate:
            MATCH_RATE_BAND[0] <= rate <= MATCH_RATE_BAND[1]),
    Invariant(
        "doc-bounds",
        expected="every DoC_vendor / DoC_device ratio in [0, 1] "
                 "(Sec. 4.2)",
        check=lambda study, results: [
            round(min(_doc_values(results)), 6),
            round(max(_doc_values(results)), 6)],
        accept=lambda lohi: 0.0 <= lohi[0] and lohi[1] <= 1.0),
    Invariant(
        "jaccard-bounds",
        expected="every vendor-pair Jaccard similarity in [0, 1] "
                 "(Sec. 4.3)",
        check=lambda study, results: [
            round(similarity, 6) for similarity, _a, _b
            in results["client"]["jaccard_pairs"]],
        accept=_bounded_unit),
    Invariant(
        "issuer-shares",
        expected="issuer leaf shares sum to 1 and each lies in [0, 1] "
                 "(Sec. 5.2)",
        check=lambda study, results: round(sum(
            results["server"]["issuers"].issuer_share(org)
            for org in results["server"]["issuers"].issuer_orgs), 6),
        accept=lambda total: abs(total - 1.0) < 1e-6),
    Invariant(
        "survey-coverage",
        expected="one validation verdict per reachable chain "
                 "(Sec. 5.3)",
        check=lambda study, results: [
            len(results["server"]["survey"].reports),
            len(study.certificates.reachable_fqdns())],
        accept=lambda pair: pair[0] == pair[1] and pair[0] > 0),
    Invariant(
        "validity-distribution",
        expected="leaf validity positive, bounded by the 100-year "
                 "vendor-signed extreme the paper reports (Sec. 5.4)",
        check=_validity_range,
        accept=lambda lohi: 0 < lohi[0] <= lohi[1] <= VALIDITY_MAX_DAYS),
)


def check_invariants(study, results, invariants=PAPER_INVARIANTS):
    """Evaluate every invariant; returns the list of verdict dicts."""
    return [invariant.evaluate(study, results)
            for invariant in invariants]


def invariant_summary(study, results, invariants=PAPER_INVARIANTS):
    """The ``RunManifest.invariants`` payload: overall ok + verdicts."""
    checks = check_invariants(study, results, invariants)
    return {"ok": all(check["ok"] for check in checks),
            "checks": checks}


def render_invariants(summary):
    """Human-readable table of an :func:`invariant_summary`."""
    lines = []
    for check in summary["checks"]:
        mark = "ok  " if check["ok"] else "FAIL"
        lines.append(f"{mark} {check['name']:16s} "
                     f"observed={check['observed']!r}  "
                     f"[{check['expected']}]")
    verdict = "all invariants hold" if summary["ok"] \
        else "PAPER INVARIANT VIOLATION"
    lines.append(verdict)
    return "\n".join(lines)
