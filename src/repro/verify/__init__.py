"""Differential conformance: golden baselines, equivalence, invariants.

The repository's determinism claims (serial == parallel, cold == warm,
fault-injected-with-retries == clean, trust-store order irrelevant) and
its fidelity claims (outputs quantitatively resemble the paper) are
enforced here rather than spot-checked per feature:

- :mod:`repro.verify.canonical` — the deterministic canonical-JSON
  encoding and digest every comparison reduces to;
- :mod:`repro.verify.baseline` — golden snapshots of every pipeline
  artifact, ``repro verify record`` / ``repro verify check``;
- :mod:`repro.verify.matrix` — the execution-mode equivalence matrix;
- :mod:`repro.verify.invariants` — declarative paper anchors emitted
  into the :class:`~repro.obs.manifest.RunManifest`;
- :mod:`repro.verify.streaming` — streaming-vs-batch equivalence for
  the :mod:`repro.ingest` incremental analyses
  (``repro verify streaming``).
"""

from repro.verify.baseline import (CheckReport, Divergence,
                                   VOLATILE_NODES, check_baseline,
                                   collect_snapshots, load_baseline,
                                   record_baseline, run_and_snapshot)
from repro.verify.canonical import (VOLATILE_KEYS, canonical_bytes,
                                    canonicalize, digest,
                                    first_divergence)
from repro.verify.invariants import (MATCH_RATE_BAND, PAPER_INVARIANTS,
                                     UNIT_INTERVAL, VALIDITY_MAX_DAYS,
                                     Invariant, check_invariants,
                                     invariant_summary,
                                     render_invariants)
from repro.verify.matrix import (EquivalenceMatrix, ExecutionMode,
                                 MatrixReport, ModeResult,
                                 compare_results, default_modes)
from repro.verify.streaming import StreamingReport, check_streaming

__all__ = [
    "CheckReport", "Divergence", "EquivalenceMatrix", "ExecutionMode",
    "Invariant", "MATCH_RATE_BAND", "MatrixReport", "ModeResult",
    "PAPER_INVARIANTS", "StreamingReport", "UNIT_INTERVAL",
    "VALIDITY_MAX_DAYS",
    "VOLATILE_KEYS", "VOLATILE_NODES", "canonical_bytes",
    "canonicalize", "check_baseline", "check_invariants",
    "check_streaming",
    "collect_snapshots", "compare_results", "default_modes", "digest",
    "first_divergence",
    "invariant_summary", "load_baseline", "record_baseline",
    "render_invariants", "run_and_snapshot",
]
